"""Microbenchmarks of the discrete-event simulation kernel.

Not a paper figure, but the substrate every experiment stands on: these
benchmarks track the event-processing throughput of the engine and the cost
of the resource primitives, so performance regressions in the kernel are
caught before they show up as slow experiments.
"""

from __future__ import annotations

import pytest

from repro.sim import Container, Environment, Resource

pytestmark = pytest.mark.bench  # deselected by default (see pyproject.toml); run with -m bench


def run_timeout_chain(events: int = 20_000) -> float:
    env = Environment()

    def ticker(env):
        for _ in range(events):
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run()
    return env.now


def run_resource_contention(users: int = 500, cycles: int = 20) -> int:
    env = Environment()
    resource = Resource(env, capacity=8)
    completions = []

    def user(env, resource):
        for _ in range(cycles):
            with resource.request() as request:
                yield request
                yield env.timeout(1.0)
        completions.append(env.now)

    for _ in range(users):
        env.process(user(env, resource))
    env.run()
    return len(completions)


def run_container_producers(pairs: int = 300, cycles: int = 30) -> float:
    env = Environment()
    container = Container(env, capacity=1_000, init=0)

    def producer(env, container):
        for _ in range(cycles):
            yield env.timeout(1.0)
            yield container.put(2)

    def consumer(env, container):
        for _ in range(cycles):
            yield container.get(2)

    for _ in range(pairs):
        env.process(producer(env, container))
        env.process(consumer(env, container))
    env.run()
    return container.level


def run_condition_churn(waiters: int = 2_000) -> int:
    """Allocation-heavy mix: every waiter builds AllOf/AnyOf conditions.

    Exercises exactly the classes that declare ``__slots__`` (Event, Timeout,
    Process, AllOf/AnyOf), so this benchmark tracks the win from slotted
    events: less memory per event and faster attribute access in the hot
    resume loop.
    """
    env = Environment()
    done = []

    def waiter(env):
        yield env.all_of([env.timeout(1.0), env.timeout(2.0)])
        yield env.any_of([env.timeout(5.0), env.timeout(1.0)])
        done.append(env.now)

    for _ in range(waiters):
        env.process(waiter(env))
    env.run()
    return len(done)


def test_bench_engine_timeout_throughput(benchmark):
    final_time = benchmark(run_timeout_chain)
    assert final_time == 20_000


def test_bench_engine_condition_churn(benchmark):
    completed = benchmark(run_condition_churn)
    assert completed == 2_000


def test_bench_engine_resource_contention(benchmark):
    completed = benchmark(run_resource_contention)
    assert completed == 500


def test_bench_engine_container_throughput(benchmark):
    level = benchmark(run_container_producers)
    assert level == 0
