"""Figure 8 — FPSMA versus EGS under the PWA approach (growing and shrinking).

The PWA experiments use the high-load workloads W'm and W'mr (30-second
inter-arrival) on a heavily loaded testbed; the benchmarks reproduce the six
panels and assert the paper's qualitative findings for this regime.
"""

from __future__ import annotations

import pytest

import numpy as np

from repro.experiments import run_figure7, run_figure8
from repro.experiments.figure8 import figure8_report
from repro.metrics.reports import cdf_probe_table, comparison_table

from _bench_env import bench_jobs, bench_seed

pytestmark = pytest.mark.bench  # deselected by default (see pyproject.toml); run with -m bench


def test_bench_figure8_experiments(benchmark):
    """Time the full set of four Figure 8 scheduler runs and print the report."""
    results = benchmark.pedantic(
        lambda: run_figure8(job_count=bench_jobs(), seed=bench_seed()),
        rounds=1,
        iterations=1,
    )
    print()
    print(figure8_report(results))
    assert all(result.all_done for result in results.values())


def _metrics(results):
    return {label: result.metrics for label, result in results.items()}


def test_bench_figure8a_average_processors(benchmark, figure8_results):
    metrics = _metrics(figure8_results)
    table = benchmark(
        lambda: cdf_probe_table(
            metrics,
            "average_allocation",
            probes=[2, 4, 6, 10, 15, 20, 30, 40],
            title="Figure 8(a) - % of jobs with average processors <= x",
        )
    )
    print("\n" + table)
    # Under the overloaded W' workloads most jobs stay near their minimal size.
    for label, m in metrics.items():
        small = m.average_allocation_cdf().percent_at_or_below(6)
        assert small >= 50.0, label


def test_bench_figure8b_maximum_processors(benchmark, figure8_results):
    metrics = _metrics(figure8_results)
    table = benchmark(
        lambda: cdf_probe_table(
            metrics,
            "maximum_allocation",
            probes=[2, 4, 8, 16, 24, 32, 46],
            title="Figure 8(b) - % of jobs with maximum processors <= x",
        )
    )
    print("\n" + table)
    # Jobs grow far less than under PRA: hardly anyone reaches the maximum.
    for label, m in metrics.items():
        at_max = 100.0 - m.maximum_allocation_cdf().percent_at_or_below(31)
        assert at_max < 20.0, label


def test_bench_figure8c_execution_times(benchmark, figure8_results):
    metrics = _metrics(figure8_results)
    table = benchmark(
        lambda: cdf_probe_table(
            metrics,
            "execution_time",
            probes=[60, 120, 200, 300, 400, 600, 800, 1000],
            title="Figure 8(c) - % of jobs with execution time <= x seconds",
        )
    )
    print("\n" + table)
    # Execution times cluster close to the minimum-size execution times and
    # the four configurations are much closer together than under PRA.
    means = [m.execution_time_cdf().mean for m in metrics.values()]
    assert max(means) / min(means) < 1.35
    gadget = metrics["FPSMA/W'm"].select(profile="gadget2")
    assert np.mean([j.execution_time for j in gadget]) > 400.0


def test_bench_figure8d_response_times(benchmark, figure8_results):
    metrics = _metrics(figure8_results)
    table = benchmark(
        lambda: cdf_probe_table(
            metrics,
            "response_time",
            probes=[60, 120, 200, 300, 400, 600, 800, 1000],
            title="Figure 8(d) - % of jobs with response time <= x seconds",
        )
    )
    print("\n" + table)
    for label, m in metrics.items():
        assert m.response_time_cdf().mean >= m.execution_time_cdf().mean, label


def test_bench_figure8e_utilization(benchmark, figure8_results):
    metrics = _metrics(figure8_results)
    horizon = max(r.workload_duration for r in figure8_results.values())

    def build():
        fractions = (0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0)
        probes = [horizon * f for f in fractions]
        series = {
            label: list(
                m.utilization_over(0.0, horizon, samples=200)[1][[int(f * 199) for f in fractions]]
            )
            for label, m in metrics.items()
        }
        return comparison_table(
            series,
            probes,
            title="Figure 8(e) - busy processors at selected times",
            probe_header="time (s)",
        )

    print("\n" + benchmark(build))
    # The high-load workloads keep more KOALA processors busy than the
    # corresponding Figure 7 workloads would at the same point in time.
    for label, m in metrics.items():
        assert m.peak_utilization() >= 20.0, label


def test_bench_figure8f_malleability_operations(benchmark, figure8_results):
    metrics = _metrics(figure8_results)

    def totals():
        return {
            label: (m.total_grow_messages, m.total_shrink_messages)
            for label, m in metrics.items()
        }

    counts = benchmark(totals)
    print("\nFigure 8(f) - malleability operations per configuration (grow, shrink)")
    for label, (grow, shrink) in counts.items():
        print(f"  {label:12s} grow={grow} shrink={shrink}")
    # EGS remains the more talkative policy, and PWA actually shrinks jobs
    # (unlike PRA) while the all-malleable workload sees more activity.
    assert counts["EGS/W'm"][0] > counts["FPSMA/W'm"][0]
    assert counts["FPSMA/W'm"][0] > counts["FPSMA/W'mr"][0]
    total_shrinks = sum(shrink for _, shrink in counts.values())
    assert total_shrinks >= 1


def test_bench_figure8_vs_figure7_slowdown(benchmark):
    """Cross-figure comparison: the PWA/W' runs slow GADGET-2 down relative to
    the PRA/W runs (the paper quotes roughly +30%)."""
    jobs = max(60, bench_jobs() // 2)

    def run_both():
        pra = run_figure7(job_count=jobs, seed=bench_seed(), combinations=(("FPSMA", "Wm"),))
        pwa = run_figure8(job_count=jobs, seed=bench_seed(), combinations=(("FPSMA", "W'm"),))
        return pra["FPSMA/Wm"].metrics, pwa["FPSMA/W'm"].metrics

    pra_metrics, pwa_metrics = benchmark.pedantic(run_both, rounds=1, iterations=1)
    pra_gadget = np.mean([j.execution_time for j in pra_metrics.select(profile="gadget2")])
    pwa_gadget = np.mean([j.execution_time for j in pwa_metrics.select(profile="gadget2")])
    slowdown = pwa_gadget / pra_gadget
    print(f"\nGADGET-2 mean execution time: PRA/Wm {pra_gadget:.0f}s, "
          f"PWA/W'm {pwa_gadget:.0f}s (slowdown x{slowdown:.2f}; paper reports ~1.3)")
    assert slowdown > 1.0
