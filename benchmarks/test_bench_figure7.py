"""Figure 7 — FPSMA versus EGS under the PRA approach (no shrinking).

``test_bench_figure7_experiments`` runs and times the four scheduler runs
(FPSMA/EGS x Wm/Wmr); the per-panel benchmarks extract and print each panel's
series from the shared results and assert the paper's qualitative findings.
"""

from __future__ import annotations

import pytest

import numpy as np

from repro.experiments import run_figure7
from repro.experiments.figure7 import figure7_report
from repro.metrics.reports import cdf_probe_table, comparison_table

from _bench_env import bench_jobs, bench_seed

pytestmark = pytest.mark.bench  # deselected by default (see pyproject.toml); run with -m bench


def test_bench_figure7_experiments(benchmark):
    """Time the full set of four Figure 7 scheduler runs and print the report."""
    results = benchmark.pedantic(
        lambda: run_figure7(job_count=bench_jobs(), seed=bench_seed()),
        rounds=1,
        iterations=1,
    )
    print()
    print(figure7_report(results))
    assert all(result.all_done for result in results.values())


def _metrics(results):
    return {label: result.metrics for label, result in results.items()}


def test_bench_figure7a_average_processors(benchmark, figure7_results):
    metrics = _metrics(figure7_results)
    table = benchmark(
        lambda: cdf_probe_table(
            metrics,
            "average_allocation",
            probes=[2, 5, 10, 15, 20, 25, 30],
            title="Figure 7(a) - % of jobs with average processors <= x",
        )
    )
    print("\n" + table)
    # Wm jobs end up with more processors on average than Wmr jobs.
    for policy in ("FPSMA", "EGS"):
        wm = metrics[f"{policy}/Wm"].average_allocation_cdf().mean
        wmr = metrics[f"{policy}/Wmr"].average_allocation_cdf().mean
        assert wm > wmr


def test_bench_figure7b_maximum_processors(benchmark, figure7_results):
    metrics = _metrics(figure7_results)
    table = benchmark(
        lambda: cdf_probe_table(
            metrics,
            "maximum_allocation",
            probes=[2, 4, 8, 16, 24, 32, 40, 46],
            title="Figure 7(b) - % of jobs with maximum processors <= x",
        )
    )
    print("\n" + table)
    # With the all-malleable workload, fewer jobs stay at their initial size
    # than with the half-rigid one.
    for policy in ("FPSMA", "EGS"):
        wm_stuck = metrics[f"{policy}/Wm"].maximum_allocation_cdf().percent_at_or_below(2)
        wmr_stuck = metrics[f"{policy}/Wmr"].maximum_allocation_cdf().percent_at_or_below(2)
        assert wm_stuck < wmr_stuck


def test_bench_figure7c_execution_times(benchmark, figure7_results):
    metrics = _metrics(figure7_results)
    table = benchmark(
        lambda: cdf_probe_table(
            metrics,
            "execution_time",
            probes=[60, 120, 200, 300, 400, 600, 800, 1200],
            title="Figure 7(c) - % of jobs with execution time <= x seconds",
        )
    )
    print("\n" + table)
    # Malleability pays off: Wm executions are faster than Wmr executions,
    # and the two application populations are clearly separated (FT < 200 s,
    # GADGET-2 > 200 s), as in the paper.
    for policy in ("FPSMA", "EGS"):
        assert (
            metrics[f"{policy}/Wm"].execution_time_cdf().mean
            < metrics[f"{policy}/Wmr"].execution_time_cdf().mean
        )
    wm = metrics["EGS/Wm"]
    ft_times = [j.execution_time for j in wm.select(profile="ft")]
    gadget_times = [j.execution_time for j in wm.select(profile="gadget2")]
    assert np.mean(ft_times) < np.mean(gadget_times)


def test_bench_figure7d_response_times(benchmark, figure7_results):
    metrics = _metrics(figure7_results)
    table = benchmark(
        lambda: cdf_probe_table(
            metrics,
            "response_time",
            probes=[60, 120, 200, 300, 400, 600, 800, 1200],
            title="Figure 7(d) - % of jobs with response time <= x seconds",
        )
    )
    print("\n" + table)
    for policy in ("FPSMA", "EGS"):
        assert (
            metrics[f"{policy}/Wm"].response_time_cdf().mean
            < metrics[f"{policy}/Wmr"].response_time_cdf().mean
        )


def test_bench_figure7e_utilization(benchmark, figure7_results):
    metrics = _metrics(figure7_results)
    horizon = max(r.workload_duration for r in figure7_results.values())

    def build():
        fractions = (0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0)
        probes = [horizon * f for f in fractions]
        series = {
            label: list(m.utilization_over(0.0, horizon, samples=200)[1][[int(f * 199) for f in fractions]])
            for label, m in metrics.items()
        }
        return comparison_table(
            series, probes, title="Figure 7(e) - busy processors at selected times",
            probe_header="time (s)",
        )

    print("\n" + benchmark(build))
    # The all-malleable workload keeps more processors busy than the mixed one.
    for policy in ("FPSMA", "EGS"):
        wm_mean = metrics[f"{policy}/Wm"].mean_utilization(0.0, horizon)
        wmr_mean = metrics[f"{policy}/Wmr"].mean_utilization(0.0, horizon)
        assert wm_mean > wmr_mean


def test_bench_figure7f_grow_activity(benchmark, figure7_results):
    metrics = _metrics(figure7_results)

    def totals():
        return {label: m.total_grow_messages for label, m in metrics.items()}

    counts = benchmark(totals)
    print("\nFigure 7(f) - total grow messages per configuration")
    for label, count in counts.items():
        print(f"  {label:12s} {count}")
    # EGS sends more grow messages than FPSMA, and Wm more than Wmr.
    assert counts["EGS/Wm"] > counts["FPSMA/Wm"]
    assert counts["FPSMA/Wm"] > counts["FPSMA/Wmr"]
    assert counts["EGS/Wm"] > counts["EGS/Wmr"]
    # PRA never shrinks.
    assert all(m.total_shrink_messages == 0 for m in metrics.values())
