"""Cost of the observability layer.

Two claims, checked separately: structurally, a run without tracing never
touches the tracer machinery (the kernel keeps its raw queue-push fast path
and head-checks a single attribute before entering the untouched event
loop); and empirically, the disabled path costs no more than 2% against a
run tracing into a null sink — i.e. the *entire* tracing overhead, sink
included, is bounded, so the disabled path's share is provably below it.
"""

from __future__ import annotations

import time

import pytest

from _bench_env import bench_seed
from repro.experiments.setup import ExperimentConfig, run_experiment
from repro.obs.trace import NullSink, Tracer
from repro.sim import Environment

pytestmark = pytest.mark.bench  # deselected by default (see pyproject.toml); run with -m bench


def _config(**overrides):
    defaults = dict(
        name="obs-bench",
        workload="Wm",
        job_count=60,
        seed=bench_seed(),
        malleability_policy="FPSMA",
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def test_disabled_tracing_keeps_the_raw_fast_path():
    env = Environment()
    assert env._tracer is None
    assert env._push == env._queue.push
    tracer = Tracer(NullSink())
    env.set_tracer(tracer)
    assert env._push != env._queue.push
    env.set_tracer(None)
    assert env._push == env._queue.push


def test_run_experiment_without_trace_never_attaches_a_tracer(monkeypatch):
    attached = []
    original = Environment.set_tracer

    def spy(self, tracer):
        attached.append(tracer)
        return original(self, tracer)

    monkeypatch.setattr(Environment, "set_tracer", spy)
    run_experiment(_config(job_count=8))
    assert attached == []


def test_bench_disabled_overhead_is_within_two_percent(monkeypatch):
    """Best-of-N run time, interleaved to cancel thermal/cache drift."""
    from repro.obs import trace as trace_module

    # Route traced runs into a null sink: the full record-building cost
    # (kernel loop, hook digests) with no file I/O muddying the numbers.
    monkeypatch.setattr(trace_module, "open_sink", lambda path: NullSink())

    def timed(config):
        began = time.perf_counter()
        run_experiment(config)
        return time.perf_counter() - began

    disabled_config = _config()
    traced_config = _config(trace="bench-null.jsonl")
    run_experiment(disabled_config)  # warm imports and workload caches
    disabled, traced = [], []
    for _ in range(5):
        disabled.append(timed(disabled_config))
        traced.append(timed(traced_config))
    best_disabled, best_traced = min(disabled), min(traced)
    overhead = best_disabled / best_traced - 1.0
    print(
        f"\ndisabled best {best_disabled * 1000:.1f} ms, "
        f"null-traced best {best_traced * 1000:.1f} ms, "
        f"disabled vs traced: {overhead * 100:+.2f}%"
    )
    # The disabled path must not exceed the fully-traced run by more
    # than 2% — in practice it is strictly faster; the margin absorbs noise.
    assert best_disabled <= best_traced * 1.02
