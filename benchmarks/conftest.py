"""Shared configuration of the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
the corresponding rows/series, so the qualitative comparison with the paper
can be read straight from the benchmark output.

The experiments default to a reduced job count so the whole harness runs in a
few minutes; set ``REPRO_BENCH_JOBS=300`` (the paper's size) for full-scale
runs and ``REPRO_BENCH_SEED`` to change the seed.
"""

from __future__ import annotations

import os

import pytest


def bench_jobs(default: int = 120) -> int:
    """Number of jobs per workload used by the benchmark experiments."""
    return int(os.environ.get("REPRO_BENCH_JOBS", default))


def bench_seed() -> int:
    """Root seed used by the benchmark experiments."""
    return int(os.environ.get("REPRO_BENCH_SEED", 0))


def bench_procs() -> int:
    """Worker processes used for the shared figure sweeps.

    The timed benchmarks stay serial so the numbers mean something; the
    session-scoped fixtures below only *prepare* results, so they may fan out
    (``REPRO_BENCH_PROCS=4``) to cut harness wall-clock.
    """
    return int(os.environ.get("REPRO_BENCH_PROCS", 1))


@pytest.fixture(scope="session")
def figure7_results():
    """The four Figure 7 runs, shared by all Figure 7 panel benchmarks."""
    from repro.experiments import run_figure7

    return run_figure7(job_count=bench_jobs(), seed=bench_seed(), jobs=bench_procs())


@pytest.fixture(scope="session")
def figure8_results():
    """The four Figure 8 runs, shared by all Figure 8 panel benchmarks."""
    from repro.experiments import run_figure8

    return run_figure8(job_count=bench_jobs(), seed=bench_seed(), jobs=bench_procs())
