"""Shared configuration of the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
the corresponding rows/series, so the qualitative comparison with the paper
can be read straight from the benchmark output.

The experiments default to a reduced job count so the whole harness runs in a
few minutes; set ``REPRO_BENCH_JOBS=300`` (the paper's size) for full-scale
runs and ``REPRO_BENCH_SEED`` to change the seed.  The knobs themselves live
in :mod:`_bench_env` so benchmark modules can import them by name.
"""

from __future__ import annotations

import pytest

from _bench_env import bench_jobs, bench_procs, bench_seed

__all__ = ["bench_jobs", "bench_procs", "bench_seed"]


@pytest.fixture(scope="session")
def figure7_results():
    """The four Figure 7 runs, shared by all Figure 7 panel benchmarks."""
    from repro.experiments import run_figure7

    return run_figure7(job_count=bench_jobs(), seed=bench_seed(), jobs=bench_procs())


@pytest.fixture(scope="session")
def figure8_results():
    """The four Figure 8 runs, shared by all Figure 8 panel benchmarks."""
    from repro.experiments import run_figure8

    return run_figure8(job_count=bench_jobs(), seed=bench_seed(), jobs=bench_procs())
