"""Figure 6 — execution times of FT and GADGET-2 versus the number of machines.

Regenerates the two scaling curves from the calibrated application profiles,
and (as the benchmarked body) measures each point by actually running the
application model inside the simulator, which is the code path every
scheduling experiment exercises.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure6 import figure6_report, figure6_table, run_figure6

pytestmark = pytest.mark.bench  # deselected by default (see pyproject.toml); run with -m bench


def test_bench_figure6_scaling_curves(benchmark):
    points = benchmark.pedantic(
        lambda: run_figure6(measured=True), rounds=1, iterations=1
    )
    print()
    print(figure6_report(points))

    table = figure6_table(points)
    ft, gadget = table["ft"], table["gadget2"]
    # Anchor points quoted in the paper's text.
    assert ft[2] == pytest.approx(120.0, rel=0.05)
    assert gadget[2] == pytest.approx(600.0, rel=0.05)
    assert min(ft.values()) == pytest.approx(60.0, rel=0.1)
    assert min(gadget.values()) == pytest.approx(240.0, rel=0.1)
    # GADGET-2 is roughly 5x slower than FT at equal (small) machine counts.
    assert 3.0 < gadget[2] / ft[2] < 7.0
