"""Environment knobs of the benchmark harness.

Importable by name from the benchmark modules (``from _bench_env import
bench_jobs``) — a plain ``from conftest import ...`` is fragile under
pytest's prepend import mode, where several ``conftest.py`` files across the
test tree compete for the same module name on ``sys.path``.
"""

from __future__ import annotations

import os


def bench_jobs(default: int = 120) -> int:
    """Number of jobs per workload used by the benchmark experiments."""
    return int(os.environ.get("REPRO_BENCH_JOBS", default))


def bench_seed() -> int:
    """Root seed used by the benchmark experiments."""
    return int(os.environ.get("REPRO_BENCH_SEED", 0))


def bench_procs() -> int:
    """Worker processes used for the shared figure sweeps.

    The timed benchmarks stay serial so the numbers mean something; the
    session-scoped fixtures in ``conftest.py`` only *prepare* results, so
    they may fan out (``REPRO_BENCH_PROCS=4``) to cut harness wall-clock.
    """
    return int(os.environ.get("REPRO_BENCH_PROCS", 1))
