"""Table I — the distribution of the nodes over the DAS-3 clusters.

The benchmark builds the simulated DAS-3 and prints the table (rendered by
the ``table1`` scenario module); the timing measures how fast the substrate
can be instantiated (relevant because every experiment builds a fresh system
per run).
"""

from __future__ import annotations

import pytest

from repro.cluster import das3_multicluster
from repro.experiments.table1 import table1_report
from repro.sim import Environment, RandomStreams

pytestmark = pytest.mark.bench  # deselected by default (see pyproject.toml); run with -m bench


def build_das3():
    env = Environment()
    return das3_multicluster(env, streams=RandomStreams(0))


def test_bench_table1_das3_construction(benchmark):
    system = benchmark(build_das3)
    print()
    print(table1_report())
    assert system.total_processors == 272
    assert len(system) == 5
