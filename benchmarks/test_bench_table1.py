"""Table I — the distribution of the nodes over the DAS-3 clusters.

The benchmark builds the simulated DAS-3 and prints the table; the timing
measures how fast the substrate can be instantiated (relevant because every
experiment builds a fresh system per run).
"""

from __future__ import annotations

from repro.cluster import DAS3_CLUSTERS, das3_multicluster
from repro.metrics import format_table
from repro.sim import Environment, RandomStreams


def build_das3():
    env = Environment()
    return das3_multicluster(env, streams=RandomStreams(0))


def test_bench_table1_das3_construction(benchmark):
    system = benchmark(build_das3)
    rows = [
        (spec.location, spec.nodes, spec.interconnect)
        for spec in DAS3_CLUSTERS
    ]
    print()
    print(
        format_table(
            ["Cluster location", "Nodes", "Interconnect"],
            rows,
            title="Table I - the distribution of the nodes over the DAS clusters",
        )
    )
    assert system.total_processors == 272
    assert len(system) == 5
