"""Benchmarks of the trace-driven workload subsystem.

Three contracts at scale (all ``bench``-marked, deselected from the tier-1
loop):

* **Flat ingestion memory** — streaming a 50k-job trace from disk through
  the full transform + conversion pipeline allocates no more than streaming
  a 5k-job trace: peak allocation is independent of trace length, so the
  process RSS of a replay is set by the simulation state, never by
  ingestion.
* **Streaming == materialised** — replaying through
  :class:`~repro.workloads.traces.StreamingWorkload` produces byte-identical
  metrics to the materialising registry path.
* **50k-job end-to-end replay** — the full trace replays through the
  simulator via the streaming path and every job finishes; serial and
  parallel sweeps of the ``trace-replay`` scenario agree byte-for-byte at a
  scale well beyond the tier-1 smoke sizes.
"""

from __future__ import annotations

import json
import tracemalloc

import pytest

from repro.experiments.scenarios import run_scenario
from repro.experiments.setup import ExperimentConfig, run_experiment
from repro.workloads import (
    StreamingWorkload,
    SwfReader,
    SwfWriter,
    stream_trace_jobspecs,
    synthetic_das3_trace,
)

pytestmark = pytest.mark.bench

#: The bundled synthetic trace at benchmark scale.  load_factor=3 keeps the
#: modelled DAS-3 busy but stable (the run drains instead of saturating).
BIG_TRACE = "trace:das3-synthetic?jobs=50000&load_factor=3&max_procs=32&malleable=0.5"


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    """A 50k-job synthetic trace written to disk (streamed, never in memory)."""
    path = tmp_path_factory.mktemp("traces") / "das3-50k.swf"
    SwfWriter(header=["synthetic DAS-3 benchmark trace"]).write(
        synthetic_das3_trace(jobs=50_000), path
    )
    return path


def _peak_streaming_bytes(path, max_jobs) -> int:
    """Peak allocation while running the full ingestion pipeline from disk."""
    from repro.workloads.traces import LoadFactor, ShrinkProcessors, apply_transforms
    from repro.workloads.swf import iter_jobspecs

    tracemalloc.start()
    try:
        records = apply_transforms(
            SwfReader().iter_records(path), [LoadFactor(3.0), ShrinkProcessors(32)]
        )
        count = 0
        last = None
        for spec in iter_jobspecs(records, malleable_fraction=0.5, max_jobs=max_jobs):
            count += 1
            last = spec
        assert count == max_jobs and last is not None
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_50k_trace_streams_with_flat_memory(trace_file):
    """Ingestion peak is independent of trace length.

    Peak *allocation* (tracemalloc) is the right per-phase proxy for peak
    RSS here: ``resource.ru_maxrss`` is a process-wide high watermark, so it
    cannot distinguish the two streams inside one process.  If the pipeline
    materialised records or specs, the 50k stream would allocate roughly 10x
    the 5k stream (~tens of MB); streaming keeps both at the constant
    overhead of the reader + one in-flight record.
    """
    small_peak = _peak_streaming_bytes(trace_file, 5_000)
    large_peak = _peak_streaming_bytes(trace_file, 50_000)
    print(f"\npeak ingestion allocation: 5k jobs {small_peak / 1e3:.0f}kB, "
          f"50k jobs {large_peak / 1e3:.0f}kB")
    # Flat: the 10x longer stream may not even double peak allocation.
    assert large_peak < 2 * small_peak + 100_000
    # And absolutely small: far below what 50k materialised records need.
    assert large_peak < 5_000_000


def _metrics_digest(result) -> str:
    return json.dumps(result.metrics.to_dict(), sort_keys=True)


def test_streaming_replay_matches_materialised_replay():
    reference = "trace:das3-synthetic?jobs=4000&load_factor=3&max_procs=32&malleable=0.5"
    config = ExperimentConfig(
        name="trace-stream-vs-materialised",
        workload=reference,
        job_count=3_000,
        malleability_policy="EGS",
        background_fraction=0.0,
        time_limit=20_000_000.0,
    )
    materialised = run_experiment(config)  # registry path builds the full spec
    streaming = run_experiment(
        config, workload=StreamingWorkload.from_reference(reference, job_count=3_000)
    )
    assert materialised.all_done and streaming.all_done
    # The simulated outcomes must agree byte for byte.  (Total event counts
    # may differ slightly: the driver cannot know a streaming workload's
    # horizon upfront, so it advances in check-interval chunks and processes
    # a few extra poll timeouts after the last job finished.)
    assert _metrics_digest(materialised) == _metrics_digest(streaming)
    assert materialised.workload_duration == streaming.workload_duration


def test_50k_trace_replays_end_to_end_via_streaming():
    config = ExperimentConfig(
        name="trace-50k",
        workload=BIG_TRACE,
        job_count=50_000,
        malleability_policy="EGS",
        background_fraction=0.0,
        time_limit=20_000_000.0,
    )
    workload = StreamingWorkload.from_reference(BIG_TRACE, job_count=50_000)
    result = run_experiment(config, workload=workload)
    assert result.all_done
    assert result.metrics.job_count == 50_000
    assert workload.submitted_count == 50_000
    print(
        f"\n50k-job streaming replay: {result.events_processed} events, "
        f"simulated {result.simulated_time:.0f}s"
    )


def test_trace_scenario_serial_vs_parallel_at_scale():
    def digest(results) -> str:
        return json.dumps(
            {label: r.metrics.to_dict() for label, r in sorted(results.items())},
            sort_keys=True,
        )

    serial = run_scenario("trace-replay", job_count=400, seed=0, jobs=1, cache=None)
    parallel = run_scenario("trace-replay", job_count=400, seed=0, jobs=2, cache=None)
    assert digest(serial) == digest(parallel)


def test_lazy_stream_head_of_a_100k_trace_is_instant():
    # Pulling 10 specs off a nominally 100k-job trace must not generate the
    # other 99 990 records (laziness end to end through the ref pipeline).
    import itertools
    import time

    started = time.perf_counter()
    head = list(
        itertools.islice(
            stream_trace_jobspecs("trace:das3-synthetic?jobs=100000&load_factor=2"), 10
        )
    )
    elapsed = time.perf_counter() - started
    assert len(head) == 10
    assert elapsed < 1.0
