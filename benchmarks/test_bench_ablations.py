"""Ablation benchmarks on the design choices called out in DESIGN.md.

These sweeps go beyond the paper's figures: they quantify how sensitive the
results are to the knobs the paper mentions but does not vary (the
job-management approach, the malleability policy including related-work
baselines, the local-user threshold, the grow/shrink overhead, the placement
policy and the background load).  Each benchmark prints a summary table so
the trends can be read from the output.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    ablation_report,
    run_approach_ablation,
    run_background_load_ablation,
    run_overhead_ablation,
    run_placement_ablation,
    run_policy_ablation,
    run_threshold_ablation,
)

from _bench_env import bench_jobs, bench_seed

pytestmark = pytest.mark.bench  # deselected by default (see pyproject.toml); run with -m bench


def _jobs() -> int:
    # Ablations run several configurations; use a reduced job count.
    return max(40, bench_jobs() // 2)


def test_bench_ablation_approach(benchmark):
    """PRA versus PWA on the same high-load workload."""
    results = benchmark.pedantic(
        lambda: run_approach_ablation(job_count=_jobs(), seed=bench_seed()),
        rounds=1,
        iterations=1,
    )
    print("\n" + ablation_report(results, title="Ablation: PRA vs PWA (EGS, W'm)"))
    summaries = {label: r.metrics.summary() for label, r in results.items()}
    pra = next(v for k, v in summaries.items() if k.startswith("PRA"))
    pwa = next(v for k, v in summaries.items() if k.startswith("PWA"))
    # PRA never shrinks; PWA may.  On a moderately loaded system the two
    # approaches otherwise behave similarly (the paper's own observation that
    # "if the system load is low ... PWA behaves like PRA").
    assert pra["shrink_messages"] == 0
    assert pra["mean_average_allocation"] >= 0.85 * pwa["mean_average_allocation"]
    for result in results.values():
        assert result.all_done


def test_bench_ablation_policies(benchmark):
    """FPSMA and EGS against the equipartition/folding baselines and no malleability."""
    results = benchmark.pedantic(
        lambda: run_policy_ablation(job_count=_jobs(), seed=bench_seed()),
        rounds=1,
        iterations=1,
    )
    print("\n" + ablation_report(results, title="Ablation: malleability policies (PRA, Wm)"))
    summaries = {label: r.metrics.summary() for label, r in results.items()}
    none = next(v for k, v in summaries.items() if k.startswith("no-malleability"))
    for label, summary in summaries.items():
        if label.startswith("no-malleability"):
            continue
        # Every malleability policy beats running the jobs at their initial size.
        assert summary["mean_execution_time"] < none["mean_execution_time"], label
        assert summary["mean_average_allocation"] > none["mean_average_allocation"], label


def test_bench_ablation_threshold(benchmark):
    """Effect of the per-cluster idle threshold reserved for local users."""
    results = benchmark.pedantic(
        lambda: run_threshold_ablation(job_count=_jobs(), seed=bench_seed()),
        rounds=1,
        iterations=1,
    )
    print("\n" + ablation_report(results, title="Ablation: grow threshold (EGS, PRA, Wm)"))
    summaries = {label: r.metrics.summary() for label, r in results.items()}
    # A larger reserve leaves less room to grow.
    assert (
        summaries["threshold=32"]["mean_average_allocation"]
        <= summaries["threshold=0"]["mean_average_allocation"] + 1e-9
    )


def test_bench_ablation_overhead(benchmark):
    """Effect of the GRAM submission latency on the benefit of malleability."""
    results = benchmark.pedantic(
        lambda: run_overhead_ablation(job_count=_jobs(), seed=bench_seed()),
        rounds=1,
        iterations=1,
    )
    print("\n" + ablation_report(results, title="Ablation: GRAM grow/shrink overhead (EGS, PRA, Wm)"))
    summaries = {label: r.metrics.summary() for label, r in results.items()}
    cheap = summaries["gram-latency=0s"]
    expensive = summaries["gram-latency=120s"]
    # Slower GRAM interactions mean jobs reach smaller sizes.
    assert expensive["mean_average_allocation"] <= cheap["mean_average_allocation"] + 1e-9


def test_bench_ablation_placement(benchmark):
    """Interaction between the placement policies and malleability."""
    results = benchmark.pedantic(
        lambda: run_placement_ablation(job_count=_jobs(), seed=bench_seed()),
        rounds=1,
        iterations=1,
    )
    print("\n" + ablation_report(results, title="Ablation: placement policies (EGS, PRA, Wm)"))
    for label, result in results.items():
        assert result.metrics.unfinished_jobs == 0, label
        assert result.metrics.job_count == _jobs(), label


def test_bench_ablation_background(benchmark):
    """Resilience to background load submitted directly to the local RMs."""
    results = benchmark.pedantic(
        lambda: run_background_load_ablation(job_count=_jobs(), seed=bench_seed()),
        rounds=1,
        iterations=1,
    )
    print("\n" + ablation_report(results, title="Ablation: background load (EGS, PRA, Wm)"))
    summaries = {label: r.metrics.summary() for label, r in results.items()}
    # The resilience claim: every KOALA job still completes under heavy
    # background load, and mean execution times do not blow up relative to an
    # empty system (KOALA keeps finding processors for its malleable jobs).
    for label, result in results.items():
        assert result.all_done, label
    baseline = summaries["background=none"]["mean_execution_time"]
    assert summaries["background=60s"]["mean_execution_time"] < 1.5 * baseline
    assert summaries["background=300s"]["mean_execution_time"] < 1.5 * baseline
