"""Unit tests of the DYNACO control loop: observe, plan, execute, framework."""

from __future__ import annotations

import pytest

from repro.apps import NoReconfigurationCost, RunningApplication, gadget2_profile, ft_profile
from repro.dynaco import (
    AfpacExecutor,
    CallbackMonitor,
    Dynaco,
    GrowOffer,
    MalleabilityDecision,
    MalleabilityPlanner,
    SchedulerFrontendMonitor,
    ShrinkRequest,
    Strategy,
)
from repro.dynaco.execute import ImmediateExecutor
from repro.sim import Environment


# ---------------------------------------------------------------------------
# Observe
# ---------------------------------------------------------------------------


def test_frontend_monitor_publishes_grow_and_shrink_events():
    monitor = SchedulerFrontendMonitor("frontend")
    received = []
    monitor.subscribe(received.append)
    grow = monitor.on_grow_message(10.0, offered=5, current_allocation=2)
    shrink = monitor.on_shrink_message(20.0, requested=3, current_allocation=7, mandatory=True)
    assert received == [grow, shrink]
    assert monitor.history == [grow, shrink]
    assert isinstance(grow, GrowOffer) and grow.offered == 5
    assert isinstance(shrink, ShrinkRequest) and shrink.mandatory
    assert monitor.name == "frontend"


def test_callback_monitor_emits_custom_events():
    monitor = CallbackMonitor("app-monitor")
    received = []
    monitor.subscribe(received.append)
    event = GrowOffer(time=1.0, offered=4, current_allocation=2, source="application")
    monitor.emit(event)
    assert received == [event]


def test_event_validation():
    with pytest.raises(ValueError):
        GrowOffer(time=0.0, offered=-1, current_allocation=2)
    with pytest.raises(ValueError):
        ShrinkRequest(time=0.0, requested=-1, current_allocation=2)


# ---------------------------------------------------------------------------
# Plan
# ---------------------------------------------------------------------------


def test_planner_produces_grow_recipe():
    planner = MalleabilityPlanner()
    plan = planner.plan(4, Strategy(target_allocation=10))
    kinds = [action.kind for action in plan]
    assert kinds == ["recruit-processors", "wait-adaptation-point", "redistribute-data"]
    assert plan.actions[0].parameter("count") == 6
    assert plan.actions[2].parameter("to") == 10
    assert not plan.empty and len(plan) == 3


def test_planner_produces_shrink_recipe():
    planner = MalleabilityPlanner()
    plan = planner.plan(10, Strategy(target_allocation=4))
    kinds = [action.kind for action in plan]
    assert kinds == ["wait-adaptation-point", "redistribute-data", "release-processors"]
    assert plan.actions[2].parameter("count") == 6
    assert plan.actions[0].parameter("missing", default="x") == "x"


def test_planner_empty_plan_when_nothing_changes():
    plan = MalleabilityPlanner().plan(8, Strategy(target_allocation=8))
    assert plan.empty and len(plan) == 0


# ---------------------------------------------------------------------------
# Execute + framework
# ---------------------------------------------------------------------------


def build_loop(env, profile=None, initial=2):
    profile = profile or gadget2_profile().with_reconfiguration(NoReconfigurationCost())
    app = RunningApplication(env, profile, initial, adaptation_point_interval=0.0).start()
    monitor = SchedulerFrontendMonitor()
    dynaco = Dynaco(
        env,
        decision=MalleabilityDecision(2, profile.default_maximum, profile.constraint),
        planner=MalleabilityPlanner(),
        executor=AfpacExecutor(env, app),
        monitor=monitor,
    )
    return app, monitor, dynaco


def test_adapt_executes_grow_and_reports_result():
    env = Environment()
    app, monitor, dynaco = build_loop(env)

    def driver(env):
        yield env.timeout(10)
        event = monitor.on_grow_message(env.now, offered=6, current_allocation=app.allocation)
        result = yield dynaco.adapt(event, app.allocation)
        return result

    driver_proc = env.process(driver(env))
    env.run(app.completed)
    result = driver_proc.value
    assert result.accepted_change == 6
    assert result.new_allocation == 8
    assert not result.declined
    assert app.record.grow_count == 1
    assert dynaco.executed_adaptations == 1


def test_adapt_is_idempotent_per_event():
    env = Environment()
    app, monitor, dynaco = build_loop(env)

    def driver(env):
        yield env.timeout(5)
        event = monitor.on_grow_message(env.now, offered=4, current_allocation=app.allocation)
        first = dynaco.adapt(event, app.allocation)
        second = dynaco.adapt(event, app.allocation)
        assert first is second
        yield first

    env.process(driver(env))
    env.run(app.completed)
    # The monitor subscription plus two explicit calls still execute only one
    # adaptation.
    assert app.record.grow_count == 1


def test_declined_adaptation_completes_immediately():
    env = Environment()
    app, monitor, dynaco = build_loop(env)
    event = GrowOffer(time=0.0, offered=0, current_allocation=app.allocation)
    completion = dynaco.adapt(event, app.allocation)
    assert completion.triggered
    assert completion.value.declined
    env.run(app.completed)
    assert app.record.grow_count == 0


def test_preview_has_no_side_effects():
    env = Environment()
    app, monitor, dynaco = build_loop(env, profile=ft_profile().with_reconfiguration(NoReconfigurationCost()))
    strategy = dynaco.preview(GrowOffer(time=0.0, offered=13, current_allocation=2), 2)
    assert strategy.target_allocation == 8
    env.run(app.completed)
    assert app.record.grow_count == 0
    assert dynaco.history == []


def test_immediate_executor_bypasses_runtime_costs():
    env = Environment()
    profile = gadget2_profile()
    app = RunningApplication(env, profile, 2, adaptation_point_interval=5.0).start()
    dynaco = Dynaco(
        env,
        decision=MalleabilityDecision(2, 46),
        planner=MalleabilityPlanner(),
        executor=ImmediateExecutor(env, app),
    )

    def driver(env):
        yield env.timeout(1)
        event = GrowOffer(time=env.now, offered=10, current_allocation=app.allocation)
        result = yield dynaco.adapt(event, app.allocation)
        return (result.new_allocation, env.now)

    driver_proc = env.process(driver(env))
    env.run(app.completed)
    # The immediate executor applies the change with zero simulated delay.
    assert driver_proc.value == (12, 1.0)


def test_monitor_driven_adaptation_without_explicit_adapt_call():
    env = Environment()
    app, monitor, dynaco = build_loop(env)

    def driver(env):
        yield env.timeout(10)
        monitor.on_grow_message(env.now, offered=8, current_allocation=app.allocation)

    env.process(driver(env))
    env.run(app.completed)
    # The subscription alone executed the adaptation.
    assert app.record.grow_count == 1
    assert app.record.maximum_allocation == 10
