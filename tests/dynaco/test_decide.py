"""Unit and property tests of the DYNACO decide component."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import AnySize, PowerOfTwo
from repro.dynaco import GrowOffer, MalleabilityDecision, ShrinkRequest
from repro.dynaco.events import EnvironmentEvent


def decide_grow(decision, offered, current):
    return decision.decide(
        GrowOffer(time=0.0, offered=offered, current_allocation=current), current
    )


def decide_shrink(decision, requested, current):
    return decision.decide(
        ShrinkRequest(time=0.0, requested=requested, current_allocation=current), current
    )


# ---------------------------------------------------------------------------
# Growing
# ---------------------------------------------------------------------------


def test_grow_accepts_up_to_maximum():
    decision = MalleabilityDecision(minimum=2, maximum=10, constraint=AnySize())
    assert decide_grow(decision, 4, 2).target_allocation == 6
    assert decide_grow(decision, 100, 2).target_allocation == 10
    assert decide_grow(decision, 1, 10).target_allocation == 10  # already at max


def test_grow_respects_power_of_two_constraint():
    decision = MalleabilityDecision(minimum=2, maximum=32, constraint=PowerOfTwo())
    # "the FT application accepts only the highest power of 2 processors that
    #  does not exceed the allocated number"
    assert decide_grow(decision, 13, 2).target_allocation == 8
    assert decide_grow(decision, 1, 2).target_allocation == 2  # 3 is not a power of two
    assert decide_grow(decision, 100, 2).target_allocation == 32


def test_grow_zero_offer_keeps_current():
    decision = MalleabilityDecision(minimum=2, maximum=32)
    strategy = decide_grow(decision, 0, 4)
    assert strategy.target_allocation == 4


def test_grow_eagerness_scales_the_offer():
    decision = MalleabilityDecision(minimum=2, maximum=32, grow_eagerness=0.5)
    assert decide_grow(decision, 10, 2).target_allocation == 7
    shy = MalleabilityDecision(minimum=2, maximum=32, grow_eagerness=0.0)
    assert decide_grow(shy, 10, 2).target_allocation == 2


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def test_shrink_never_goes_below_minimum():
    decision = MalleabilityDecision(minimum=2, maximum=32, constraint=AnySize())
    assert decide_shrink(decision, 3, 8).target_allocation == 5
    assert decide_shrink(decision, 100, 8).target_allocation == 2
    assert decide_shrink(decision, 1, 2).target_allocation == 2  # already at minimum


def test_shrink_with_power_of_two_constraint_releases_more_if_needed():
    decision = MalleabilityDecision(minimum=2, maximum=32, constraint=PowerOfTwo())
    # Asked to give up 2 out of 8: 6 is not a power of two, so FT falls to 4,
    # voluntarily releasing more than requested.
    assert decide_shrink(decision, 2, 8).target_allocation == 4
    # Asked for more than it can give: shrink to the minimum power of two.
    assert decide_shrink(decision, 100, 16).target_allocation == 2


def test_shrink_blocked_when_constraint_leaves_no_room():
    # Minimum 3 with a power-of-two constraint: only 4, 8, ... are usable.
    decision = MalleabilityDecision(minimum=3, maximum=32, constraint=PowerOfTwo())
    # From 4, shrinking by 1 would require size 3 (unacceptable) and 2 is
    # below the minimum, so the application refuses to shrink.
    assert decide_shrink(decision, 1, 4).target_allocation == 4
    # From 8, shrinking by 3 lands on 5; the largest acceptable size >= 3 that
    # is below 8 is 4.
    assert decide_shrink(decision, 3, 8).target_allocation == 4


def test_unknown_event_keeps_current_allocation():
    decision = MalleabilityDecision(minimum=2, maximum=32)
    strategy = decision.decide(EnvironmentEvent(time=0.0), 6)
    assert strategy.target_allocation == 6


def test_constructor_validation():
    with pytest.raises(ValueError):
        MalleabilityDecision(minimum=0, maximum=4)
    with pytest.raises(ValueError):
        MalleabilityDecision(minimum=8, maximum=4)
    with pytest.raises(ValueError):
        MalleabilityDecision(minimum=2, maximum=8, grow_eagerness=2.0)


# ---------------------------------------------------------------------------
# Property-based invariants of the decision procedure
# ---------------------------------------------------------------------------


@given(
    minimum=st.integers(min_value=1, max_value=8),
    span=st.integers(min_value=0, max_value=56),
    current=st.integers(min_value=1, max_value=64),
    offered=st.integers(min_value=0, max_value=64),
    power_of_two=st.booleans(),
)
@settings(max_examples=150, deadline=None)
def test_grow_decision_invariants(minimum, span, current, offered, power_of_two):
    """A grow decision never shrinks, never exceeds the maximum, never uses
    more than the offer, and always lands on an acceptable size."""
    maximum = minimum + span
    current = min(max(current, minimum), maximum)
    constraint = PowerOfTwo() if power_of_two else AnySize()
    decision = MalleabilityDecision(minimum=minimum, maximum=maximum, constraint=constraint)
    target = decide_grow(decision, offered, current).target_allocation
    assert current <= target <= maximum
    assert target - current <= offered
    if target != current:
        assert constraint.is_acceptable(target)


@given(
    minimum=st.integers(min_value=1, max_value=8),
    span=st.integers(min_value=0, max_value=56),
    current=st.integers(min_value=1, max_value=64),
    requested=st.integers(min_value=0, max_value=64),
    power_of_two=st.booleans(),
)
@settings(max_examples=150, deadline=None)
def test_shrink_decision_invariants(minimum, span, current, requested, power_of_two):
    """A shrink decision never grows, never goes below the minimum, and always
    lands on an acceptable size."""
    maximum = minimum + span
    current = min(max(current, minimum), maximum)
    constraint = PowerOfTwo() if power_of_two else AnySize()
    decision = MalleabilityDecision(minimum=minimum, maximum=maximum, constraint=constraint)
    target = decide_shrink(decision, requested, current).target_allocation
    assert minimum <= target <= current
    if target != current:
        assert constraint.is_acceptable(target)
