"""End-to-end tests of the ``repro-bench`` command line.

These run the real simulator on a tiny pinned workload (a few jobs per
configuration), so every CLI path — record writing, bootstrap, the
regression gate and baseline updates — is exercised against genuine
measurements.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.cli import main

TINY = ["figure7", "--job-count", "3", "--seed", "0"]


@pytest.fixture()
def bench_dirs(tmp_path, monkeypatch):
    """Isolated output/baseline directories, with the cwd kept clean."""
    monkeypatch.chdir(tmp_path)
    output = tmp_path / "out"
    baselines = tmp_path / "baselines"
    return output, baselines


def run_cli(output, baselines, *extra: str) -> int:
    return main(
        TINY + ["--output-dir", str(output), "--baseline-dir", str(baselines)]
        + list(extra)
    )


def test_bench_writes_record_with_events_and_wall_clock(bench_dirs, capsys):
    output, baselines = bench_dirs
    assert run_cli(output, baselines) == 0
    record = json.loads((output / "BENCH_figure7.json").read_text())
    assert record["scenario"] == "figure7"
    assert record["runs"] == 4
    assert record["wall_clock_seconds"] > 0
    assert record["events_processed"] > 0
    assert record["events_per_second"] > 0
    assert record["metrics_digest"]
    assert "figure7" in capsys.readouterr().out


def test_check_bootstraps_then_passes(bench_dirs, capsys):
    output, baselines = bench_dirs
    assert run_cli(output, baselines, "--check") == 0
    assert "bootstrapped" in capsys.readouterr().out
    assert (baselines / "BENCH_figure7.json").is_file()
    # A second, identical-workload run gates against the bootstrapped
    # baseline without failing (generous threshold: CI machines are noisy).
    assert run_cli(output, baselines, "--check", "--threshold", "400%") == 0


def test_check_fails_on_injected_slowdown(bench_dirs, capsys):
    output, baselines = bench_dirs
    assert run_cli(output, baselines, "--check") == 0  # bootstrap
    baseline_path = baselines / "BENCH_figure7.json"
    baseline = json.loads(baseline_path.read_text())
    # Pretend the committed baseline was 10x faster: the fresh measurement is
    # now an (injected) ≥15% slowdown and the gate must fail.
    baseline["wall_clock_seconds"] /= 10.0
    baseline_path.write_text(json.dumps(baseline))
    assert run_cli(output, baselines, "--check", "--threshold", "15%") == 1
    assert "regression" in capsys.readouterr().out


def test_check_reports_improvement_without_failing(bench_dirs, capsys):
    output, baselines = bench_dirs
    assert run_cli(output, baselines, "--check") == 0  # bootstrap
    baseline_path = baselines / "BENCH_figure7.json"
    baseline = json.loads(baseline_path.read_text())
    baseline["wall_clock_seconds"] *= 1000.0
    baseline_path.write_text(json.dumps(baseline))
    assert run_cli(output, baselines, "--check") == 0
    assert "improvement" in capsys.readouterr().out


def test_update_writes_new_baseline(bench_dirs):
    output, baselines = bench_dirs
    assert run_cli(output, baselines, "--update") == 0
    record = json.loads((baselines / "BENCH_figure7.json").read_text())
    assert record["job_count"] == 3


def test_update_refuses_cache_hit_records(bench_dirs, tmp_path, capsys):
    output, baselines = bench_dirs
    cache = tmp_path / "cache"
    # Warm the cache, then re-run against it: all runs become cache hits and
    # must not be accepted as a timing baseline.
    assert run_cli(output, baselines, "--cache-dir", str(cache)) == 0
    assert run_cli(output, baselines, "--cache-dir", str(cache), "--update") == 1
    assert not (baselines / "BENCH_figure7.json").exists()
    assert "NOT updated" in capsys.readouterr().err


def test_list_names_benchable_scenarios(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "figure7" in out and "figure8" in out
    assert "table1" not in out  # static scenarios cannot be benchmarked


def test_bad_threshold_is_a_usage_error(bench_dirs):
    output, baselines = bench_dirs
    with pytest.raises(SystemExit):
        run_cli(output, baselines, "--check", "--threshold", "-3%")
