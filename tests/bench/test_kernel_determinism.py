"""Determinism of the fast-path kernel across execution modes.

The pooled-Timeout kernel must not change a single simulated outcome:
figure 7 and figure 8 sweeps produce byte-identical metrics whether the
configurations run serially in this process or fanned out over worker
subprocesses, and repeated runs are byte-identical to each other (the pool
is per-environment, so no state can leak between runs).  Figure 6 is a
static report; it must render identically on repeated builds.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.scenarios import run_scenario, scenario_report


def sweep_digest(results) -> str:
    return json.dumps(
        {label: result.metrics.to_dict() for label, result in sorted(results.items())},
        sort_keys=True,
    )


@pytest.mark.parametrize("scenario", ["figure7", "figure8"])
def test_serial_and_parallel_sweeps_are_byte_identical(scenario):
    serial = run_scenario(scenario, job_count=8, seed=0, jobs=1, cache=None)
    parallel = run_scenario(scenario, job_count=8, seed=0, jobs=2, cache=None)
    assert sweep_digest(serial) == sweep_digest(parallel)


@pytest.mark.parametrize("scenario", ["figure7", "figure8"])
def test_repeated_serial_runs_are_byte_identical(scenario):
    first = run_scenario(scenario, job_count=6, seed=0, jobs=1, cache=None)
    second = run_scenario(scenario, job_count=6, seed=0, jobs=1, cache=None)
    assert sweep_digest(first) == sweep_digest(second)
    # And the runs processed the same number of kernel events.
    assert {label: r.events_processed for label, r in first.items()} == {
        label: r.events_processed for label, r in second.items()
    }


def test_figure6_report_is_stable():
    assert scenario_report("figure6") == scenario_report("figure6")


@pytest.mark.parametrize("scenario", ["figure7", "fault-sweep", "churn-replay"])
def test_heap_and_calendar_queues_simulate_identically(scenario, monkeypatch):
    """The two event-queue implementations are observationally equivalent.

    ``REPRO_SIM_QUEUE`` selects the kernel's event queue (see
    ``repro.sim.calqueue``); both must produce byte-identical metrics for
    the same sweep — the sweep-level version of the per-entry drain-order
    property in ``tests/sim/test_calqueue.py``.
    """
    monkeypatch.setenv("REPRO_SIM_QUEUE", "calendar")
    calendar = run_scenario(scenario, job_count=8, seed=0, jobs=1, cache=None)
    monkeypatch.setenv("REPRO_SIM_QUEUE", "heap")
    heap = run_scenario(scenario, job_count=8, seed=0, jobs=1, cache=None)
    assert sweep_digest(calendar) == sweep_digest(heap)
    assert {label: r.events_processed for label, r in calendar.items()} == {
        label: r.events_processed for label, r in heap.items()
    }


def test_parallel_sweep_is_queue_independent(monkeypatch):
    # Worker subprocesses inherit the selection through the environment;
    # a calendar parallel sweep must match a heap serial sweep exactly.
    monkeypatch.setenv("REPRO_SIM_QUEUE", "calendar")
    parallel = run_scenario("figure7", job_count=8, seed=0, jobs=2, cache=None)
    monkeypatch.setenv("REPRO_SIM_QUEUE", "heap")
    serial = run_scenario("figure7", job_count=8, seed=0, jobs=1, cache=None)
    assert sweep_digest(parallel) == sweep_digest(serial)
