"""Unit tests of benchmark baseline storage, diffing and gating."""

from __future__ import annotations

import pytest

from repro.bench import (
    BenchRecord,
    check_record,
    compare_records,
    load_baseline,
    parse_threshold,
    save_baseline,
)
from repro.bench.baseline import (
    STATUS_BOOTSTRAPPED,
    STATUS_IMPROVEMENT,
    STATUS_OK,
    STATUS_REGRESSION,
)


def record(wall: float = 1.0, **overrides) -> BenchRecord:
    fields = dict(
        scenario="figure7",
        job_count=40,
        seed=0,
        runs=4,
        wall_clock_seconds=wall,
        events_processed=20_000,
        events_per_second=20_000 / wall,
        peak_rss_bytes=40_000_000,
        cache_hits=0,
        code_version="abc",
        metrics_digest="digest-1",
        host="Linux-x86_64",
        python_version="3.12.0",
    )
    fields.update(overrides)
    return BenchRecord(**fields)


# ---------------------------------------------------------------------------
# Threshold parsing
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "text, expected",
    [("15%", 0.15), ("0.15", 0.15), ("7.5%", 0.075), (0.2, 0.2), ("400%", 4.0)],
)
def test_parse_threshold_accepts_percent_and_fraction(text, expected):
    assert parse_threshold(text) == pytest.approx(expected)


@pytest.mark.parametrize("text", ["0", "-5%", "nope", "15", "1.5"])
def test_parse_threshold_rejects_nonsense_and_ambiguity(text):
    with pytest.raises(ValueError):
        parse_threshold(text)


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------


def test_regression_detected_past_threshold():
    comparison = compare_records(record(wall=1.3), record(wall=1.0), threshold=0.15)
    assert comparison.status == STATUS_REGRESSION
    assert comparison.failed
    assert comparison.delta == pytest.approx(0.3)
    assert "30.0% slower" in comparison.describe()


def test_improvement_auto_reported_past_threshold():
    comparison = compare_records(record(wall=0.7), record(wall=1.0), threshold=0.15)
    assert comparison.status == STATUS_IMPROVEMENT
    assert not comparison.failed
    assert "faster" in comparison.describe()


def test_within_threshold_is_ok_both_ways():
    for wall in (0.9, 1.1):
        comparison = compare_records(record(wall=wall), record(wall=1.0), threshold=0.15)
        assert comparison.status == STATUS_OK
        assert not comparison.failed


def test_metrics_digest_change_is_noted_not_gated():
    comparison = compare_records(
        record(wall=1.0, metrics_digest="digest-2"), record(wall=1.0)
    )
    assert comparison.status == STATUS_OK
    assert any("digest" in note for note in comparison.notes)


def test_workload_mismatch_is_never_gated():
    comparison = compare_records(
        record(wall=10.0, job_count=300), record(wall=1.0), threshold=0.15
    )
    assert comparison.status == STATUS_OK
    assert any("workload mismatch" in note for note in comparison.notes)


def test_host_mismatch_is_never_gated():
    comparison = compare_records(
        record(wall=10.0, host="Darwin-arm64"), record(wall=1.0), threshold=0.15
    )
    assert comparison.status == STATUS_OK
    assert any("host mismatch" in note for note in comparison.notes)


def test_python_feature_release_mismatch_is_never_gated():
    comparison = compare_records(
        record(wall=10.0, python_version="3.9.18"), record(wall=1.0), threshold=0.15
    )
    assert comparison.status == STATUS_OK
    assert any("host mismatch" in note for note in comparison.notes)


def test_python_micro_release_difference_still_gates():
    comparison = compare_records(
        record(wall=1.3, python_version="3.12.7"), record(wall=1.0), threshold=0.15
    )
    assert comparison.status == STATUS_REGRESSION


def test_cache_hits_are_called_out():
    comparison = compare_records(record(wall=0.01, cache_hits=4), record(wall=1.0))
    assert any("cache" in note for note in comparison.notes)


# ---------------------------------------------------------------------------
# Gating against a baseline directory
# ---------------------------------------------------------------------------


def test_missing_baseline_bootstraps_cleanly(tmp_path):
    current = record(wall=1.0)
    comparison = check_record(current, directory=tmp_path)
    assert comparison.status == STATUS_BOOTSTRAPPED
    assert not comparison.failed
    # The record itself became the committed baseline...
    stored = load_baseline(tmp_path, "figure7")
    assert stored is not None
    assert stored.wall_clock_seconds == current.wall_clock_seconds
    # ...so an identical second run gates cleanly against it.
    assert check_record(record(wall=1.0), directory=tmp_path).status == STATUS_OK


def test_cache_hit_records_never_become_baselines(tmp_path):
    comparison = check_record(record(cache_hits=2), directory=tmp_path)
    assert comparison.status == STATUS_BOOTSTRAPPED
    assert load_baseline(tmp_path, "figure7") is None


def test_check_record_detects_regression_against_saved_baseline(tmp_path):
    save_baseline(tmp_path, record(wall=1.0))
    comparison = check_record(record(wall=1.2), directory=tmp_path, threshold=0.15)
    assert comparison.status == STATUS_REGRESSION
    assert comparison.failed


def test_baseline_round_trips_through_json(tmp_path):
    original = record(wall=1.234)
    save_baseline(tmp_path, original)
    loaded = load_baseline(tmp_path, "figure7")
    assert loaded == original
