"""Unit tests of the placement queue, the claim ledger and the information service."""

from __future__ import annotations

import pytest

from repro.koala import Job, PlacementQueue
from repro.koala.claiming import ClaimLedger
from repro.koala.kis import KoalaInformationService
from repro.cluster import Multicluster


# ---------------------------------------------------------------------------
# Placement queue
# ---------------------------------------------------------------------------


def make_job(ft, name):
    return Job.malleable(ft, name=name)


def test_queue_is_fifo_and_tracks_membership(ft):
    queue = PlacementQueue()
    a, b = make_job(ft, "a"), make_job(ft, "b")
    queue.enqueue(a, time=0.0)
    queue.enqueue(b, time=1.0)
    assert len(queue) == 2 and bool(queue)
    assert queue.jobs == [a, b]
    assert queue.head.job is a
    assert a in queue and b in queue
    queue.remove(a)
    assert queue.jobs == [b]
    with pytest.raises(ValueError):
        queue.remove(a)


def test_queue_rejects_duplicate_enqueue(ft):
    queue = PlacementQueue()
    job = make_job(ft, "dup")
    queue.enqueue(job, time=0.0)
    with pytest.raises(ValueError):
        queue.enqueue(job, time=1.0)


def test_queue_failure_counting_and_abandonment(ft):
    queue = PlacementQueue(max_tries=3)
    job = make_job(ft, "flaky")
    queue.enqueue(job, time=0.0)
    assert queue.record_failure(job, "no room") is False
    assert queue.record_failure(job, "no room") is False
    assert job.placement_tries == 2
    # Third failure exhausts the retries and removes the job.
    assert queue.record_failure(job, "no room") is True
    assert job not in queue


def test_queue_unlimited_retries_by_default(ft):
    queue = PlacementQueue()
    job = make_job(ft, "persistent")
    queue.enqueue(job, time=0.0)
    for _ in range(50):
        assert queue.record_failure(job) is False
    assert job in queue


def test_requeue_at_tail(ft):
    queue = PlacementQueue()
    a, b = make_job(ft, "a"), make_job(ft, "b")
    queue.enqueue(a, time=0.0)
    queue.enqueue(b, time=1.0)
    queue.requeue_at_tail(a)
    assert queue.jobs == [b, a]
    with pytest.raises(ValueError):
        queue.requeue_at_tail(make_job(ft, "stranger"))


# ---------------------------------------------------------------------------
# Claim ledger
# ---------------------------------------------------------------------------


def test_ledger_tracks_pending_claims_per_cluster():
    ledger = ClaimLedger()
    claim_a = ledger.reserve("delft", 8, owner="job-a")
    ledger.reserve("delft", 2, owner="job-b")
    ledger.reserve("vu", 4, owner="job-c")
    assert ledger.pending_on("delft") == 10
    assert ledger.pending_on("vu") == 4
    assert ledger.pending_total() == 14
    assert len(ledger) == 3
    assert ledger.owners_on("delft") == {"job-a": 8, "job-b": 2}
    ledger.settle(claim_a)
    assert ledger.pending_on("delft") == 2
    ledger.settle(claim_a)  # settling twice is harmless


def test_ledger_effective_idle_never_negative():
    ledger = ClaimLedger()
    ledger.reserve("delft", 20, owner="huge")
    effective = ledger.effective_idle({"delft": 5, "vu": 7})
    assert effective == {"delft": 0, "vu": 7}
    assert ledger.effective_idle_in("delft", 5) == 0


def test_ledger_adjust_and_validation():
    ledger = ClaimLedger()
    with pytest.raises(ValueError):
        ledger.reserve("delft", 0, owner="zero")
    claim = ledger.reserve("delft", 6, owner="job")
    ledger.adjust(claim, 3)
    assert ledger.pending_on("delft") == 3
    ledger.adjust(claim, 0)  # adjusting to zero settles the claim
    assert ledger.pending_on("delft") == 0


# ---------------------------------------------------------------------------
# KOALA information service
# ---------------------------------------------------------------------------


def test_kis_snapshot_refreshes_on_poll(env, streams):
    system = Multicluster(env, streams=streams)
    cluster = system.add_cluster("a", 16)
    kis = KoalaInformationService(env, system, poll_interval=10.0)
    assert kis.idle_in("a") == 16

    def occupy(env, cluster):
        yield env.timeout(5)
        cluster.allocate(6, owner="job")

    env.process(occupy(env, cluster))
    env.run(until=6)
    # The snapshot is stale until the next poll, the fresh view is not.
    assert kis.idle_in("a") == 16
    assert kis.idle_in("a", fresh=True) == 10
    env.run(until=11)
    assert kis.idle_in("a") == 10
    assert kis.snapshot.total_idle() == 10


def test_kis_poll_callbacks_and_forced_poll(env, streams):
    system = Multicluster(env, streams=streams)
    system.add_cluster("a", 8)
    kis = KoalaInformationService(env, system, poll_interval=20.0)
    polls = []
    kis.on_poll(lambda snapshot: polls.append(snapshot.time))
    env.run(until=65)
    assert polls == [20.0, 40.0, 60.0]
    kis.poll_now()
    assert polls[-1] == 65.0


def test_kis_providers(env, streams):
    system = Multicluster(env, streams=streams)
    system.add_cluster("a", 8)
    system.add_cluster("b", 4)
    system.register_replica("data.h5", "b")
    kis = KoalaInformationService(env, system)
    assert kis.pip.total_processors() == {"a": 8, "b": 4}
    assert kis.rls.sites("data.h5") == {"b"}
    kis.rls.register("data.h5", "a")
    assert kis.rls.sites("data.h5") == {"a", "b"}
    assert kis.nip.transfer_time("a", "b", 100) > 0
    with pytest.raises(ValueError):
        KoalaInformationService(env, system, poll_interval=0)
