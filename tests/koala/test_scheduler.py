"""Integration tests of the KOALA scheduler with malleability management."""

from __future__ import annotations

import pytest

from repro.apps import ft_profile, gadget2_profile
from repro.cluster import Multicluster
from repro.koala import Job, JobState, KoalaScheduler, SchedulerConfig
from repro.sim import RandomStreams


def build_scheduler(
    env,
    *,
    clusters=(("alpha", 32), ("beta", 16)),
    approach="PRA",
    policy="FPSMA",
    offer_mode="released",
    threshold=0,
    poll_interval=10.0,
    seed=3,
):
    streams = RandomStreams(seed=seed)
    system = Multicluster(
        env, streams=streams, gram_submission_latency=1.0, gram_recruit_latency=0.1
    )
    for name, size in clusters:
        system.add_cluster(name, size)
    scheduler = KoalaScheduler(
        env,
        system,
        SchedulerConfig(
            placement_policy="WF",
            malleability_policy=policy,
            approach=approach,
            grow_threshold=threshold,
            grow_offer_mode=offer_mode,
            poll_interval=poll_interval,
            adaptation_point_interval=0.0,
        ),
        streams=streams,
    )
    return system, scheduler


def test_submission_places_job_and_runs_it_to_completion(env):
    system, scheduler = build_scheduler(env)
    job = Job.malleable(gadget2_profile(), name="g1")
    scheduler.submit(job)
    env.run(until=3000)
    assert scheduler.all_done
    assert scheduler.finished == [job]
    assert job.state is JobState.FINISHED
    record = scheduler.records[job.job_id]
    assert record.execution_time > 0
    assert record.submit_time == 0.0
    assert system.used_processors == 0


def test_worst_fit_places_on_the_emptiest_cluster(env):
    system, scheduler = build_scheduler(env)
    system.cluster("alpha").allocate(30, owner="blocker", kind="local")
    job = Job.malleable(gadget2_profile(), name="g1")
    scheduler.submit(job)
    env.run(until=2500)
    assert job.single_component.cluster == "beta"


def test_unplaceable_job_waits_in_the_queue_until_room_appears(env):
    system, scheduler = build_scheduler(env, clusters=(("alpha", 4),))
    blocker = system.cluster("alpha").allocate(3, owner="blocker", kind="local")
    job = Job.malleable(gadget2_profile(), name="waiting")
    scheduler.submit(job)
    env.run(until=100)
    assert scheduler.queue_length == 1
    assert job.state is JobState.QUEUED

    blocker.release()
    env.run(until=1500)
    assert scheduler.all_done
    assert job.state is JobState.FINISHED
    assert scheduler.records[job.job_id].wait_time > 0


def test_pra_grows_running_jobs_when_other_jobs_finish(env):
    # One cluster so released processors are offered to the survivor.
    system, scheduler = build_scheduler(env, clusters=(("alpha", 24),), policy="FPSMA")
    long_job = Job.malleable(gadget2_profile(), name="long")
    short_job = Job.malleable(ft_profile(), name="short")
    scheduler.submit(long_job)
    scheduler.submit(short_job)
    env.run(until=4000)
    assert scheduler.all_done
    long_record = scheduler.records[long_job.job_id]
    # When the FT job finished, its processors were offered to the GADGET job.
    assert long_record.maximum_allocation > 2
    assert scheduler.manager.total_grow_messages >= 1


def test_idle_offer_mode_grows_immediately_to_the_maximum(env):
    system, scheduler = build_scheduler(
        env, clusters=(("alpha", 64),), policy="FPSMA", offer_mode="idle"
    )
    job = Job.malleable(gadget2_profile(), name="eager")
    scheduler.submit(job)
    env.run(until=3000)
    record = scheduler.records[job.job_id]
    assert record.maximum_allocation == 46
    assert record.execution_time < 400.0


def test_grow_threshold_reserves_processors_for_local_users(env):
    system, scheduler = build_scheduler(
        env, clusters=(("alpha", 16),), policy="FPSMA", offer_mode="idle", threshold=6
    )
    job = Job.malleable(gadget2_profile(), name="capped")
    scheduler.submit(job)
    env.run(until=4000)
    record = scheduler.records[job.job_id]
    # 16 processors minus the 6 reserved leaves at most 10 for the job.
    assert record.maximum_allocation <= 10
    assert record.maximum_allocation > 2


def test_pwa_shrinks_running_jobs_to_place_waiting_ones(env):
    system, scheduler = build_scheduler(
        env, clusters=(("alpha", 12),), approach="PWA", policy="FPSMA", offer_mode="idle"
    )
    first = Job.malleable(gadget2_profile(), name="first")
    scheduler.submit(first)
    env.run(until=120)
    # The first job has grown to fill the whole cluster.
    first_runner = scheduler.runner_for(first)
    assert first_runner.current_allocation >= 10

    second = Job.malleable(gadget2_profile(), name="second")
    scheduler.submit(second)
    env.run(until=2500)
    assert scheduler.manager.total_shrink_messages >= 1
    assert second.state in (JobState.RUNNING, JobState.FINISHED)
    records = scheduler.records
    if second.job_id in records:
        assert records[second.job_id].wait_time < 600.0


def test_scheduler_without_malleability_manager_still_schedules(env):
    streams = RandomStreams(seed=9)
    system = Multicluster(env, streams=streams, gram_submission_latency=1.0)
    system.add_cluster("alpha", 16)
    scheduler = KoalaScheduler(
        env,
        system,
        SchedulerConfig(malleability_policy=None),
        streams=streams,
    )
    assert scheduler.manager is None
    job = Job.malleable(ft_profile(), name="plain")
    scheduler.submit(job)
    env.run(until=1000)
    assert scheduler.all_done
    # Without a manager, the job never grows beyond its initial size.
    assert scheduler.records[job.job_id].maximum_allocation == 2


def test_rigid_and_malleable_jobs_coexist(env):
    system, scheduler = build_scheduler(env, clusters=(("alpha", 20),))
    rigid = Job.rigid(ft_profile().as_rigid(), processors=2, name="rigid")
    malleable = Job.malleable(gadget2_profile(), name="malleable")
    scheduler.submit(rigid)
    scheduler.submit(malleable)
    env.run(until=4000)
    assert scheduler.all_done
    assert scheduler.records[rigid.job_id].maximum_allocation == 2
    assert scheduler.records[malleable.job_id].maximum_allocation >= 2


def test_duplicate_submission_rejected(env):
    system, scheduler = build_scheduler(env)
    job = Job.malleable(ft_profile())
    scheduler.submit(job)
    with pytest.raises(ValueError):
        scheduler.submit(job)


def test_effective_idle_subtracts_pending_claims(env):
    system, scheduler = build_scheduler(env)
    scheduler.ledger.reserve("alpha", 10, owner="phantom")
    idle = scheduler.effective_idle_processors()
    assert idle["alpha"] == 22
    assert idle["beta"] == 16


def test_all_done_accounts_for_every_submission(env):
    system, scheduler = build_scheduler(env)
    jobs = [Job.malleable(ft_profile(), name=f"ft-{i}") for i in range(3)]
    for job in jobs:
        scheduler.submit(job)
    assert not scheduler.all_done
    env.run(until=3000)
    assert scheduler.all_done
    assert len(scheduler.execution_records()) == 3
