"""Integration tests of the runners (rigid and malleable) against a small system."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import pytest

from repro.apps import NoReconfigurationCost, ft_profile, gadget2_profile
from repro.cluster import Multicluster
from repro.koala import Job, MalleableRunner, RigidRunner
from repro.koala.claiming import ClaimLedger
from repro.koala.runners import RunnersFramework
from repro.koala.job import JobKind
from repro.sim import RandomStreams


@dataclass
class RecordingCallbacks:
    """A SchedulerCallbacks implementation that just records what happened."""

    started: List[str] = field(default_factory=list)
    finished: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    releases: List[str] = field(default_factory=list)

    def job_started(self, job) -> None:
        self.started.append(job.name)

    def job_finished(self, job, record) -> None:
        self.finished.append(job.name)

    def job_failed(self, job, reason) -> None:
        self.failed.append(job.name)

    def processors_released(self, cluster_name) -> None:
        self.releases.append(cluster_name)


@pytest.fixture
def quick_system(env):
    streams = RandomStreams(seed=7)
    system = Multicluster(
        env, streams=streams, gram_submission_latency=1.0, gram_recruit_latency=0.1
    )
    system.add_cluster("alpha", 32)
    return system


def zero_cost(profile):
    return profile.with_reconfiguration(NoReconfigurationCost())


# ---------------------------------------------------------------------------
# RigidRunner
# ---------------------------------------------------------------------------


def test_rigid_runner_runs_job_to_completion(env, quick_system):
    callbacks = RecordingCallbacks()
    job = Job.rigid(zero_cost(ft_profile()).as_rigid(), processors=2, name="rigid-ft")
    job.submit_time = 0.0
    runner = RigidRunner(env, job, quick_system, callbacks)
    outcome = runner.start("alpha", 2)
    env.run(runner.completed)
    assert outcome.value is True
    assert callbacks.started == ["rigid-ft"] and callbacks.finished == ["rigid-ft"]
    assert job.state.value == "finished"
    # T(2) for FT is 120 s plus the 1-second GRAM submission.
    assert job.execution_time == pytest.approx(120.0)
    assert job.start_time == pytest.approx(1.0, abs=0.5)
    assert quick_system.cluster("alpha").used_processors == 0


def test_rigid_runner_reports_claim_failure(env, quick_system):
    callbacks = RecordingCallbacks()
    cluster = quick_system.cluster("alpha")
    cluster.allocate(31, owner="blocker", kind="local")
    job = Job.rigid(ft_profile().as_rigid(), processors=4, name="unlucky")
    runner = RigidRunner(env, job, quick_system, callbacks)
    ledger = ClaimLedger()
    claim = ledger.reserve("alpha", 4, owner="unlucky")
    outcome = runner.start("alpha", 4, claim=claim, ledger=ledger)
    env.run(until=50)
    assert outcome.value is False
    assert len(ledger) == 0  # the claim was settled even though it failed
    assert callbacks.finished == []
    assert job.state.value == "queued"


def test_rigid_runner_rejects_malleable_jobs(env, quick_system):
    job = Job.malleable(ft_profile())
    runner = RigidRunner(env, job, quick_system, RecordingCallbacks())
    with pytest.raises(ValueError):
        runner.start("alpha", 2)


# ---------------------------------------------------------------------------
# MalleableRunner
# ---------------------------------------------------------------------------


def start_malleable(env, system, profile, *, name="m-job", initial=2, callbacks=None):
    callbacks = callbacks or RecordingCallbacks()
    job = Job.malleable(profile, name=name)
    job.submit_time = env.now
    runner = MalleableRunner(
        env, job, system, callbacks, adaptation_point_interval=0.0
    )
    outcome = runner.start("alpha", initial)
    return job, runner, outcome, callbacks


def test_malleable_runner_claims_one_stub_per_processor(env, quick_system):
    job, runner, outcome, callbacks = start_malleable(
        env, quick_system, zero_cost(gadget2_profile()), initial=4
    )
    env.run(until=10)
    assert outcome.value is True
    assert len(runner.gram_jobs) == 4
    assert all(g.processors == 1 for g in runner.gram_jobs)
    assert runner.current_allocation == 4
    env.run(runner.completed)
    assert callbacks.finished == [job.name]
    assert quick_system.cluster("alpha").used_processors == 0


def test_malleable_runner_grow_adds_processors_and_shortens_execution(env, quick_system):
    job, runner, outcome, callbacks = start_malleable(
        env, quick_system, zero_cost(gadget2_profile()), initial=2
    )

    def grower(env, runner):
        yield env.timeout(60)
        added = yield runner.grow(8)
        return added

    grower_proc = env.process(grower(env, runner))
    env.run(runner.completed)
    assert grower_proc.value == 8
    assert runner.grow_operations == 1
    record = runner.application.record
    assert record.maximum_allocation == 10
    assert record.execution_time < 600.0  # faster than staying on 2 processors


def test_malleable_runner_grow_respects_ft_power_of_two(env, quick_system):
    job, runner, outcome, callbacks = start_malleable(
        env, quick_system, zero_cost(ft_profile()), initial=2, name="ft-m"
    )

    def grower(env, runner):
        yield env.timeout(20)
        added = yield runner.grow(13)  # 2 + 13 = 15 -> FT only uses 8
        return added

    grower_proc = env.process(grower(env, runner))
    env.run(runner.completed)
    assert grower_proc.value == 6
    assert runner.application.record.maximum_allocation == 8
    # The stubs claimed beyond the accepted size were released voluntarily.
    assert quick_system.cluster("alpha").used_processors == 0


def test_malleable_runner_shrink_releases_processors_after_reconfiguration(env, quick_system):
    job, runner, outcome, callbacks = start_malleable(
        env, quick_system, zero_cost(gadget2_profile()), initial=8
    )
    cluster = quick_system.cluster("alpha")

    def shrinker(env, runner):
        yield env.timeout(60)
        released = yield runner.shrink(5)
        return (released, cluster.used_processors)

    shrinker_proc = env.process(shrinker(env, runner))
    env.run(runner.completed)
    released, used_after = shrinker_proc.value
    assert released == 5
    assert used_after == 3
    assert runner.shrink_operations == 1
    assert "alpha" in callbacks.releases


def test_malleable_runner_shrink_never_goes_below_minimum(env, quick_system):
    job, runner, outcome, callbacks = start_malleable(
        env, quick_system, zero_cost(gadget2_profile()), initial=4
    )

    def shrinker(env, runner):
        yield env.timeout(30)
        released = yield runner.shrink(100)
        return released

    shrinker_proc = env.process(shrinker(env, runner))
    env.run(runner.completed)
    assert shrinker_proc.value == 2  # 4 -> 2, the minimum
    assert runner.application.record.allocation_series.values[-1] == 2


def test_malleable_runner_previews_have_no_side_effects(env, quick_system):
    job, runner, outcome, callbacks = start_malleable(
        env, quick_system, zero_cost(ft_profile()), initial=2, name="ft-preview"
    )
    env.run(until=5)
    assert runner.preview_grow(13) == 6
    assert runner.preview_shrink(1) == 0  # already at the minimum
    assert runner.growable_processors == 30
    assert runner.shrinkable_processors == 0
    env.run(runner.completed)
    assert runner.grow_operations == 0 and runner.shrink_operations == 0


def test_malleable_runner_placement_failure_releases_partial_claims(env, quick_system):
    cluster = quick_system.cluster("alpha")
    cluster.allocate(30, owner="blocker", kind="local")  # only 2 idle
    callbacks = RecordingCallbacks()
    job = Job.malleable(gadget2_profile(), initial_processors=4, name="wont-fit")
    runner = MalleableRunner(env, job, quick_system, callbacks)
    outcome = runner.start("alpha", 4)
    env.run(until=30)
    assert outcome.value is False
    assert cluster.grid_processors == 0  # partial stubs were given back
    assert callbacks.started == []
    assert job.state.value == "queued"


def test_malleable_runner_grow_after_completion_is_harmless(env, quick_system):
    job, runner, outcome, callbacks = start_malleable(
        env, quick_system, zero_cost(ft_profile()), initial=2, name="ft-late"
    )
    env.run(runner.completed)
    done = runner.grow(8)
    env.run(until=env.now + 50)
    assert done.value == 0
    assert quick_system.cluster("alpha").used_processors == 0


def test_runners_framework_selects_runner_class(env, quick_system):
    framework = RunnersFramework(env, quick_system, RecordingCallbacks())
    framework.register_runner_class(JobKind.MALLEABLE, MalleableRunner)
    rigid = framework.create_runner(Job.rigid(ft_profile().as_rigid(), 2))
    malleable = framework.create_runner(Job.malleable(gadget2_profile()))
    assert isinstance(rigid, RigidRunner)
    assert isinstance(malleable, MalleableRunner)
