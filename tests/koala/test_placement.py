"""Unit tests of the KOALA placement policies."""

from __future__ import annotations

import pytest

from repro.cluster import Multicluster
from repro.policies.registry import build_policy
from repro.koala import (
    CloseToFiles,
    ClusterMinimization,
    FlexibleClusterMinimization,
    Job,
    JobComponent,
    JobKind,
    WorstFit,
)


@pytest.fixture
def system(env, streams):
    multicluster = Multicluster(env, streams=streams)
    multicluster.add_cluster("big", 64)
    multicluster.add_cluster("medium", 32)
    multicluster.add_cluster("small", 16)
    return multicluster


def single_component_job(profile, processors):
    return Job(
        profile=profile,
        kind=JobKind.RIGID,
        components=[JobComponent(processors=processors)],
        minimum_processors=processors,
        maximum_processors=processors,
    )


def coallocated_job(profile, sizes, files=()):
    return Job(
        profile=profile,
        kind=JobKind.RIGID,
        components=[JobComponent(processors=s, input_files=tuple(files)) for s in sizes],
        minimum_processors=min(sizes),
        maximum_processors=sum(sizes),
    )


# ---------------------------------------------------------------------------
# Worst Fit
# ---------------------------------------------------------------------------


def test_worst_fit_prefers_cluster_with_most_idle(system, gadget2):
    policy = WorstFit()
    idle = {"big": 30, "medium": 32, "small": 10}
    decision = policy.place(single_component_job(gadget2, 8), idle, system)
    assert decision.success
    assert decision.placements[0] == ("medium", 8)


def test_worst_fit_fails_when_nothing_fits(system, gadget2):
    policy = WorstFit()
    idle = {"big": 5, "medium": 4, "small": 3}
    decision = policy.place(single_component_job(gadget2, 8), idle, system)
    assert not decision.success
    assert "8" in decision.reason


def test_worst_fit_spreads_coallocated_components(system, gadget2):
    policy = WorstFit()
    idle = {"big": 20, "medium": 18, "small": 16}
    decision = policy.place(coallocated_job(gadget2, [16, 16]), idle, system)
    assert decision.success
    clusters = [cluster for cluster, _ in decision.placements.values()]
    # The two components land on the two clusters with the most idle processors.
    assert sorted(clusters) == ["big", "medium"]
    assert decision.processors_on("big") == 16


def test_worst_fit_accounts_for_already_placed_components(system, gadget2):
    policy = WorstFit()
    idle = {"big": 20, "medium": 6, "small": 6}
    decision = policy.place(coallocated_job(gadget2, [12, 10]), idle, system)
    # 12 fits on big, but then only 8 remain there and nothing else fits 10.
    assert not decision.success


# ---------------------------------------------------------------------------
# Close to Files
# ---------------------------------------------------------------------------


def test_close_to_files_prefers_replica_sites(system, gadget2):
    system.register_replica("input.dat", "small")
    policy = CloseToFiles(file_size_mb=1000.0)
    idle = {"big": 40, "medium": 30, "small": 10}
    job = coallocated_job(gadget2, [8], files=["input.dat"])
    decision = policy.place(job, idle, system)
    assert decision.success
    assert decision.placements[0][0] == "small"


def test_close_to_files_falls_back_to_worst_fit_without_files(system, gadget2):
    policy = CloseToFiles()
    idle = {"big": 40, "medium": 30, "small": 10}
    decision = policy.place(single_component_job(gadget2, 8), idle, system)
    assert decision.success
    assert decision.placements[0][0] == "big"


def test_close_to_files_fails_when_nothing_fits(system, gadget2):
    policy = CloseToFiles()
    decision = policy.place(
        single_component_job(gadget2, 50), {"big": 10, "medium": 10, "small": 10}, system
    )
    assert not decision.success


# ---------------------------------------------------------------------------
# Cluster minimization (CM / FCM)
# ---------------------------------------------------------------------------


def test_cluster_minimization_packs_components_together(system, gadget2):
    policy = ClusterMinimization()
    idle = {"big": 40, "medium": 30, "small": 30}
    decision = policy.place(coallocated_job(gadget2, [10, 10, 10]), idle, system)
    assert decision.success
    assert decision.clusters_used == ["big"]


def test_cluster_minimization_opens_second_cluster_only_when_needed(system, gadget2):
    policy = ClusterMinimization()
    idle = {"big": 25, "medium": 30, "small": 10}
    decision = policy.place(coallocated_job(gadget2, [20, 15]), idle, system)
    assert decision.success
    assert len(decision.clusters_used) == 2


def test_flexible_cluster_minimization_resplits_the_job(system, gadget2):
    policy = FlexibleClusterMinimization()
    idle = {"big": 30, "medium": 20, "small": 10}
    # A 45-processor request does not fit in any single cluster but can be
    # split over the two largest.
    decision = policy.place(single_component_job(gadget2, 45), idle, system)
    assert decision.success
    assert decision.processors_on("big") == 30
    assert decision.processors_on("medium") == 15


def test_flexible_cluster_minimization_fails_when_system_is_too_small(system, gadget2):
    policy = FlexibleClusterMinimization()
    decision = policy.place(
        single_component_job(gadget2, 100), {"big": 30, "medium": 20, "small": 10}, system
    )
    assert not decision.success
    assert "60 of 100" in decision.reason


# ---------------------------------------------------------------------------
# Factory
# ---------------------------------------------------------------------------


def test_build_placement_policy_by_name():
    assert isinstance(build_policy("placement", "WF"), WorstFit)
    assert isinstance(build_policy("placement", "cf"), CloseToFiles)
    assert isinstance(build_policy("placement", "CM"), ClusterMinimization)
    assert isinstance(build_policy("placement", "FCM"), FlexibleClusterMinimization)
    with pytest.raises(ValueError):
        build_policy("placement", "nope")


def test_policies_never_mutate_the_idle_view(system, gadget2):
    idle = {"big": 20, "medium": 10, "small": 5}
    snapshot = dict(idle)
    for name in ("WF", "CF", "CM", "FCM"):
        build_policy("placement", name).place(single_component_job(gadget2, 8), idle, system)
        assert idle == snapshot
