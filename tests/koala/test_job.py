"""Unit tests of the KOALA job model."""

from __future__ import annotations

import pytest

from repro.koala import Job, JobComponent, JobKind, JobState


def test_component_validation():
    with pytest.raises(ValueError):
        JobComponent(processors=0)


def test_malleable_job_defaults_follow_profile(ft):
    job = Job.malleable(ft)
    assert job.kind is JobKind.MALLEABLE
    assert job.is_malleable
    assert job.minimum_processors == 2
    assert job.maximum_processors == 32
    assert job.total_processors == 2  # initial size equals the minimum
    assert job.state is JobState.CREATED
    assert job.name.startswith("ft-")


def test_malleable_job_custom_sizes(gadget2):
    job = Job.malleable(gadget2, initial_processors=4, minimum=3, maximum=40, name="custom")
    assert job.name == "custom"
    assert job.minimum_processors == 3
    assert job.maximum_processors == 40
    assert job.single_component.processors == 4


def test_rigid_job_has_fixed_size(gadget2):
    job = Job.rigid(gadget2, processors=2)
    assert job.kind is JobKind.RIGID
    assert not job.is_malleable
    assert job.minimum_processors == job.maximum_processors == 2


def test_moldable_job_range(ft):
    job = Job.moldable(ft, minimum=4, maximum=16)
    assert job.kind is JobKind.MOLDABLE
    assert job.minimum_processors == 4
    assert job.maximum_processors == 16


def test_job_validation(ft):
    with pytest.raises(ValueError):
        Job(profile=ft, kind=JobKind.MALLEABLE, components=[])
    with pytest.raises(ValueError):
        Job.malleable(ft, minimum=0)
    with pytest.raises(ValueError):
        Job.malleable(ft, minimum=8, maximum=4)


def test_single_component_accessor_rejects_coallocated_jobs(ft):
    job = Job(
        profile=ft,
        kind=JobKind.RIGID,
        components=[JobComponent(processors=4), JobComponent(processors=4)],
    )
    assert job.total_processors == 8
    with pytest.raises(ValueError):
        _ = job.single_component


def test_placement_bookkeeping(ft):
    job = Job.malleable(ft)
    assert not job.placed
    job.single_component.cluster = "delft"
    assert job.placed
    job.clear_placement()
    assert not job.placed


def test_timing_properties_require_completion(ft):
    job = Job.malleable(ft)
    with pytest.raises(ValueError):
        _ = job.response_time
    job.submit_time = 10.0
    job.start_time = 20.0
    job.finish_time = 80.0
    assert job.response_time == 70.0
    assert job.execution_time == 60.0


def test_job_ids_are_unique(ft):
    a, b = Job.malleable(ft), Job.malleable(ft)
    assert a.job_id != b.job_id
    assert a.name != b.name
