"""The unified reference grammar (``repro.refs``) directly.

The three families (``PolicySpec``, ``TraceRef``, ``FaultRef``) keep their
own behavioural tests; these pin the shared grammar they all delegate to.
"""

from __future__ import annotations

import pytest

from repro.refs import (
    FAULT_PREFIX,
    Ref,
    parse_literal,
    parse_query,
    parse_reference,
    parse_scalar,
    render_reference,
    split_reference,
    suggest,
    unknown_name_error,
)


def test_split_reference_prefix_is_optional():
    assert split_reference("fault:churn?mtbf=3600", prefix=FAULT_PREFIX) == (
        "churn",
        "mtbf=3600",
    )
    assert split_reference("churn", prefix=FAULT_PREFIX) == ("churn", "")
    assert split_reference("EASY?reserve_depth=2") == ("EASY", "reserve_depth=2")


def test_value_parsers_differ_by_family():
    # Policies parse Python literals; traces/faults the narrower scalar.
    assert parse_literal("True") is True
    assert parse_scalar("True") == "True"
    for parser in (parse_literal, parse_scalar):
        assert parser("30") == 30
        assert parser("0.5") == 0.5
        assert parser("delft") == "delft"


def test_parse_query_rejects_malformed_pairs():
    with pytest.raises(ValueError, match="key=value"):
        parse_query("mtbf")
    with pytest.raises(ValueError, match="custom wording"):
        parse_query("=3600", malformed=lambda part: f"custom wording {part!r}")


def test_canonical_form_sorts_query_pairs():
    reference = parse_reference("trace:x?b=2&a=1", prefix="trace:")
    assert reference == Ref(prefix="trace:", name="x", params=(("a", 1), ("b", 2)))
    assert reference.canonical() == "trace:x?a=1&b=2"
    assert str(reference) == reference.canonical()
    assert render_reference("x", {}, prefix="trace:") == "trace:x"
    # The property the cache keys rely on: equal refs render equally.
    assert parse_reference("trace:x?a=1&b=2", prefix="trace:") == reference


def test_parse_reference_rejects_empty_name():
    with pytest.raises(ValueError, match="empty reference name"):
        parse_reference("?a=1")


def test_unknown_name_error_suggests():
    error = unknown_name_error("fault model", "xchurn", ["churn", "outage"])
    assert "unknown fault model 'xchurn'" in str(error)
    assert "registered: churn, outage" in str(error)
    assert "did you mean 'churn'?" in str(error)
    assert suggest("zzzz", ["churn"]) is None
