"""Unit tests of the named random-stream factory."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RandomStreams


def test_same_seed_same_stream_reproduces_draws():
    a = RandomStreams(seed=7)["arrivals"]
    b = RandomStreams(seed=7)["arrivals"]
    assert [float(a.random()) for _ in range(5)] == [float(b.random()) for _ in range(5)]


def test_different_streams_are_independent_of_creation_order():
    forward = RandomStreams(seed=3)
    x1 = float(forward["x"].random())
    _ = forward["y"].random()

    backward = RandomStreams(seed=3)
    _ = backward["y"].random()
    x2 = float(backward["x"].random())
    assert x1 == x2


def test_different_names_give_different_sequences():
    streams = RandomStreams(seed=11)
    a = [float(streams["a"].random()) for _ in range(3)]
    b = [float(streams["b"].random()) for _ in range(3)]
    assert a != b


def test_different_seeds_give_different_sequences():
    a = float(RandomStreams(seed=1)["s"].random())
    b = float(RandomStreams(seed=2)["s"].random())
    assert a != b


def test_stream_names_must_be_nonempty_strings():
    streams = RandomStreams(seed=0)
    with pytest.raises(KeyError):
        streams[""]
    with pytest.raises(KeyError):
        streams[42]  # type: ignore[index]


def test_contains_len_and_iteration():
    streams = RandomStreams(seed=0)
    assert "x" not in streams
    _ = streams["x"]
    _ = streams["y"]
    assert "x" in streams and "y" in streams
    assert len(streams) == 2
    assert sorted(streams) == ["x", "y"]


def test_spawn_children_are_deterministic_and_distinct():
    parent = RandomStreams(seed=5)
    child_a = parent.spawn("repetition", 0)
    child_b = parent.spawn("repetition", 1)
    again = RandomStreams(seed=5).spawn("repetition", 0)
    assert float(child_a["w"].random()) == float(again["w"].random())
    assert float(child_a["w"].random()) != float(child_b["w"].random())


@given(name=st.text(min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_any_stream_name_is_reproducible(name):
    """Whatever the stream name, the same seed reproduces the same draws."""
    first = float(RandomStreams(seed=99)[name].random())
    second = float(RandomStreams(seed=99)[name].random())
    assert first == second
