"""Unit tests of the kernel fast path: timeout pooling and event accounting.

The environment recycles ``Timeout`` events produced by the plain
``yield env.timeout(d)`` pattern (the overwhelming majority of all events in
a scheduler run).  These tests pin down the recycling contract: plain sleeps
are recycled with fresh state, and the kernel-level patterns through which a
reference outlives the event — conditions, ``run(until=...)``, interrupted
sleeps — are excluded from the pool.

The contract has a documented sharp edge the kernel cannot detect: *user*
code that stores a plain-sleep timeout, yields it, and keeps reading the
reference after resuming observes recycled state (the object may already
describe a later sleep).  Fired plain-sleep timeouts must not be retained;
every timeout in this repository is yielded inline.
"""

from __future__ import annotations

import pytest

from repro.sim import AnyOf, Environment, Interrupt


def test_plain_sleep_timeouts_are_recycled():
    env = Environment()
    seen = []

    def proc(env):
        for _ in range(3):
            timeout = env.timeout(1)
            seen.append(timeout)
            yield timeout

    env.process(proc(env))
    env.run()
    # The first sleep's event is back in the pool by the time the third sleep
    # is created (the second is created while the first is still being
    # dispatched), so the third reuses the first's object and callback list.
    assert seen[2] is seen[0]
    assert seen[1] is not seen[0]


def test_recycled_timeouts_carry_fresh_delay_and_value():
    env = Environment()
    received = []

    def proc(env):
        for delay, value in ((1, "a"), (2, "b"), (4, "c"), (8, "d")):
            received.append((env.now, (yield env.timeout(delay, value))))

    env.process(proc(env))
    env.run()
    assert received == [(0, "a"), (1, "b"), (3, "c"), (7, "d")]
    assert env.now == 15


def test_condition_sub_timeouts_are_not_recycled():
    env = Environment()
    fast = None

    def proc(env):
        nonlocal fast
        fast = env.timeout(2, "fast")
        result = yield AnyOf(env, [fast, env.timeout(6, "slow")])
        return list(result.values())

    process = env.process(proc(env))
    env.run()
    assert process.value == ["fast"]
    # The condition's sub-event keeps its value readable after the run and
    # was never handed to the free list.
    assert fast.value == "fast"
    assert fast not in env._timeout_pool


def test_run_until_timeout_is_not_recycled():
    env = Environment()
    stop = env.timeout(5, "done")
    assert env.run(until=stop) == "done"
    assert stop not in env._timeout_pool
    assert stop.value == "done"


def test_interrupted_sleep_is_not_recycled_and_pooling_survives():
    env = Environment()
    target = []

    def sleeper(env):
        timeout = env.timeout(100)
        target.append(timeout)
        try:
            yield timeout
        except Interrupt:
            pass
        yield env.timeout(10)
        return env.now

    def interrupter(env, victim):
        yield env.timeout(3)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert victim.value == 13
    # The abandoned 100-second sleep fired with no callbacks attached and
    # must not have entered the pool.
    assert target[0] not in env._timeout_pool


def test_pool_reuse_keeps_many_sequential_sleeps_correct():
    env = Environment()
    ticks = []

    def ticker(env, period, count):
        for _ in range(count):
            yield env.timeout(period)
            ticks.append(env.now)

    env.process(ticker(env, 1, 50))
    env.process(ticker(env, 2, 25))
    env.run()
    assert env.now == 50
    assert ticks.count(50) == 2
    assert len(ticks) == 75
    # Steady state: the pool holds a handful of events, not one per sleep.
    assert 0 < len(env._timeout_pool) <= 4


def test_processed_events_counter_advances():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        yield env.timeout(1)

    process = env.process(proc(env))
    assert env.processed_events == 0
    env.run()
    # Initialize + two timeouts + the process-termination event.
    assert env.processed_events == 4
    assert process.processed


def test_processed_events_counted_by_step_too():
    env = Environment()
    env.timeout(1)
    env.step()
    assert env.processed_events == 1
    with pytest.raises(Exception):
        env.step()  # EmptySchedule does not count
    assert env.processed_events == 1
