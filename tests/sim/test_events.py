"""Unit tests of events, conditions and interrupts."""

from __future__ import annotations

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, Interrupt


def test_event_lifecycle_flags():
    env = Environment()
    event = env.event()
    assert not event.triggered
    assert not event.processed
    event.succeed("value")
    assert event.triggered
    assert not event.processed
    env.run()
    assert event.processed
    assert event.ok
    assert event.value == "value"


def test_event_cannot_trigger_twice():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)
    with pytest.raises(RuntimeError):
        event.fail(RuntimeError("nope"))


def test_value_before_trigger_raises():
    env = Environment()
    event = env.event()
    with pytest.raises(RuntimeError):
        _ = event.value
    with pytest.raises(RuntimeError):
        _ = event.ok


def test_fail_requires_an_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_timeout_carries_value_and_delay():
    env = Environment()
    timeout = env.timeout(5, value="done")
    assert timeout.delay == 5

    def proc(env, timeout):
        value = yield timeout
        return (env.now, value)

    process = env.process(proc(env, timeout))
    env.run()
    assert process.value == (5, "done")


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc(env):
        result = yield AllOf(env, [env.timeout(2, "a"), env.timeout(6, "b")])
        return (env.now, sorted(result.values()))

    process = env.process(proc(env))
    env.run()
    assert process.value == (6, ["a", "b"])


def test_any_of_returns_at_first_event():
    env = Environment()

    def proc(env):
        result = yield AnyOf(env, [env.timeout(2, "fast"), env.timeout(6, "slow")])
        return (env.now, list(result.values()))

    process = env.process(proc(env))
    env.run()
    assert process.value == (2, ["fast"])


def test_condition_operators_and_or():
    env = Environment()

    def both(env):
        yield env.timeout(1) & env.timeout(3)
        return env.now

    def either(env):
        yield env.timeout(1) | env.timeout(3)
        return env.now

    b = env.process(both(env))
    e = env.process(either(env))
    env.run()
    assert b.value == 3
    assert e.value == 1


def test_empty_all_of_succeeds_immediately():
    env = Environment()

    def proc(env):
        result = yield AllOf(env, [])
        return len(result)

    process = env.process(proc(env))
    env.run()
    assert process.value == 0


def test_condition_requires_same_environment():
    env_a, env_b = Environment(), Environment()
    with pytest.raises(ValueError):
        AllOf(env_a, [env_a.timeout(1), env_b.timeout(1)])


def test_condition_fails_when_subevent_fails():
    env = Environment()

    def failing(env):
        yield env.timeout(1)
        raise ValueError("inner failure")

    def waiter(env, target):
        try:
            yield AllOf(env, [env.timeout(5), target])
        except ValueError as error:
            return str(error)

    target = env.process(failing(env))
    waiter_proc = env.process(waiter(env, target))
    env.run()
    assert waiter_proc.value == "inner failure"


def test_interrupt_carries_cause():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            return (env.now, interrupt.cause)

    def interrupter(env, victim):
        yield env.timeout(7)
        victim.interrupt(cause={"reason": "shrink"})

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert victim.value == (7, {"reason": "shrink"})


def test_interrupted_process_can_keep_waiting():
    env = Environment()

    def sleeper(env):
        interrupted_at = None
        try:
            yield env.timeout(100)
        except Interrupt:
            interrupted_at = env.now
        yield env.timeout(10)
        return (interrupted_at, env.now)

    def interrupter(env, victim):
        yield env.timeout(3)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert victim.value == (3, 13)


def test_cannot_interrupt_finished_process():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    process = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        process.interrupt()


def test_process_cannot_interrupt_itself():
    env = Environment()
    failures = []

    def selfish(env):
        try:
            env.active_process.interrupt()
        except RuntimeError as error:
            failures.append(str(error))
        yield env.timeout(1)

    env.process(selfish(env))
    env.run()
    assert len(failures) == 1


def test_yielding_a_non_event_raises_type_error():
    env = Environment()

    def bad(env):
        yield 42  # type: ignore[misc]

    env.process(bad(env))
    with pytest.raises(TypeError):
        env.run()


def test_process_is_alive_and_target():
    env = Environment()

    def proc(env):
        yield env.timeout(5)

    process = env.process(proc(env))
    assert process.is_alive
    env.run()
    assert not process.is_alive
    assert process.target is None
