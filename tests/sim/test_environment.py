"""Unit tests of the simulation environment and its run loop."""

from __future__ import annotations

import pytest

from repro.sim import EmptySchedule, Environment


def test_clock_starts_at_initial_time():
    assert Environment().now == 0.0
    assert Environment(initial_time=42.5).now == 42.5


def test_step_on_empty_schedule_raises():
    with pytest.raises(EmptySchedule):
        Environment().step()


def test_run_without_events_returns_immediately():
    env = Environment()
    assert env.run() is None
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(10)
        yield env.timeout(5)
        return env.now

    process = env.process(proc(env))
    env.run()
    assert process.value == 15
    assert env.now == 15


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_run_until_time_stops_exactly_there():
    env = Environment()
    ticks = []

    def ticker(env):
        while True:
            yield env.timeout(1)
            ticks.append(env.now)

    env.process(ticker(env))
    env.run(until=10)
    assert env.now == 10
    assert ticks[-1] <= 10


def test_run_until_past_time_rejected():
    env = Environment(initial_time=5.0)
    with pytest.raises(ValueError):
        env.run(until=4.0)


def test_run_until_current_time_is_a_noop():
    """``run(until=now)`` is a tolerated no-op: nothing runs, nothing raises.

    Regression test: this used to raise ``ValueError``, which made drivers
    that compute ``until=min(time_limit, ...)`` blow up exactly when the
    clock had already reached the limit.
    """
    env = Environment(initial_time=5.0)
    fired = []

    def proc(env):
        yield env.timeout(1)
        fired.append(env.now)

    env.process(proc(env))
    assert env.run(until=5.0) is None
    assert env.now == 5.0
    assert fired == []  # no event was processed
    env.run()
    assert fired == [6.0]  # the pending timeout still fires on a later run


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3)
        return "payload"

    process = env.process(proc(env))
    assert env.run(until=process) == "payload"
    assert env.now == 3


def test_run_until_already_processed_event():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return 7

    process = env.process(proc(env))
    env.run()
    assert env.run(until=process) == 7


def test_events_at_same_time_processed_in_schedule_order():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(5)
        order.append(name)

    env.process(proc(env, "first"))
    env.process(proc(env, "second"))
    env.process(proc(env, "third"))
    env.run()
    assert order == ["first", "second", "third"]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7
    env.timeout(3)
    assert env.peek() == 3


def test_peek_on_empty_queue_is_infinite():
    assert Environment().peek() == float("inf")


def test_unhandled_process_failure_propagates_out_of_run():
    env = Environment()

    def broken(env):
        yield env.timeout(1)
        raise RuntimeError("boom")

    env.process(broken(env))
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_failure_handled_by_waiter_does_not_propagate():
    env = Environment()

    def broken(env):
        yield env.timeout(1)
        raise RuntimeError("boom")

    def guard(env, victim):
        try:
            yield victim
        except RuntimeError:
            return "caught"

    victim = env.process(broken(env))
    guard_proc = env.process(guard(env, victim))
    env.run()
    assert guard_proc.value == "caught"


def test_nested_process_waiting():
    env = Environment()

    def inner(env):
        yield env.timeout(4)
        return 11

    def outer(env):
        value = yield env.process(inner(env))
        return value * 2

    process = env.process(outer(env))
    env.run()
    assert process.value == 22
    assert env.now == 4


def test_active_process_visible_during_execution():
    env = Environment()
    seen = []

    def proc(env):
        seen.append(env.active_process)
        yield env.timeout(1)

    process = env.process(proc(env))
    env.run()
    assert seen == [process]
    assert env.active_process is None
