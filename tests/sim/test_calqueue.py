"""Tests of the interchangeable event-queue implementations.

The contract under test is the one the whole simulator rests on: the
calendar queue and the binary heap drain **any** schedule — including
entries pushed while draining, the way simulation callbacks schedule new
events — in the identical total order ``(time, priority, insertion_id)``.
The hypothesis property test exercises that contract on randomized
schedules with deliberate time and priority ties; the unit tests pin the
mechanics (resizing, the year-scan fallback, rewinds, the selection knob).
"""

from __future__ import annotations

import pytest

from repro.sim.calqueue import (
    QUEUE_CALENDAR,
    QUEUE_ENV,
    QUEUE_HEAP,
    CalendarQueue,
    HeapQueue,
    make_queue,
    resolve_queue_name,
)

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

settings.register_profile(
    "repro-deterministic-queues", deadline=None, derandomize=True, max_examples=80
)
settings.load_profile("repro-deterministic-queues")


# -- selection -----------------------------------------------------------------


def test_resolve_queue_name_defaults_to_calendar(monkeypatch):
    monkeypatch.delenv(QUEUE_ENV, raising=False)
    assert resolve_queue_name() == QUEUE_CALENDAR


def test_resolve_queue_name_reads_environment(monkeypatch):
    monkeypatch.setenv(QUEUE_ENV, "heap")
    assert resolve_queue_name() == QUEUE_HEAP
    monkeypatch.setenv(QUEUE_ENV, "  Calendar ")
    assert resolve_queue_name() == QUEUE_CALENDAR


def test_resolve_queue_name_argument_wins(monkeypatch):
    monkeypatch.setenv(QUEUE_ENV, "heap")
    assert resolve_queue_name("calendar") == QUEUE_CALENDAR


def test_resolve_queue_name_rejects_unknown():
    with pytest.raises(ValueError, match="unknown event-queue"):
        resolve_queue_name("fibonacci")


def test_make_queue_builds_the_selected_implementation(monkeypatch):
    monkeypatch.delenv(QUEUE_ENV, raising=False)
    assert isinstance(make_queue(), CalendarQueue)
    assert isinstance(make_queue("heap"), HeapQueue)
    monkeypatch.setenv(QUEUE_ENV, "heap")
    assert isinstance(make_queue(), HeapQueue)


# -- unit mechanics ------------------------------------------------------------


def drain(queue):
    order = []
    while len(queue):
        order.append(queue.pop())
    return order


@pytest.mark.parametrize("factory", [HeapQueue, CalendarQueue])
def test_simple_ordering(factory):
    queue = factory()
    entries = [(5.0, 1, 3, None), (1.0, 1, 1, None), (5.0, 0, 2, None), (0.5, 1, 4, None)]
    for entry in entries:
        queue.push(entry)
    assert drain(queue) == sorted(entries)


@pytest.mark.parametrize("factory", [HeapQueue, CalendarQueue])
def test_peek_time_tracks_the_head(factory):
    queue = factory()
    assert queue.peek_time() == float("inf")
    queue.push((3.0, 1, 1, None))
    queue.push((1.5, 1, 2, None))
    assert queue.peek_time() == 1.5
    assert queue.pop()[0] == 1.5
    assert queue.peek_time() == 3.0
    assert queue.pop()[0] == 3.0
    assert queue.peek_time() == float("inf")


def test_calendar_pop_empty_raises():
    with pytest.raises(IndexError):
        CalendarQueue().pop()


def test_heap_pop_empty_raises():
    with pytest.raises(IndexError):
        HeapQueue().pop()


def test_calendar_grows_and_shrinks_with_load():
    queue = CalendarQueue()
    initial_buckets = queue.stats()["buckets"]
    for eid in range(500):
        queue.push((float(eid), 1, eid, None))
    assert queue.stats()["buckets"] > initial_buckets
    drain(queue)
    assert queue.stats()["buckets"] == CalendarQueue.MIN_BUCKETS
    assert len(queue) == 0


def test_calendar_year_scan_fallback_finds_distant_entries():
    # Entries far beyond one calendar year of the initial geometry force the
    # scan to wrap and fall back to the direct minimum search.
    queue = CalendarQueue()
    queue.push((1e9, 1, 1, None))
    queue.push((2e9, 1, 2, None))
    assert queue.peek_time() == 1e9
    assert queue.pop() == (1e9, 1, 1, None)
    assert queue.pop() == (2e9, 1, 2, None)


def test_calendar_rewinds_for_past_pushes():
    # The kernel never schedules into the past, but the queue must stay
    # correct for arbitrary push orders (the property test relies on it).
    queue = CalendarQueue()
    queue.push((100.0, 1, 1, None))
    assert queue.pop()[0] == 100.0
    queue.push((1.0, 1, 2, None))
    queue.push((50.0, 1, 3, None))
    assert queue.pop()[0] == 1.0
    assert queue.pop()[0] == 50.0


def test_calendar_handles_all_equal_times():
    # Degenerate spread: width estimation keeps a sane width instead of
    # collapsing to zero.
    queue = CalendarQueue()
    for eid in range(200):
        queue.push((7.0, 1, eid, None))
    assert [entry[2] for entry in drain(queue)] == list(range(200))


def test_repr_smoke():
    assert "CalendarQueue" in repr(CalendarQueue())
    assert "HeapQueue" in repr(HeapQueue())


# -- the drain-order property --------------------------------------------------

#: Times drawn from a small grid (forcing ties) plus arbitrary magnitudes
#: (forcing resizes and year wraps).
times = st.one_of(
    st.sampled_from([0.0, 1.0, 1.0, 2.5, 2.5, 300.0]),
    st.floats(min_value=0.0, max_value=1e7, allow_nan=False, allow_infinity=False),
)
priorities = st.sampled_from([0, 1, 1])

#: A reactive schedule: initial (time, priority) pairs, plus for each initial
#: entry a list of (delay, priority) children pushed *when it is popped* —
#: exactly how simulation callbacks schedule follow-up events, including
#: zero-delay children that tie with still-pending entries.
schedules = st.tuples(
    st.lists(st.tuples(times, priorities), min_size=0, max_size=40),
    st.lists(
        st.lists(
            st.tuples(st.sampled_from([0.0, 0.0, 0.25, 1000.0]), priorities),
            max_size=3,
        ),
        max_size=40,
    ),
)


def drain_reactive(queue, initial, children):
    """Drain *queue*, pushing each entry's children at its pop time."""
    spawns = {}
    eid = 0
    for index, (time, priority) in enumerate(initial):
        eid += 1
        queue.push((time, priority, eid, None))
        if index < len(children):
            spawns[eid] = children[index]
    order = []
    while len(queue):
        entry = queue.pop()
        order.append(entry[:3])
        for delay, priority in spawns.pop(entry[2], ()):
            eid += 1
            queue.push((entry[0] + delay, priority, eid, None))
    return order


@given(schedule=schedules)
def test_heap_and_calendar_drain_in_identical_order(schedule):
    initial, children = schedule
    heap_order = drain_reactive(HeapQueue(), initial, children)
    calendar_order = drain_reactive(CalendarQueue(), initial, children)
    assert heap_order == calendar_order
    assert len(set(heap_order)) == len(heap_order)
    # Reactive children may legally pop *before* entries that sort after
    # their parent (an urgent zero-delay child sorts before its own already
    # consumed parent), so full sortedness is not the oracle.  Restricted to
    # the up-front entries the drain order must be exactly their sorted
    # order: the queues do not merely agree, they agree on the correct one.
    initial_count = len(initial)
    initial_popped = [entry for entry in heap_order if entry[2] <= initial_count]
    assert initial_popped == sorted(initial_popped)


@given(entries=st.lists(st.tuples(times, priorities), max_size=60))
def test_peek_time_agrees_between_implementations(entries):
    heap, calendar = HeapQueue(), CalendarQueue()
    for eid, (time, priority) in enumerate(entries):
        heap.push((time, priority, eid, None))
        calendar.push((time, priority, eid, None))
        assert calendar.peek_time() == heap.peek_time()
    while len(heap):
        assert calendar.peek_time() == heap.peek_time()
        assert calendar.pop() == heap.pop()
