"""Unit tests of the resource primitives (Resource, Container, Store)."""

from __future__ import annotations

import pytest

from repro.sim import Container, Environment, FilterStore, PriorityResource, Resource, Store


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------


def test_resource_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_grants_up_to_capacity_then_queues():
    env = Environment()
    resource = Resource(env, capacity=2)
    grants = []

    def user(env, resource, name, hold):
        with resource.request() as request:
            yield request
            grants.append((name, env.now))
            yield env.timeout(hold)

    env.process(user(env, resource, "a", 10))
    env.process(user(env, resource, "b", 10))
    env.process(user(env, resource, "c", 10))
    env.run()
    assert grants == [("a", 0), ("b", 0), ("c", 10)]


def test_resource_count_and_queue_lengths():
    env = Environment()
    resource = Resource(env, capacity=1)

    def holder(env, resource):
        with resource.request() as request:
            yield request
            yield env.timeout(5)

    env.process(holder(env, resource))
    env.process(holder(env, resource))
    env.run(until=1)
    assert resource.count == 1
    assert len(resource.queue) == 1
    env.run()
    assert resource.count == 0


def test_resource_release_outside_with_block():
    env = Environment()
    resource = Resource(env, capacity=1)

    def user(env, resource):
        request = resource.request()
        yield request
        yield env.timeout(3)
        yield resource.release(request)
        return env.now

    process = env.process(user(env, resource))
    env.run()
    assert process.value == 3
    assert resource.count == 0


def test_priority_resource_serves_lower_priority_value_first():
    env = Environment()
    resource = PriorityResource(env, capacity=1)
    order = []

    def blocker(env, resource):
        with resource.request(priority=0) as request:
            yield request
            yield env.timeout(10)

    def user(env, resource, name, priority, delay):
        yield env.timeout(delay)
        with resource.request(priority=priority) as request:
            yield request
            order.append(name)
            yield env.timeout(1)

    env.process(blocker(env, resource))
    env.process(user(env, resource, "low-importance", 5, 1))
    env.process(user(env, resource, "high-importance", 1, 2))
    env.run()
    assert order == ["high-importance", "low-importance"]


# ---------------------------------------------------------------------------
# Container
# ---------------------------------------------------------------------------


def test_container_initial_level_and_bounds():
    env = Environment()
    container = Container(env, capacity=10, init=4)
    assert container.level == 4
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=9)


def test_container_get_blocks_until_put():
    env = Environment()
    container = Container(env, capacity=100, init=0)

    def producer(env, container):
        yield env.timeout(5)
        yield container.put(8)

    def consumer(env, container):
        yield container.get(6)
        return env.now

    consumer_proc = env.process(consumer(env, container))
    env.process(producer(env, container))
    env.run()
    assert consumer_proc.value == 5
    assert container.level == 2


def test_container_put_blocks_when_full():
    env = Environment()
    container = Container(env, capacity=10, init=9)

    def producer(env, container):
        yield container.put(5)
        return env.now

    def consumer(env, container):
        yield env.timeout(4)
        yield container.get(6)

    producer_proc = env.process(producer(env, container))
    env.process(consumer(env, container))
    env.run()
    assert producer_proc.value == 4
    assert container.level == 8


def test_container_rejects_non_positive_amounts():
    env = Environment()
    container = Container(env, capacity=10, init=5)
    with pytest.raises(ValueError):
        container.put(0)
    with pytest.raises(ValueError):
        container.get(-1)


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


def test_store_is_fifo():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env, store):
        for item in ("first", "second", "third"):
            yield store.put(item)
            yield env.timeout(1)

    def consumer(env, store):
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert received == ["first", "second", "third"]


def test_store_capacity_blocks_puts():
    env = Environment()
    store = Store(env, capacity=1)

    def producer(env, store):
        yield store.put("a")
        yield store.put("b")
        return env.now

    def consumer(env, store):
        yield env.timeout(10)
        yield store.get()

    producer_proc = env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert producer_proc.value == 10


def test_filter_store_returns_matching_item():
    env = Environment()
    store = FilterStore(env)

    def producer(env, store):
        for item in (1, 2, 3, 4):
            yield store.put(item)

    def consumer(env, store):
        item = yield store.get(lambda value: value % 2 == 0)
        return item

    consumer_proc = env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert consumer_proc.value == 2
    assert store.items == [1, 3, 4]


def test_filter_store_waits_for_matching_item():
    env = Environment()
    store = FilterStore(env)

    def producer(env, store):
        yield store.put("wrong")
        yield env.timeout(5)
        yield store.put("right")

    def consumer(env, store):
        item = yield store.get(lambda value: value == "right")
        return (item, env.now)

    consumer_proc = env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert consumer_proc.value == ("right", 5)
