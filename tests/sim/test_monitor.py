"""Unit tests of the measurement primitives (TimeSeries, Counter, statistics)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Counter, TimeSeries, TimeWeightedStat
from repro.sim.monitor import merge_step_functions


# ---------------------------------------------------------------------------
# TimeSeries
# ---------------------------------------------------------------------------


def test_time_series_records_and_evaluates():
    series = TimeSeries(name="usage")
    series.record(0.0, 2)
    series.record(10.0, 5)
    series.record(20.0, 1)
    assert series.value_at(-1) == 0.0
    assert series.value_at(0) == 2
    assert series.value_at(9.99) == 2
    assert series.value_at(10) == 5
    assert series.value_at(15) == 5
    assert series.value_at(100) == 1


def test_time_series_rejects_out_of_order_records():
    series = TimeSeries()
    series.record(10.0, 1)
    with pytest.raises(ValueError):
        series.record(5.0, 2)


def test_time_series_same_instant_update_keeps_latest():
    series = TimeSeries()
    series.record(3.0, 1)
    series.record(3.0, 9)
    assert len(series) == 1
    assert series.value_at(3.0) == 9


def test_time_series_time_average_weighted_by_duration():
    series = TimeSeries()
    series.record(0.0, 2)
    series.record(10.0, 6)  # value 2 for 10s, then 6 for 10s
    assert series.time_average(0.0, 20.0) == pytest.approx(4.0)
    # Restricting the window changes the weighting.
    assert series.time_average(5.0, 15.0) == pytest.approx(4.0)
    assert series.time_average(10.0, 20.0) == pytest.approx(6.0)


def test_time_series_sample_matches_value_at():
    series = TimeSeries()
    series.record(0.0, 1)
    series.record(5.0, 3)
    sampled = series.sample([0, 2, 5, 7])
    assert list(sampled) == [1, 1, 3, 3]


# ---------------------------------------------------------------------------
# Counter
# ---------------------------------------------------------------------------


def test_counter_cumulative_counts():
    counter = Counter(name="grow")
    counter.increment(1.0)
    counter.increment(2.0, amount=3)
    counter.increment(5.0)
    times, counts = counter.cumulative()
    assert list(times) == [1.0, 2.0, 5.0]
    assert list(counts) == [1.0, 4.0, 5.0]
    assert counter.total == 5
    assert counter.count_before(2.5) == 4
    assert counter.count_before(0.5) == 0


def test_counter_rejects_negative_and_out_of_order():
    counter = Counter()
    counter.increment(3.0)
    with pytest.raises(ValueError):
        counter.increment(2.0)
    with pytest.raises(ValueError):
        counter.increment(4.0, amount=-1)


# ---------------------------------------------------------------------------
# TimeWeightedStat
# ---------------------------------------------------------------------------


def test_time_weighted_stat_mean_min_max():
    stat = TimeWeightedStat(start_time=0.0, value=2.0)
    stat.update(10.0, 6.0)
    stat.update(15.0, 1.0)
    stat.finalize(20.0)
    # 2 for 10s, 6 for 5s, 1 for 5s -> (20 + 30 + 5) / 20
    assert stat.mean == pytest.approx(2.75)
    assert stat.minimum == 1.0
    assert stat.maximum == 6.0
    assert stat.duration == 20.0


def test_time_weighted_stat_rejects_time_travel():
    stat = TimeWeightedStat(start_time=5.0, value=1.0)
    with pytest.raises(ValueError):
        stat.update(4.0, 2.0)
    stat.update(6.0, 2.0)
    with pytest.raises(ValueError):
        stat.finalize(5.5)


def test_time_weighted_stat_cannot_update_after_finalize():
    stat = TimeWeightedStat(start_time=0.0, value=1.0).finalize(10.0)
    with pytest.raises(RuntimeError):
        stat.update(11.0, 2.0)


def test_merge_step_functions_sums_values():
    a = TimeSeries()
    a.record(0.0, 1)
    a.record(10.0, 3)
    b = TimeSeries()
    b.record(5.0, 2)
    times, total = merge_step_functions([a, b])
    assert list(times) == [0.0, 5.0, 10.0]
    assert list(total) == [1.0, 3.0, 5.0]


def test_merge_step_functions_empty():
    times, total = merge_step_functions([])
    assert len(times) == 0 and len(total) == 0


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------


@given(
    values=st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=30),
)
@settings(max_examples=50, deadline=None)
def test_time_average_lies_between_min_and_max(values):
    """The time-weighted average of a step function is bounded by its extremes."""
    series = TimeSeries()
    for index, value in enumerate(values):
        series.record(float(index), value)
    average = series.time_average(0.0, float(len(values)))
    assert min(values) - 1e-9 <= average <= max(values) + 1e-9


@given(
    increments=st.lists(
        st.tuples(st.floats(min_value=0, max_value=100), st.integers(min_value=0, max_value=5)),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_counter_cumulative_is_monotone(increments):
    """Cumulative counts never decrease, whatever the increment pattern."""
    counter = Counter()
    time = 0.0
    for gap, amount in increments:
        time += gap
        counter.increment(time, amount)
    _, counts = counter.cumulative()
    assert all(b >= a for a, b in zip(counts, counts[1:]))
    assert counter.total == pytest.approx(float(np.sum([a for _, a in increments])))
