"""Golden-metrics snapshot tests.

Each case runs one registered scenario at a pinned tiny job count and seed
and compares a *field-level* digest of the produced metrics against a
committed ``GOLDEN_<scenario>.json`` file.  A drift fails with the exact
labels and fields that changed (expected vs. measured), never with a bare
hash mismatch — so a reviewer can tell a deliberate behaviour change from a
determinism bug at a glance.

Refreshing after an intentional change::

    REPRO_GOLDEN_UPDATE=1 python -m pytest tests/golden -q

then commit the rewritten ``GOLDEN_*.json`` files.

The digests store values rounded to 6 decimals: enough precision to catch
any real behavioural change, coarse enough to be stable across interpreter
and numpy releases in the CI matrix.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List

import pytest

from repro.experiments.scenarios import run_scenario, scenario_report

GOLDEN_DIR = Path(__file__).parent

#: Environment variable that rewrites the golden files instead of comparing.
UPDATE_ENV = "REPRO_GOLDEN_UPDATE"

#: Scenario -> pinned run parameters.  Small enough for the tier-1 loop,
#: large enough that every policy in the scenario does real work.
GOLDEN_CASES: Dict[str, Dict[str, int]] = {
    "figure7": {"job_count": 8, "seed": 0},
    "figure8": {"job_count": 6, "seed": 0},
    "trace-replay": {"job_count": 10, "seed": 0},
    "fault-sweep": {"job_count": 8, "seed": 0},
}

#: Decimal places golden values are rounded to (cross-version stability).
ROUND_DIGITS = 6


def _rounded(value: float) -> float:
    return round(float(value), ROUND_DIGITS)


def scenario_digest(results) -> Dict[str, Dict[str, Any]]:
    """Field-level digest of a scenario's merged results.

    Per variant label: the headline summary statistics, the job count, and
    the submit/finish horizon — every number a behaviour change would move,
    each under its own key so drifts diff field by field.
    """
    digest: Dict[str, Dict[str, Any]] = {}
    for label in sorted(results):
        metrics = results[label].metrics
        fields: Dict[str, Any] = {
            "job_count": int(metrics.job_count),
            "unfinished_jobs": int(metrics.unfinished_jobs),
        }
        for key, value in metrics.summary().items():
            fields[key] = _rounded(value)
        if metrics.jobs:
            fields["first_submit_time"] = _rounded(
                min(job.submit_time for job in metrics.jobs)
            )
            fields["last_finish_time"] = _rounded(
                max(job.finish_time for job in metrics.jobs)
            )
            fields["total_grow_count"] = int(sum(j.grow_count for j in metrics.jobs))
            fields["total_shrink_count"] = int(sum(j.shrink_count for j in metrics.jobs))
        digest[label] = fields
    return digest


def field_diff(
    expected: Dict[str, Dict[str, Any]], measured: Dict[str, Dict[str, Any]]
) -> List[str]:
    """Human-readable list of every differing (label, field) pair."""
    differences: List[str] = []
    for label in sorted(set(expected) | set(measured)):
        if label not in expected:
            differences.append(f"  {label}: unexpected new variant label")
            continue
        if label not in measured:
            differences.append(f"  {label}: variant label disappeared")
            continue
        have, got = expected[label], measured[label]
        for field in sorted(set(have) | set(got)):
            if field not in have:
                differences.append(f"  {label} / {field}: new field = {got[field]!r}")
            elif field not in got:
                differences.append(
                    f"  {label} / {field}: field disappeared (was {have[field]!r})"
                )
            elif have[field] != got[field]:
                differences.append(
                    f"  {label} / {field}: expected {have[field]!r}, got {got[field]!r}"
                )
    return differences


def _golden_path(scenario: str) -> Path:
    return GOLDEN_DIR / f"GOLDEN_{scenario}.json"


def _compare_or_update(path: Path, measured: Any, render) -> None:
    """Shared compare/refresh logic for JSON digests and text reports."""
    if os.environ.get(UPDATE_ENV):
        path.write_text(render(measured), encoding="utf-8")
        return
    if not path.exists():
        pytest.fail(
            f"missing golden file {path.name}; bootstrap it with "
            f"{UPDATE_ENV}=1 python -m pytest {Path(__file__).parent} and commit it"
        )
    if path.suffix == ".json":
        expected = json.loads(path.read_text(encoding="utf-8"))
        differences = field_diff(expected, measured)
        if differences:
            pytest.fail(
                f"golden metrics drift in {path.name} "
                f"({len(differences)} field(s)):\n"
                + "\n".join(differences)
                + f"\n\nIf the change is intentional, refresh with "
                f"{UPDATE_ENV}=1 and commit the new golden file.",
                pytrace=False,
            )
    else:
        expected_text = path.read_text(encoding="utf-8")
        if expected_text != measured:
            import difflib

            diff = "\n".join(
                difflib.unified_diff(
                    expected_text.splitlines(),
                    measured.splitlines(),
                    fromfile=f"golden/{path.name}",
                    tofile="measured",
                    lineterm="",
                )
            )
            pytest.fail(
                f"golden report drift in {path.name}:\n{diff}\n\n"
                f"If intentional, refresh with {UPDATE_ENV}=1 and commit.",
                pytrace=False,
            )


@pytest.mark.parametrize("scenario", sorted(GOLDEN_CASES))
def test_scenario_metrics_match_golden_digest(scenario):
    parameters = GOLDEN_CASES[scenario]
    results = run_scenario(
        scenario,
        job_count=parameters["job_count"],
        seed=parameters["seed"],
        jobs=1,
        cache=None,
    )
    measured = scenario_digest(results)
    _compare_or_update(
        _golden_path(scenario),
        measured,
        lambda digest: json.dumps(digest, indent=2, sort_keys=True) + "\n",
    )


def test_figure6_report_matches_golden_text():
    # Figure 6 is a static report (the applications' scaling curves); its
    # golden form is the rendered text itself, diffed line by line.
    report = scenario_report("figure6") + "\n"
    _compare_or_update(GOLDEN_DIR / "GOLDEN_figure6.txt", report, lambda text: text)


def test_field_diff_pinpoints_changed_fields():
    # The diff helper itself is load-bearing for debuggability: it must name
    # the label and field, not just report an inequality.
    expected = {"EGS/Wm": {"jobs": 8, "mean_response_time": 100.0}}
    measured = {"EGS/Wm": {"jobs": 8, "mean_response_time": 101.5}}
    differences = field_diff(expected, measured)
    assert differences == [
        "  EGS/Wm / mean_response_time: expected 100.0, got 101.5"
    ]
    assert field_diff(expected, expected) == []
    # Added/removed labels and fields are each called out explicitly.
    assert any(
        "disappeared" in line for line in field_diff(expected, {})
    )
    assert any(
        "new field" in line
        for line in field_diff(expected, {"EGS/Wm": {**expected["EGS/Wm"], "extra": 1}})
    )
