"""Unit and property tests of the malleability management policies.

Policies are pure planners over read-only job views, so they are tested here
with lightweight fakes instead of full runners; the integration with real
MRunners is covered by the scheduler integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import AnySize, PowerOfTwo, SizeConstraint
from repro.policies.registry import build_policy
from repro.malleability import (
    EGS,
    FPSMA,
    EquiGrowShrink,
    Equipartition,
    Folding,
)


@dataclass
class FakeRunner:
    """Minimal stand-in for a MalleableRunner, implementing the view protocol."""

    name: str
    start_time: float
    current_allocation: int
    minimum: int = 2
    maximum: int = 46
    constraint: SizeConstraint = field(default_factory=AnySize)
    reconfiguring: bool = False

    def preview_grow(self, offered: int) -> int:
        proposed = min(self.current_allocation + offered, self.maximum)
        acceptable = self.constraint.largest_acceptable(proposed)
        return max(0, acceptable - self.current_allocation)

    def preview_shrink(self, requested: int) -> int:
        proposed = max(self.current_allocation - requested, self.minimum)
        acceptable = self.constraint.largest_acceptable(proposed)
        if acceptable < self.minimum or acceptable >= self.current_allocation:
            return 0
        return self.current_allocation - acceptable


def runners():
    """Three running malleable jobs with distinct start times and sizes."""
    return [
        FakeRunner("oldest", start_time=10.0, current_allocation=4),
        FakeRunner("middle", start_time=20.0, current_allocation=2),
        FakeRunner("newest", start_time=30.0, current_allocation=8),
    ]


# ---------------------------------------------------------------------------
# FPSMA
# ---------------------------------------------------------------------------


def test_fpsma_grow_favours_the_earliest_started_job():
    policy = FPSMA()
    plan = policy.plan_grow(runners(), grow_value=10)
    # The oldest job absorbs the whole offer (it can take 42 more).
    assert len(plan) == 1
    assert plan[0].runner.name == "oldest"
    assert plan[0].offered == 10
    assert plan[0].expected == 10


def test_fpsma_grow_moves_on_when_the_oldest_is_saturated():
    jobs = runners()
    jobs[0].maximum = 6  # oldest can only take 2 more
    policy = FPSMA()
    plan = policy.plan_grow(jobs, grow_value=10)
    assert [d.runner.name for d in plan] == ["oldest", "middle"]
    assert plan[0].expected == 2
    assert plan[1].offered == 8  # the remaining offer


def test_fpsma_shrink_starts_from_the_latest_started_job():
    policy = FPSMA()
    plan = policy.plan_shrink(runners(), shrink_value=5)
    assert [d.runner.name for d in plan] == ["newest"]
    assert plan[0].expected == 5


def test_fpsma_shrink_cascades_when_the_newest_cannot_give_enough():
    policy = FPSMA()
    plan = policy.plan_shrink(runners(), shrink_value=9)
    # newest can give 6 (8 -> 2), middle nothing (already at min), oldest 2.
    assert [d.runner.name for d in plan] == ["newest", "oldest"]
    assert plan[0].expected == 6
    assert plan[1].expected == 2


def test_fpsma_skips_jobs_that_are_already_reconfiguring():
    jobs = runners()
    jobs[0].reconfiguring = True
    plan = FPSMA().plan_grow(jobs, grow_value=4)
    assert plan[0].runner.name == "middle"


def test_fpsma_zero_or_negative_values_produce_empty_plans():
    policy = FPSMA()
    assert policy.plan_grow(runners(), 0) == []
    assert policy.plan_shrink(runners(), -3) == []
    assert policy.plan_grow([], 10) == []


# ---------------------------------------------------------------------------
# EGS
# ---------------------------------------------------------------------------


def test_egs_grow_spreads_equally_with_bonus_to_the_oldest():
    policy = EquiGrowShrink()
    plan = policy.plan_grow(runners(), grow_value=8)
    offered = {d.runner.name: d.offered for d in plan}
    # 8 over 3 jobs: share 2, remainder 2 goes to the two least recently
    # started jobs (oldest and middle).
    assert offered == {"oldest": 3, "middle": 3, "newest": 2}


def test_egs_shrink_spreads_equally_with_malus_to_the_newest():
    jobs = [
        FakeRunner("oldest", 10.0, current_allocation=12),
        FakeRunner("middle", 20.0, current_allocation=12),
        FakeRunner("newest", 30.0, current_allocation=12),
    ]
    plan = EGS().plan_shrink(jobs, shrink_value=7)
    requested = {d.runner.name: d.requested for d in plan}
    # 7 over 3 jobs: share 2, remainder 1 taken from the most recently started.
    assert requested == {"newest": 3, "middle": 2, "oldest": 2}


def test_egs_respects_application_constraints_via_previews():
    jobs = [
        FakeRunner("ft", 10.0, current_allocation=2, maximum=32, constraint=PowerOfTwo()),
        FakeRunner("gadget", 20.0, current_allocation=2, maximum=46),
    ]
    plan = EquiGrowShrink().plan_grow(jobs, grow_value=7)
    expected = {d.runner.name: d.expected for d in plan}
    # FT is offered 4 (share 3 + bonus 1) and accepts 2 (2 -> 4);
    # GADGET is offered 3 and accepts 3.
    assert expected == {"ft": 2, "gadget": 3}


def test_egs_small_grow_value_gives_nothing_to_later_jobs():
    plan = EquiGrowShrink().plan_grow(runners(), grow_value=2)
    # share 0, remainder 2: only the two oldest jobs receive an offer of 1.
    assert [d.runner.name for d in plan] == ["oldest", "middle"]
    assert all(d.offered == 1 for d in plan)


# ---------------------------------------------------------------------------
# Baselines: equipartition and folding
# ---------------------------------------------------------------------------


def test_equipartition_grows_the_smallest_jobs_first():
    plan = Equipartition().plan_grow(runners(), grow_value=6)
    offered = {d.runner.name: d.offered for d in plan}
    # Sizes are 4, 2, 8: the 2-processor job catches up first, then the
    # 4-processor one; the 8-processor job receives the leftovers only after
    # the others have levelled with it (they do not here).
    assert offered["middle"] > offered.get("newest", 0)
    assert sum(offered.values()) == 6


def test_equipartition_shrinks_the_largest_jobs_first():
    plan = Equipartition().plan_shrink(runners(), shrink_value=4)
    requested = {d.runner.name: d.requested for d in plan}
    assert requested["newest"] >= requested.get("oldest", 0)
    assert sum(requested.values()) == 4


def test_folding_doubles_and_halves():
    jobs = [
        FakeRunner("a", 10.0, current_allocation=4),
        FakeRunner("b", 20.0, current_allocation=8),
    ]
    grow_plan = Folding().plan_grow(jobs, grow_value=5)
    # Only job a can be doubled within 5 available processors.
    assert [d.runner.name for d in grow_plan] == ["a"]
    assert grow_plan[0].offered == 4

    shrink_plan = Folding().plan_shrink(jobs, shrink_value=4)
    assert shrink_plan[0].runner.name == "b"
    assert shrink_plan[0].requested == 4


def test_policy_factory():
    assert isinstance(build_policy("malleability", "FPSMA"), FPSMA)
    assert isinstance(build_policy("malleability", "egs"), EquiGrowShrink)
    assert isinstance(build_policy("malleability", "EQUIPARTITION"), Equipartition)
    assert isinstance(build_policy("malleability", "folding"), Folding)
    with pytest.raises(ValueError):
        build_policy("malleability", "unknown")


# ---------------------------------------------------------------------------
# Property-based invariants shared by every policy
# ---------------------------------------------------------------------------

POLICIES = [FPSMA(), EquiGrowShrink(), Equipartition(), Folding()]

runner_strategy = st.builds(
    FakeRunner,
    name=st.text(min_size=1, max_size=5),
    start_time=st.floats(min_value=0, max_value=1000),
    current_allocation=st.integers(min_value=2, max_value=46),
    minimum=st.just(2),
    maximum=st.just(46),
    constraint=st.sampled_from([AnySize(), PowerOfTwo()]),
)


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.name)
@given(
    jobs=st.lists(runner_strategy, min_size=0, max_size=6),
    amount=st.integers(min_value=0, max_value=120),
)
@settings(max_examples=60, deadline=None)
def test_grow_plans_never_exceed_the_available_processors(policy, jobs, amount):
    """The sum of expected grow acceptances never exceeds the offered value,
    and no directive targets a reconfiguring job."""
    plan = policy.plan_grow(jobs, amount)
    assert sum(d.expected for d in plan) <= max(amount, 0)
    assert all(not d.runner.reconfiguring for d in plan)
    assert all(d.offered >= 1 and 0 <= d.expected <= d.offered for d in plan)


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.name)
@given(
    jobs=st.lists(runner_strategy, min_size=0, max_size=6),
    amount=st.integers(min_value=0, max_value=120),
)
@settings(max_examples=60, deadline=None)
def test_shrink_plans_respect_minimum_sizes(policy, jobs, amount):
    """No shrink plan ever asks a job for more than it can give without going
    below its minimum size."""
    plan = policy.plan_shrink(jobs, amount)
    for directive in plan:
        runner = directive.runner
        assert directive.expected <= runner.current_allocation - runner.minimum
    # One job never appears twice in the same plan.
    names = [id(d.runner) for d in plan]
    assert len(names) == len(set(names))
