"""Integration tests of the malleability manager and the PRA/PWA approaches."""

from __future__ import annotations

import pytest

from repro.apps import gadget2_profile
from repro.cluster import Multicluster
from repro.koala import Job, KoalaScheduler, SchedulerConfig
from repro.policies.registry import build_policy
from repro.malleability import (
    MalleabilityManager,
    PrecedenceToRunningApplications,
    PrecedenceToWaitingApplications,
)
from repro.sim import RandomStreams


def build(env, *, approach="PRA", policy="FPSMA", offer_mode="released", nodes=24, threshold=0):
    streams = RandomStreams(seed=11)
    system = Multicluster(
        env, streams=streams, gram_submission_latency=1.0, gram_recruit_latency=0.1
    )
    system.add_cluster("alpha", nodes)
    scheduler = KoalaScheduler(
        env,
        system,
        SchedulerConfig(
            malleability_policy=policy,
            approach=approach,
            grow_offer_mode=offer_mode,
            grow_threshold=threshold,
            poll_interval=10.0,
            adaptation_point_interval=0.0,
        ),
        streams=streams,
    )
    return system, scheduler


def test_build_approach_by_name():
    assert isinstance(build_policy("approach", "PRA"), PrecedenceToRunningApplications)
    assert isinstance(build_policy("approach", "pwa"), PrecedenceToWaitingApplications)
    with pytest.raises(ValueError):
        build_policy("approach", "xyz")


def test_manager_validation(env):
    system, scheduler = build(env)
    with pytest.raises(ValueError):
        MalleabilityManager(env, scheduler, scheduler.manager.policy, threshold=-1)
    with pytest.raises(ValueError):
        MalleabilityManager(env, scheduler, scheduler.manager.policy, offer_mode="bogus")


def test_released_mode_only_offers_grid_releases(env):
    system, scheduler = build(env, offer_mode="released")
    manager = scheduler.manager
    cluster = system.cluster("alpha")
    # A local (background) release is visible as idle but is not offered.
    local = cluster.allocate(4, owner="bg", kind="local")
    local.release()
    assert manager.released_since_last_trigger("alpha") == 0
    # A grid release is offered.
    grid = cluster.allocate(4, owner="job", kind="grid")
    grid.release()
    assert manager.released_since_last_trigger("alpha") == 4
    # The grow ceiling is still bounded by the effective idle count.
    assert manager.grow_value_for("alpha") == 4


def test_grow_value_respects_threshold_and_idle_ceiling(env):
    system, scheduler = build(env, offer_mode="idle", threshold=5, nodes=16)
    manager = scheduler.manager
    assert manager.grow_value_for("alpha") == 11
    system.cluster("alpha").allocate(14, owner="bg", kind="local")
    assert manager.grow_value_for("alpha") == 0


def test_grow_messages_are_counted_for_the_activity_figure(env):
    system, scheduler = build(env, offer_mode="idle")
    job = Job.malleable(gadget2_profile(), name="grow-me")
    scheduler.submit(job)
    env.run(until=2500)
    manager = scheduler.manager
    assert manager.total_grow_messages >= 1
    times, counts = manager.grow_messages.cumulative()
    assert len(times) == manager.total_grow_messages
    assert counts[-1] == manager.total_grow_messages
    assert manager.operations.total >= manager.grow_messages.total


def test_shrink_potential_counts_only_processors_above_minimum(env):
    system, scheduler = build(env, offer_mode="idle")
    job = Job.malleable(gadget2_profile(), name="big")
    scheduler.submit(job)
    env.run(until=200)  # the job has grown by now
    manager = scheduler.manager
    runner = scheduler.runner_for(job)
    expected = runner.current_allocation - job.minimum_processors
    assert manager.shrink_potential("alpha") == expected
    assert manager.shrink_potential("unknown-cluster") == 0


def test_make_room_shrinks_and_triggers_requeue_scan(env):
    system, scheduler = build(env, approach="PWA", offer_mode="idle", nodes=12)
    first = Job.malleable(gadget2_profile(), name="first")
    scheduler.submit(first)
    env.run(until=150)
    assert scheduler.runner_for(first).current_allocation >= 10

    second = Job.malleable(gadget2_profile(), name="second")
    scheduler.submit(second)
    env.run(until=3000)
    manager = scheduler.manager
    assert manager.total_shrink_messages >= 1
    assert scheduler.all_done
    # Both jobs finished even though the cluster could not hold both at the
    # first job's grown size.
    assert len(scheduler.finished) == 2


def test_make_room_refuses_when_nothing_can_shrink(env):
    system, scheduler = build(env, approach="PWA", offer_mode="released", nodes=6)
    # Fill the cluster with local load so nothing fits and nothing can shrink.
    system.cluster("alpha").allocate(6, owner="bg", kind="local")
    job = Job.malleable(gadget2_profile(), name="stuck")
    scheduler.submit(job)
    env.run(until=100)
    assert scheduler.manager.make_room_for_job(job) is False
    assert scheduler.manager.total_shrink_messages == 0
    assert job.state.value == "queued"


def test_pra_never_shrinks(env):
    system, scheduler = build(env, approach="PRA", offer_mode="idle", nodes=16)
    jobs = [Job.malleable(gadget2_profile(), name=f"j{i}") for i in range(4)]

    def submit_all(env):
        for job in jobs:
            scheduler.submit(job)
            yield env.timeout(60)

    env.process(submit_all(env))
    env.run(until=6000)
    assert scheduler.all_done
    assert scheduler.manager.total_shrink_messages == 0
    assert scheduler.manager.total_grow_messages > 0
