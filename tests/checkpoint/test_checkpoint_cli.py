"""The ``shard-replay`` and ``checkpointed`` subcommands of ``repro-cli``."""

from __future__ import annotations

import pytest

from repro.experiments.cli import build_parser, main


def test_parser_knows_the_new_commands():
    parser = build_parser()
    assert parser.parse_args(["shard-replay"]).command == "shard-replay"
    args = parser.parse_args(
        ["checkpointed", "--scenario", "shard-replay", "--every", "600"]
    )
    assert args.command == "checkpointed"
    assert args.every == 600.0


def test_shard_replay_command(capsys):
    assert main(["shard-replay", "--job-count", "400", "--sequential"]) == 0
    output = capsys.readouterr().out
    assert "Sharded replay: 400 jobs" in output
    assert "all done: True" in output
    assert "metrics digest:" in output


def test_checkpointed_defaults_to_replay_outside_native_envelope(capsys):
    # figure7 is malleable — native capture is impossible, so the default
    # 'auto' mode must fall back to replay instead of erroring out.
    assert main(["checkpointed", "--scenario", "figure7", "--job-count", "10"]) == 0
    output = capsys.readouterr().out
    assert "all done: True" in output


def test_checkpointed_command_writes_and_resumes(tmp_path, capsys):
    target = tmp_path / "run.json"
    argv = [
        "checkpointed",
        "--scenario",
        "shard-replay",
        "--job-count",
        "1500",
        "--every",
        "1500",
        "--checkpoint-path",
        str(target),
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "all done: True" in first
    digest = next(
        line.split()[-1] for line in first.splitlines() if "metrics digest" in line
    )
    written = sorted(tmp_path.glob("run-*.json"))
    assert written

    resume_argv = [
        "checkpointed",
        "--scenario",
        "shard-replay",
        "--job-count",
        "1500",
        "--resume",
        str(written[-1]),
    ]
    assert main(resume_argv) == 0
    second = capsys.readouterr().out
    assert "all done: True" in second
    assert digest in second  # resumed run reproduces the identical digest


def test_checkpointed_rejects_mismatched_resume(tmp_path, capsys):
    target = tmp_path / "run.json"
    assert (
        main(
            [
                "checkpointed",
                "--scenario",
                "shard-replay",
                "--job-count",
                "1500",
                "--every",
                "1500",
                "--checkpoint-path",
                str(target),
            ]
        )
        == 0
    )
    capsys.readouterr()
    written = sorted(tmp_path.glob("run-*.json"))
    with pytest.raises(SystemExit):
        main(
            [
                "checkpointed",
                "--scenario",
                "shard-replay",
                "--job-count",
                "999",
                "--resume",
                str(written[-1]),
            ]
        )
