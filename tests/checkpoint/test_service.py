"""The daemon's ``checkpointed`` operation: windowed runs, crash resume."""

from __future__ import annotations

import asyncio
import os

from repro.checkpoint import SimulationRun
from repro.checkpoint.shard import shard_bench_config
from repro.service.daemon import ExperimentService, _execute_checkpointed

JOBS = 300


def _config_fields() -> dict:
    return {
        "name": "shard-replay",
        "workload": "shard-bursts",
        "job_count": JOBS,
        "malleability_policy": None,
        "approach": "PRA",
        "placement_policy": "WF",
        "seed": 0,
        "gram_latency_jitter": 0.0,
        "background_fraction": 0.0,
        "time_limit": 4.0e9,
    }


def _serial_digest() -> str:
    run = SimulationRun.fresh(
        shard_bench_config(JOBS, seed=0), retain_jobs=False, collect_windowed=True
    )
    run.run_to_completion(drain=True)
    return run.collector.window.digest


def _dispatch(service, request):
    async def main():
        await service.start(socket_path=str(service.store.directory / "sock"))
        try:
            return await service.dispatch(request)
        finally:
            await service.aclose()

    return asyncio.run(main())


def test_checkpointed_op_runs_and_matches_serial(tmp_path):
    service = ExperimentService(tmp_path, workers=1)
    response = _dispatch(
        service,
        {"op": "checkpointed", "config": _config_fields(), "checkpoint_every": 200.0},
    )
    assert response["ok"], response
    assert response["all_done"]
    assert response["jobs"] == JOBS
    assert response["resumed_at"] is None
    assert response["digest"] == _serial_digest()
    # Completed runs leave no checkpoints behind.
    leftovers = list((tmp_path / "checkpoints").rglob("state-*.json"))
    assert leftovers == []


def test_checkpointed_op_validates_interval(tmp_path):
    service = ExperimentService(tmp_path, workers=1)
    response = _dispatch(
        service,
        {"op": "checkpointed", "config": _config_fields(), "checkpoint_every": 0},
    )
    assert not response["ok"]
    assert response["error"]["code"] == "bad_request"


def test_checkpointed_op_rejects_bad_config(tmp_path):
    service = ExperimentService(tmp_path, workers=1)
    fields = _config_fields()
    fields["no_such_field"] = 1
    response = _dispatch(service, {"op": "checkpointed", "config": fields})
    assert not response["ok"]
    assert response["error"]["code"] == "bad_config"


def test_worker_resumes_from_leftover_checkpoint(tmp_path):
    """A repeat request after a mid-run crash resumes, not restarts."""
    from repro.checkpoint import load_checkpoint, run_checkpointed
    from repro.experiments.setup import ExperimentConfig

    config = _config_fields()
    directory = tmp_path / "ck"

    # Recreate what a crashed worker leaves behind: run the same config
    # standalone with checkpoint files in the worker's directory, completed
    # runs delete them — so copy the files out first and put one back.
    out = run_checkpointed(
        ExperimentConfig.from_dict(config),
        checkpoint_every=200.0,
        path=directory / "state.json",
    )
    assert out["all_done"] and out["checkpoint_paths"]
    survivor = out["checkpoint_paths"][-1]
    survivor_time = float.fromhex(load_checkpoint(survivor)["time"])
    for path in out["checkpoint_paths"][:-1]:
        os.unlink(path)

    resumed = _execute_checkpointed(config, 200.0, str(directory))
    assert resumed["all_done"]
    assert resumed["resumed_at"] == survivor_time
    assert resumed["digest"] == _serial_digest()
    # ... and this completed run cleaned the directory up again.
    assert list(directory.glob("state-*.json")) == []
