"""Envelope schema, atomic persistence and the content-addressed store."""

from __future__ import annotations

import json

import pytest

from repro.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointStore,
    RestoreError,
    checkpoint_key,
    load_checkpoint,
    save_checkpoint,
    validate_envelope,
)


def _envelope(time_hex: str = (0.0).hex()) -> dict:
    return {
        "format": CHECKPOINT_FORMAT,
        "mode": "replay",
        "config": {"name": "x"},
        "time": time_hex,
    }


def test_validate_accepts_minimal_envelope():
    validate_envelope(_envelope())


@pytest.mark.parametrize("missing", ["format", "mode", "config", "time"])
def test_validate_rejects_missing_field(missing):
    data = _envelope()
    del data[missing]
    with pytest.raises(RestoreError):
        validate_envelope(data)


def test_validate_rejects_format_mismatch():
    data = _envelope()
    data["format"] = CHECKPOINT_FORMAT + 1
    with pytest.raises(RestoreError, match="format"):
        validate_envelope(data)


def test_save_and_load_roundtrip(tmp_path):
    data = _envelope()
    path = tmp_path / "ckpt.json"
    save_checkpoint(data, path)
    assert load_checkpoint(path) == data
    # The file is plain JSON, inspectable by hand.
    assert json.loads(path.read_text())["mode"] == "replay"


def test_load_rejects_corrupt_file(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(RestoreError):
        load_checkpoint(path)


def test_checkpoint_key_depends_on_config_and_time():
    config = {"name": "a", "seed": 0}
    key = checkpoint_key(config, (10.0).hex())
    assert key == checkpoint_key({"seed": 0, "name": "a"}, (10.0).hex())
    assert key != checkpoint_key(config, (11.0).hex())
    assert key != checkpoint_key({"name": "b", "seed": 0}, (10.0).hex())


def test_store_roundtrip_and_keys(tmp_path):
    store = CheckpointStore(tmp_path)
    data = _envelope()
    key = store.save(data)
    assert key == store.key_for(data)
    assert store.load(key) == data
    assert key in store.keys()
    store.clear()
    assert store.load(key) is None


def test_store_load_unknown_key(tmp_path):
    store = CheckpointStore(tmp_path)
    assert store.load("0" * 64) is None
