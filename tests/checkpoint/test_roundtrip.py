"""Checkpoint/restore byte-identity against uninterrupted serial runs."""

from __future__ import annotations

import pytest

from repro.checkpoint import (
    CheckpointStore,
    CheckpointUnsupported,
    RestoreError,
    SimulationRun,
    advance_to_safe_point,
    capture_state,
    native_unsupported_reason,
    restore_run,
    resume_run,
    run_checkpointed,
    step_until,
    workload_digest,
)
from repro.checkpoint.shard import shard_bench_config
from repro.experiments.scenarios import get_scenario
from repro.workloads.bursts import burst_workload

JOBS = 200


def _config():
    return shard_bench_config(JOBS, seed=0)


def _workload():
    # burst_size below the default so a 200-job run spans several bursts.
    return burst_workload(JOBS, burst_size=40, gap=900.0)


def _serial_digest(config, workload=None):
    run = SimulationRun.fresh(
        config, workload=workload, retain_jobs=False, collect_windowed=True
    )
    run.run_to_completion(drain=True)
    assert run.done
    return run.collector.window.digest


@pytest.fixture(scope="module")
def reference_digest():
    return _serial_digest(_config(), _workload())


def test_run_checkpointed_matches_serial(tmp_path, reference_digest):
    out = run_checkpointed(
        _config(),
        checkpoint_every=700.0,
        path=tmp_path / "ckpt.json",
        workload=_workload(),
    )
    assert out["all_done"]
    assert out["checkpoints"] >= 3
    assert out["window"].jobs == JOBS
    assert out["window"].digest == reference_digest


def test_resume_from_every_checkpoint_is_byte_identical(tmp_path, reference_digest):
    out = run_checkpointed(
        _config(),
        checkpoint_every=700.0,
        path=tmp_path / "ckpt.json",
        workload=_workload(),
    )
    assert out["checkpoint_paths"]
    for path in out["checkpoint_paths"]:
        run = resume_run(path, workload=_workload())
        run.run_to_completion(drain=True)
        assert run.done
        assert run.collector.window.digest == reference_digest


def test_store_persistence_roundtrip(tmp_path, reference_digest):
    store = CheckpointStore(tmp_path)
    out = run_checkpointed(
        _config(), checkpoint_every=700.0, store=store, workload=_workload()
    )
    assert out["checkpoint_keys"]
    assert sorted(out["checkpoint_keys"]) == store.keys()
    for key in out["checkpoint_keys"]:
        run = restore_run(store.load(key), workload=_workload())
        run.run_to_completion(drain=True)
        assert run.done
        assert run.collector.window.digest == reference_digest


def test_restore_refuses_mismatched_workload(tmp_path):
    out = run_checkpointed(
        _config(),
        checkpoint_every=700.0,
        path=tmp_path / "ckpt.json",
        workload=_workload(),
    )
    # The config's default shard-bursts workload has the same job count but
    # different submit times; restoring with it must fail loudly, not
    # produce almost-right metrics.
    with pytest.raises(RestoreError, match="workload"):
        resume_run(out["checkpoint_paths"][0])


def test_resumed_run_can_keep_checkpointing(reference_digest):
    first = run_checkpointed(_config(), checkpoint_every=700.0, workload=_workload())
    assert first["last_checkpoint"] is not None
    resumed = restore_run(first["last_checkpoint"], workload=_workload())
    second = run_checkpointed(
        _config(), checkpoint_every=700.0, workload=_workload(), run=resumed
    )
    assert second["all_done"]
    assert second["window"].digest == reference_digest


def test_recapture_of_restored_run_matches(tmp_path):
    """A restored run is itself checkpointable at the next safe point."""
    out = run_checkpointed(
        _config(),
        checkpoint_every=700.0,
        path=tmp_path / "ckpt.json",
        workload=_workload(),
    )
    run = resume_run(out["checkpoint_paths"][0], workload=_workload())
    advance_to_safe_point(run)
    envelope = capture_state(run, mode="native")
    again = restore_run(envelope, workload=_workload())
    again.run_to_completion(drain=True)
    assert again.done
    assert again.collector.window.digest == _serial_digest(_config(), _workload())


def test_native_capture_refused_outside_envelope():
    _label, config = get_scenario("figure7").expand(job_count=10)[0]
    run = SimulationRun.fresh(config, retain_jobs=False, collect_windowed=True)
    assert native_unsupported_reason(config, run.workload) is not None
    step_until(run.env, 500.0)
    advance_to_safe_point(run)
    with pytest.raises(CheckpointUnsupported):
        capture_state(run, mode="native")


def test_replay_mode_roundtrip_on_malleable_config():
    _label, config = get_scenario("figure7").expand(job_count=20)[0]
    run = SimulationRun.fresh(config, retain_jobs=False, collect_windowed=True)
    step_until(run.env, 2000.0)
    advance_to_safe_point(run)
    envelope = capture_state(run, mode="replay")
    run.run_to_completion(drain=True)
    assert run.done
    restored = restore_run(envelope)
    restored.run_to_completion(drain=True)
    assert restored.done
    assert restored.collector.window.digest == run.collector.window.digest
    assert restored.env.processed_events == run.env.processed_events


def test_workload_digest_is_content_addressed():
    assert workload_digest(_workload()) == workload_digest(_workload())
    other = burst_workload(JOBS, burst_size=41, gap=900.0)
    assert workload_digest(_workload()) != workload_digest(other)
