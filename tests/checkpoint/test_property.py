"""Property: checkpoint at a random time + restore == straight-through.

The ISSUE-mandated invariant, stated over the paper's central sweep
(``figure7``, malleable jobs under FPSMA) and the churn-replay combination
(trace-driven submissions under node churn) — both outside the native
envelope, so the captures run in replay mode — under both event-queue
backends (``REPRO_SIM_QUEUE=heap|calendar``).

For every drawn capture instant the restored run must finish with the same
per-job completion digest and the same kernel event count as the original,
whatever phase the simulation was in when the checkpoint hit.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.checkpoint import (
    SimulationRun,
    advance_to_safe_point,
    capture_state,
    restore_run,
    step_until,
)
from repro.experiments.scenarios import get_scenario

SCENARIOS = ("figure7", "churn-replay")
QUEUES = ("heap", "calendar")


def _roundtrip(scenario: str, queue: str, fraction: float) -> None:
    previous = os.environ.get("REPRO_SIM_QUEUE")
    os.environ["REPRO_SIM_QUEUE"] = queue
    try:
        _label, config = get_scenario(scenario).expand(job_count=10)[0]
        run = SimulationRun.fresh(config, retain_jobs=False, collect_windowed=True)
        at = fraction * 4000.0
        step_until(run.env, at)
        advance_to_safe_point(run)
        envelope = capture_state(run, mode="replay")
        run.run_to_completion(drain=True)
        assert run.done

        restored = restore_run(envelope)
        restored.run_to_completion(drain=True)
        assert restored.done
        assert restored.collector.window.digest == run.collector.window.digest
        assert restored.collector.window.jobs == run.collector.window.jobs
        assert restored.env.processed_events == run.env.processed_events
        assert restored.env.now == run.env.now
    finally:
        if previous is None:
            os.environ.pop("REPRO_SIM_QUEUE", None)
        else:
            os.environ["REPRO_SIM_QUEUE"] = previous


@pytest.mark.parametrize("queue", QUEUES)
@pytest.mark.parametrize("scenario", SCENARIOS)
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(fraction=st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_checkpoint_restore_byte_identical(scenario, queue, fraction):
    _roundtrip(scenario, queue, fraction)
