"""Sharded replay: window planning, exact stitching, fallback repair."""

from __future__ import annotations

import pytest

from repro.bench.runner import run_bench
from repro.checkpoint import (
    CheckpointUnsupported,
    SimulationRun,
    plan_windows,
    shard_bench_config,
    shard_replay,
    shard_replay_bench,
)
from repro.experiments.scenarios import get_scenario
from repro.workloads.bursts import burst_workload
from repro.workloads.registry import build_named_workload


def _serial_digest(config, workload):
    run = SimulationRun.fresh(
        config, workload=workload, retain_jobs=False, collect_windowed=True
    )
    run.run_to_completion(drain=True)
    assert run.done
    return run.collector.window.digest


# -- planning ----------------------------------------------------------------


def test_plan_windows_cuts_at_gaps():
    workload = burst_workload(100, burst_size=25, gap=900.0)
    windows = plan_windows(workload, min_gap=600.0)
    assert [w.jobs for w in windows] == [25, 25, 25, 25]
    assert [w.index for w in windows] == [0, 1, 2, 3]
    for left, right in zip(windows, windows[1:]):
        assert left.end == right.start
        assert right.first_submit - left.last_submit >= 600.0


def test_plan_windows_single_window_without_gaps():
    workload = burst_workload(50, burst_size=1000)
    assert [w.jobs for w in plan_windows(workload)] == [50]


def test_plan_windows_empty_workload():
    assert plan_windows(burst_workload(0)) == []


def test_plan_windows_rejects_bad_gap():
    with pytest.raises(ValueError):
        plan_windows(burst_workload(10), min_gap=0.0)


# -- exactness ---------------------------------------------------------------


def test_sharded_equals_serial_in_process():
    config = shard_bench_config(600, seed=0)
    workload = burst_workload(600, burst_size=150, gap=900.0)
    reference = _serial_digest(config, workload)
    result = shard_replay(
        config,
        workload=burst_workload(600, burst_size=150, gap=900.0),
        force_sequential=True,
    )
    assert result.all_done
    assert result.fallback_from is None
    assert result.valid_windows == 4
    assert result.metrics.jobs == 600
    assert result.metrics.digest == reference


def test_sharded_equals_serial_process_pool():
    config = shard_bench_config(600, seed=0)
    workload = burst_workload(600, burst_size=150, gap=900.0)
    reference = _serial_digest(config, workload)
    result = shard_replay(
        config,
        workload=burst_workload(600, burst_size=150, gap=900.0),
        workers=2,
    )
    assert result.workers == 2
    assert result.sharded
    assert result.metrics.digest == reference


def test_boundary_violation_repaired_exactly():
    # Heavy backlog: each burst's queue outlives the inter-burst gap, so the
    # windows are NOT independent and the planner's assumption fails.
    def make():
        return burst_workload(900, burst_size=450, gap=650.0, interarrival=0.25)

    config = shard_bench_config(900, seed=0)
    reference = _serial_digest(config, make())
    result = shard_replay(config, workload=make(), min_gap=600.0, workers=2)
    assert result.fallback_from is not None
    assert result.all_done
    assert result.metrics.jobs == 900
    assert result.metrics.digest == reference


def test_config_workload_used_when_none_given():
    config = shard_bench_config(90, seed=0)
    result = shard_replay(config)
    assert result.all_done
    assert result.metrics.jobs == 90


def test_unsupported_config_refused():
    config = shard_bench_config(50, seed=0).with_overrides(
        malleability_policy="EGS", workload="Wm"
    )
    with pytest.raises(CheckpointUnsupported):
        shard_replay(config)


# -- the bursty workload -----------------------------------------------------


def test_burst_workload_is_deterministic_and_registered():
    direct = burst_workload(120)
    assert [s.name for s in direct.jobs] == [f"j{i:07d}" for i in range(120)]
    assert all(s.kind.value == "rigid" for s in direct.jobs)
    via_registry = build_named_workload("shard-bursts", job_count=120, rng=None)
    assert [
        (s.submit_time, s.name, s.initial_processors) for s in via_registry.jobs
    ] == [(s.submit_time, s.name, s.initial_processors) for s in direct.jobs]


def test_burst_workload_gap_structure():
    workload = burst_workload(60, burst_size=20, gap=900.0, interarrival=2.0)
    submits = [s.submit_time for s in workload.jobs]
    gaps = [b - a for a, b in zip(submits, submits[1:])]
    assert gaps.count(902.0) == 2  # gap + one interarrival, at each burst seam
    assert all(g == 2.0 for g in gaps if g != 902.0)


# -- scenario / bench integration -------------------------------------------


def test_scenario_base_matches_bench_config():
    """The registered scenario and the bench hook pin the same config."""
    spec = get_scenario("shard-replay")
    expected = shard_bench_config(1234, seed=7)
    _label, config = spec.expand(job_count=1234, seed=7)[0]
    assert config.to_dict() == expected.to_dict()
    assert spec.default_job_count == 500_000
    assert spec.bench is not None


def test_run_bench_uses_the_shard_hook():
    record = run_bench("shard-replay", job_count=300, seed=0)
    assert record.scenario == "shard-replay"
    assert record.runs == 1
    assert record.events_processed > 0
    assert record.metrics_digest
    # The digest is the shard engine's merged-window digest.
    direct = shard_replay_bench(job_count=300, seed=0)
    assert record.metrics_digest == direct["metrics_digest"]
    assert record.events_processed == direct["events_processed"]


def test_bench_hook_digest_matches_serial():
    config = shard_bench_config(300, seed=0)
    reference = _serial_digest(config, None)
    measured = shard_replay_bench(job_count=300, seed=0)
    assert measured["metrics_digest"] == reference
    assert measured["jobs"] == 300
