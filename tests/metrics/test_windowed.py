"""Tests of the streaming windowed-metrics accumulator's input validation."""

from __future__ import annotations

import pytest

from repro.metrics.windowed import WindowedMetrics


def completion(**overrides) -> dict:
    fields = dict(
        submit_time=10.0,
        start_time=20.0,
        finish_time=50.0,
        average_allocation=4.0,
        maximum_allocation=8,
    )
    fields.update(overrides)
    return fields


def test_add_completion_accumulates_a_valid_record():
    window = WindowedMetrics()
    window.add_completion("job-0", **completion())
    assert window.jobs == 1
    assert window.sum_wait == pytest.approx(10.0)
    assert window.sum_execution == pytest.approx(30.0)


def test_negative_wait_time_raises_value_error():
    """Regression: a start before submit used to fold straight into
    ``sum_wait`` and silently poison every downstream mean."""
    window = WindowedMetrics()
    with pytest.raises(ValueError, match="negative wait"):
        window.add_completion("job-bad", **completion(start_time=5.0))


def test_negative_execution_time_raises_value_error():
    window = WindowedMetrics()
    with pytest.raises(ValueError, match="negative execution"):
        window.add_completion("job-bad", **completion(finish_time=15.0))


def test_rejected_completions_leave_the_window_untouched():
    window = WindowedMetrics()
    window.add_completion("job-0", **completion())
    before = window.to_dict()
    with pytest.raises(ValueError):
        window.add_completion("job-bad", **completion(start_time=5.0))
    assert window.to_dict() == before


def test_zero_wait_and_zero_execution_are_valid_boundaries():
    window = WindowedMetrics()
    window.add_completion(
        "job-instant", **completion(start_time=10.0, finish_time=10.0)
    )
    assert window.jobs == 1
    assert window.sum_wait == 0.0
    assert window.sum_execution == 0.0
