"""Unit and property tests of the empirical CDF helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import EmpiricalCDF, cdf_points, fraction_at_or_below, percentile


def test_basic_evaluation():
    cdf = EmpiricalCDF.from_values([10, 20, 30, 40])
    assert cdf.fraction_at_or_below(5) == 0.0
    assert cdf.fraction_at_or_below(10) == 0.25
    assert cdf.fraction_at_or_below(25) == 0.5
    assert cdf.fraction_at_or_below(40) == 1.0
    assert cdf.percent_at_or_below(30) == 75.0
    assert len(cdf) == 4 and not cdf.empty


def test_percentiles_and_summary_statistics():
    cdf = EmpiricalCDF.from_values([1, 2, 3, 4, 5])
    assert cdf.median == 3
    assert cdf.mean == 3
    assert cdf.minimum == 1 and cdf.maximum == 5
    assert cdf.percentile(0) == 1
    assert cdf.percentile(100) == 5
    with pytest.raises(ValueError):
        cdf.percentile(150)


def test_empty_cdf_behaviour():
    cdf = EmpiricalCDF.from_values([])
    assert cdf.empty
    assert cdf.fraction_at_or_below(10) == 0.0
    with pytest.raises(ValueError):
        _ = cdf.mean
    with pytest.raises(ValueError):
        cdf.percentile(50)
    xs, ys = cdf.step_points()
    assert len(xs) == 0 and len(ys) == 0


def test_step_points_reach_one_hundred_percent():
    xs, ys = cdf_points([3, 1, 2])
    assert list(xs) == [1, 2, 3]
    assert list(ys) == pytest.approx([100 / 3, 200 / 3, 100.0])


def test_sampled_and_dominates():
    fast = EmpiricalCDF.from_values([10, 20, 30])
    slow = EmpiricalCDF.from_values([40, 50, 60])
    probes = [15, 35, 55, 70]
    assert fast.sampled(probes) == pytest.approx([100 / 3, 100.0, 100.0, 100.0])
    # For "smaller is better" metrics the faster distribution dominates.
    assert fast.dominates(slow, at=probes)
    assert not slow.dominates(fast, at=probes)


def test_convenience_wrappers():
    values = [5, 10, 15]
    assert fraction_at_or_below(values, 10) == pytest.approx(2 / 3)
    assert percentile(values, 50) == 10


def test_unsorted_input_is_sorted_on_construction():
    cdf = EmpiricalCDF(values=(5.0, 1.0, 3.0))
    assert cdf.values == (1.0, 3.0, 5.0)


@given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_cdf_is_monotone_and_bounded(values):
    """F is non-decreasing, 0 before the minimum and 1 at/after the maximum."""
    cdf = EmpiricalCDF.from_values(values)
    probes = sorted(set(values))
    fractions = [cdf.fraction_at_or_below(x) for x in probes]
    assert all(b >= a for a, b in zip(fractions, fractions[1:]))
    assert cdf.fraction_at_or_below(min(values) - 1) == 0.0
    assert cdf.fraction_at_or_below(max(values)) == 1.0
    assert cdf.fraction_at_or_below(max(values) + 1) == 1.0


@given(values=st.lists(st.floats(min_value=0, max_value=1e4), min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_median_lies_within_the_sample_range(values):
    cdf = EmpiricalCDF.from_values(values)
    assert cdf.minimum <= cdf.median <= cdf.maximum
