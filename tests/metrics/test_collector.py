"""Tests of the experiment-metrics collector and the report renderers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import ft_profile, gadget2_profile
from repro.cluster import Multicluster
from repro.koala import Job, KoalaScheduler, SchedulerConfig
from repro.metrics import (
    ExperimentMetrics,
    JobMetrics,
    comparison_table,
    format_table,
    metrics_to_csv,
    summary_table,
)
from repro.metrics.reports import activity_csv, cdf_probe_table, utilization_csv
from repro.sim import RandomStreams


@pytest.fixture
def finished_run(env):
    """A small finished scheduler run with both applications."""
    streams = RandomStreams(seed=21)
    system = Multicluster(env, streams=streams, gram_submission_latency=1.0)
    system.add_cluster("alpha", 32)
    scheduler = KoalaScheduler(
        env,
        system,
        SchedulerConfig(malleability_policy="EGS", approach="PRA", poll_interval=10.0,
                        adaptation_point_interval=0.0),
        streams=streams,
    )

    def submit(env):
        scheduler.submit(Job.malleable(gadget2_profile(), name="g-1"))
        yield env.timeout(60)
        scheduler.submit(Job.malleable(ft_profile(), name="f-1"))
        yield env.timeout(60)
        scheduler.submit(Job.rigid(ft_profile().as_rigid(), 2, name="r-1"))

    env.process(submit(env))
    env.run(until=5000)
    assert scheduler.all_done
    return system, scheduler


def test_job_metrics_derived_quantities():
    job = JobMetrics(
        name="x",
        profile="ft",
        kind="malleable",
        submit_time=10.0,
        start_time=25.0,
        finish_time=145.0,
        average_allocation=4.5,
        maximum_allocation=8,
        grow_count=2,
        shrink_count=1,
    )
    assert job.execution_time == 120.0
    assert job.response_time == 135.0
    assert job.wait_time == 15.0


def test_from_run_collects_every_finished_job(finished_run):
    system, scheduler = finished_run
    metrics = ExperimentMetrics.from_run(scheduler, system, label="unit")
    assert metrics.job_count == 3
    assert metrics.unfinished_jobs == 0
    assert {job.name for job in metrics.jobs} == {"g-1", "f-1", "r-1"}
    assert len(metrics.malleable_jobs) == 2
    assert len(metrics.select(profile="ft")) == 2
    assert len(metrics.select(profile="ft", kind="rigid")) == 1


def test_cdfs_and_summary_are_consistent(finished_run):
    system, scheduler = finished_run
    metrics = ExperimentMetrics.from_run(scheduler, system)
    exec_cdf = metrics.execution_time_cdf()
    assert len(exec_cdf) == 3
    assert exec_cdf.fraction_at_or_below(exec_cdf.maximum) == 1.0
    summary = metrics.summary()
    assert summary["jobs"] == 3
    assert summary["mean_execution_time"] == pytest.approx(exec_cdf.mean)
    assert summary["grow_messages"] == metrics.total_grow_messages
    # Response >= execution for every job.
    assert all(j.response_time >= j.execution_time for j in metrics.jobs)


def test_utilization_and_activity_series(finished_run):
    system, scheduler = finished_run
    metrics = ExperimentMetrics.from_run(scheduler, system)
    xs, ys = metrics.utilization_over(0.0, 1000.0, samples=50)
    assert len(xs) == 50 and len(ys) == 50
    assert ys.max() <= 32
    assert metrics.peak_utilization() > 0
    assert metrics.mean_utilization(0.0, 1000.0) > 0
    times, counts = metrics.cumulative_grow_messages()
    if len(counts):
        assert np.all(np.diff(counts) >= 0)
    op_times, op_counts = metrics.cumulative_operations()
    assert len(op_times) == len(op_counts)
    with pytest.raises(ValueError):
        metrics.utilization_over(10.0, 10.0)


def test_empty_metrics_summary():
    metrics = ExperimentMetrics(
        [],
        utilization=(np.asarray([]), np.asarray([])),
        grow_activity=(np.asarray([]), np.asarray([])),
        shrink_activity=(np.asarray([]), np.asarray([])),
        unfinished_jobs=2,
    )
    summary = metrics.summary()
    assert summary["jobs"] == 0
    assert summary["unfinished"] == 2
    assert metrics.peak_utilization() == 0.0


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


def test_format_table_aligns_columns():
    table = format_table(["name", "value"], [["a", 1.23456], ["bbbb", 7]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert "1.23" in table and "bbbb" in table


def test_summary_and_comparison_tables(finished_run):
    system, scheduler = finished_run
    metrics = ExperimentMetrics.from_run(scheduler, system, label="run")
    summary = summary_table({"run": metrics}, title="Summary")
    assert "run" in summary and "mean exec (s)" in summary
    comparison = comparison_table({"a": [1.0, 2.0], "b": [3.0, 4.0]}, probes=[10, 20])
    assert "10" in comparison and "4.00" in comparison
    probe_table = cdf_probe_table({"run": metrics}, "execution_time", probes=[100, 1000])
    assert "execution_time" in probe_table
    with pytest.raises(ValueError):
        cdf_probe_table({"run": metrics}, "bogus", probes=[1])


def test_csv_exports(finished_run):
    system, scheduler = finished_run
    metrics = ExperimentMetrics.from_run(scheduler, system, label="run")
    csv = metrics_to_csv(metrics)
    assert csv.count("\n") == 4  # header + 3 jobs
    assert "g-1" in csv
    util = utilization_csv({"run": metrics}, 0.0, 500.0, samples=10)
    assert util.count("\n") == 11
    activity = activity_csv({"run": metrics})
    assert activity.startswith("configuration,time,cumulative_operations")


def test_metrics_json_round_trip(finished_run):
    """`to_dict` -> json -> `from_dict` preserves every figure-facing quantity."""
    import json

    system, scheduler = finished_run
    metrics = ExperimentMetrics.from_run(scheduler, system, label="run")
    data = json.loads(json.dumps(metrics.to_dict()))
    restored = ExperimentMetrics.from_dict(data)

    assert restored.label == metrics.label
    assert restored.unfinished_jobs == metrics.unfinished_jobs
    assert restored.jobs == metrics.jobs  # JobMetrics is a frozen dataclass
    assert restored.summary() == metrics.summary()
    np.testing.assert_array_equal(restored.utilization[0], metrics.utilization[0])
    np.testing.assert_array_equal(restored.utilization[1], metrics.utilization[1])
    np.testing.assert_array_equal(
        restored.cumulative_grow_messages()[1], metrics.cumulative_grow_messages()[1]
    )
    # Serialising the restored object again is byte-identical.
    assert json.dumps(restored.to_dict(), sort_keys=True) == json.dumps(
        metrics.to_dict(), sort_keys=True
    )


def test_job_metrics_dict_round_trip():
    job = JobMetrics(
        name="x",
        profile="ft",
        kind="malleable",
        submit_time=10.0,
        start_time=25.0,
        finish_time=145.0,
        average_allocation=4.5,
        maximum_allocation=8,
        grow_count=2,
        shrink_count=1,
    )
    assert JobMetrics.from_dict(job.to_dict()) == job
