"""Unit tests of the ASCII plotting helpers."""

from __future__ import annotations

import pytest

from repro.metrics import EmpiricalCDF, ascii_plot, cdf_plot, sparkline


def test_ascii_plot_renders_all_series_and_legend():
    plot = ascii_plot(
        {
            "first": ([0, 1, 2, 3], [0, 10, 20, 30]),
            "second": ([0, 1, 2, 3], [30, 20, 10, 0]),
        },
        width=20,
        height=6,
        title="demo",
        x_label="time",
        y_label="value",
    )
    assert plot.splitlines()[0] == "demo"
    assert "o first" in plot and "x second" in plot
    assert "o" in plot and "x" in plot
    assert "(y: value)" in plot
    # Axis labels show the data range.
    assert "30.0" in plot and "0.0" in plot


def test_ascii_plot_handles_empty_and_degenerate_input():
    assert "(no data)" in ascii_plot({}, title="empty")
    assert "(no data)" in ascii_plot({"a": ([], [])})
    # A single constant point must not divide by zero.
    plot = ascii_plot({"flat": ([5.0], [7.0])}, width=10, height=4)
    assert "o" in plot


def test_ascii_plot_validates_dimensions():
    with pytest.raises(ValueError):
        ascii_plot({"a": ([1], [1])}, width=4, height=4)
    with pytest.raises(ValueError):
        ascii_plot({"a": ([1], [1])}, width=20, height=2)


def test_cdf_plot_uses_percentage_axis():
    cdfs = {
        "fast": EmpiricalCDF.from_values([10, 20, 30]),
        "slow": EmpiricalCDF.from_values([40, 50, 60]),
    }
    plot = cdf_plot(cdfs, width=30, height=8, title="cdfs", x_label="seconds")
    assert "cumulative number of jobs (%)" in plot
    assert "fast" in plot and "slow" in plot
    assert "100.0" in plot  # the top of the percentage axis


def test_sparkline_shapes():
    line = sparkline([0, 1, 2, 3, 4, 5])
    assert len(line) == 6
    assert line[0] == " " and line[-1] == "@"
    # Constant series renders a flat line, empty series renders nothing.
    assert sparkline([3, 3, 3]) == "..."
    assert sparkline([]) == ""
    # Long series are downsampled to the requested width.
    assert len(sparkline(range(1000), width=40)) == 40
