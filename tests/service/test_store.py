"""Tests of the content-addressed result store (and the cache over it)."""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.engine import ResultCache, config_key, run_configs
from repro.service.store import (
    SCHEMA_VERSION,
    FileLock,
    ResultStore,
    parse_size,
)
from _helpers import tiny_config

try:
    import fcntl
except ImportError:  # pragma: no cover - POSIX-only test environment
    fcntl = None


RECORD = {"metrics": {"x": 1}, "simulated_time": 2.0}


# -- parse_size ---------------------------------------------------------------


@pytest.mark.parametrize(
    ("text", "expected"),
    [
        (None, None),
        ("", None),
        ("   ", None),
        (4096, 4096),
        (4096.9, 4096),
        ("4096", 4096),
        ("1K", 1024),
        ("1.5K", 1536),
        ("512M", 512 << 20),
        ("2G", 2 << 30),
        ("1T", 1 << 40),
        ("10MB", 10 << 20),
        ("2g", 2 << 30),
    ],
)
def test_parse_size_accepts_human_sizes(text, expected):
    assert parse_size(text) == expected


@pytest.mark.parametrize("text", ["garbage", "12Q", "M", "-1", "0", -5, 0])
def test_parse_size_rejects_garbage_and_nonpositive(text):
    with pytest.raises(ValueError):
        parse_size(text)


# -- basic record round-trips -------------------------------------------------


def test_put_get_round_trip_and_stats(tmp_path):
    store = ResultStore(tmp_path / "store")
    assert store.get("k1") is None  # cold miss
    path = store.put("k1", RECORD)
    assert path == store.path_for("k1")
    assert store.get("k1") == RECORD
    assert store.contains("k1")
    assert list(store.keys()) == ["k1"]
    stats = store.stats()
    assert (stats.hits, stats.misses, stats.puts) == (1, 1, 1)
    assert stats.entries == 1
    assert stats.total_bytes == path.stat().st_size
    assert stats.invalidations == 0
    # The envelope on disk is versioned and wraps the record verbatim.
    envelope = json.loads(path.read_text(encoding="utf-8"))
    assert envelope["schema_version"] == SCHEMA_VERSION
    assert envelope["record"] == RECORD
    assert "stored_at" in envelope


def test_delete_and_clear(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.put("k1", RECORD)
    store.put("k2", RECORD)
    assert store.delete("k1")
    assert not store.delete("k1")  # already gone
    assert store.clear() == 1
    assert list(store.keys()) == []


# -- schema versioning and corruption ----------------------------------------


def _rewrite_envelope(store: ResultStore, key: str, envelope) -> None:
    store.path_for(key).write_text(json.dumps(envelope), encoding="utf-8")


@pytest.mark.parametrize(
    "envelope",
    [
        {"schema_version": SCHEMA_VERSION + 1, "record": {"x": 1}},  # future
        {"schema_version": SCHEMA_VERSION - 1, "record": {"x": 1}},  # past
        {"record": {"x": 1}},  # unversioned (pre-service cache files)
        {"schema_version": SCHEMA_VERSION, "record": [1, 2]},  # non-dict payload
        [1, 2, 3],  # not an envelope at all
    ],
)
def test_wrong_schema_is_a_miss_not_an_error(tmp_path, envelope):
    store = ResultStore(tmp_path / "store")
    store.put("k1", RECORD)
    _rewrite_envelope(store, "k1", envelope)
    assert store.get("k1") is None
    assert not store.contains("k1")
    assert store.stats().invalidations == 1
    # The next put rewrites the slot and the record becomes visible again.
    store.put("k1", RECORD)
    assert store.get("k1") == RECORD


def test_corrupt_json_is_a_miss_not_an_error(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.put("k1", RECORD)
    store.path_for("k1").write_text("{truncated...", encoding="utf-8")
    assert store.get("k1") is None
    assert store.stats().invalidations == 1
    store.put("k1", RECORD)
    assert store.get("k1") == RECORD


# -- LRU eviction -------------------------------------------------------------


def _age(store: ResultStore, key: str, seconds_ago: float) -> None:
    """Backdate a record's access time (the LRU ordering key)."""
    path = store.path_for(key)
    stamp = path.stat().st_mtime - seconds_ago
    os.utime(path, times=(stamp, stamp))


def test_eviction_drops_least_recently_used_first(tmp_path):
    probe = ResultStore(tmp_path / "store")
    size = probe.put("k1", RECORD).stat().st_size
    store = ResultStore(tmp_path / "store", budget_bytes=int(size * 2.5))
    _age(store, "k1", 300)
    store.put("k2", RECORD)
    _age(store, "k2", 200)
    assert sorted(store.keys()) == ["k1", "k2"]  # within budget: no eviction
    store.put("k3", RECORD)  # 3 records > 2.5 -> oldest (k1) goes
    assert sorted(store.keys()) == ["k2", "k3"]
    assert store.stats().evictions == 1
    # A hit refreshes k2, so the next eviction victim is k3.
    _age(store, "k3", 100)
    assert store.get("k2") == RECORD
    store.put("k4", RECORD)
    assert sorted(store.keys()) == ["k2", "k4"]


def test_eviction_breaks_mtime_ties_by_path(tmp_path):
    """Regression: with several records stamped with the *same* mtime (coarse
    filesystem granularity), the victim used to depend on directory-listing
    order.  The tie must break by path for a reproducible choice."""
    probe = ResultStore(tmp_path / "store")
    size = probe.put("k-a", RECORD).stat().st_size
    store = ResultStore(tmp_path / "store", budget_bytes=int(size * 2.5))
    store.put("k-b", RECORD)
    # Stamp both existing records with one identical (old) mtime.
    stamp = store.path_for("k-a").stat().st_mtime - 500
    for key in ("k-a", "k-b"):
        os.utime(store.path_for(key), times=(stamp, stamp))
    paths = sorted(str(store.path_for(key)) for key in ("k-a", "k-b"))
    victim_first = {str(store.path_for(k)): k for k in ("k-a", "k-b")}[paths[0]]
    survivor = "k-b" if victim_first == "k-a" else "k-a"
    store.put("k-c", RECORD)  # over budget: exactly one tied record goes
    assert sorted(store.keys()) == sorted([survivor, "k-c"])
    assert store.stats().evictions == 1


def test_record_that_triggered_eviction_is_never_evicted(tmp_path):
    probe = ResultStore(tmp_path / "store")
    size = probe.put("k1", RECORD).stat().st_size
    store = ResultStore(tmp_path / "store", budget_bytes=max(1, size // 2))
    # Budget smaller than one record: the fresh write must survive anyway.
    store.put("k2", RECORD)
    assert sorted(store.keys()) == ["k1", "k2"] or sorted(store.keys()) == ["k2"]
    _age(store, "k2", 100)
    store.put("k3", RECORD)
    assert "k3" in set(store.keys())  # newest survives
    assert store.get("k3") == RECORD


def test_budget_from_environment(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_BUDGET", "1M")
    assert ResultStore(tmp_path / "store").budget_bytes == 1 << 20
    monkeypatch.setenv("REPRO_STORE_BUDGET", "")
    assert ResultStore(tmp_path / "store").budget_bytes is None
    # An explicit budget wins over the environment.
    monkeypatch.setenv("REPRO_STORE_BUDGET", "1M")
    assert ResultStore(tmp_path / "store", budget_bytes="2K").budget_bytes == 2048


# -- locking ------------------------------------------------------------------


def test_file_lock_is_reentrant_hostile_and_context_managed(tmp_path):
    lock = FileLock(tmp_path / "x.lock")
    with lock:
        with pytest.raises(RuntimeError, match="already held"):
            lock.acquire()
    with lock:  # release() made it acquirable again
        pass
    lock.release()  # double release is harmless


@pytest.mark.skipif(fcntl is None, reason="flock requires fcntl")
def test_exclusive_lock_excludes_other_processes_handles(tmp_path):
    path = tmp_path / "x.lock"
    with FileLock(path):
        with open(path, "a+") as rival:
            with pytest.raises(OSError):  # BlockingIOError on Linux
                fcntl.flock(rival.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)


@pytest.mark.skipif(fcntl is None, reason="flock requires fcntl")
def test_shared_locks_coexist(tmp_path):
    path = tmp_path / "x.lock"
    with FileLock(path, shared=True):
        with open(path, "a+") as rival:
            fcntl.flock(rival.fileno(), fcntl.LOCK_SH | fcntl.LOCK_NB)
            fcntl.flock(rival.fileno(), fcntl.LOCK_UN)


# -- the engine's ResultCache rides on the store ------------------------------


def test_result_cache_delegates_to_the_store(tmp_path):
    cache = ResultCache(tmp_path / "cache", budget_bytes="1M")
    assert cache.backend.budget_bytes == 1 << 20
    assert cache.directory == cache.backend.directory


def test_cache_schema_invalidation_forces_rerun_and_rewrite(tmp_path):
    config = tiny_config(name="cache-schema")
    cache = ResultCache(tmp_path / "cache")
    (first,) = run_configs([config], cache=cache)
    key = config_key(config)
    assert cache.backend.contains(key)

    # An old-generation record is invisible: load misses, the sweep reruns.
    envelope = json.loads(cache.path_for(config).read_text(encoding="utf-8"))
    envelope["schema_version"] = SCHEMA_VERSION - 1
    cache.path_for(config).write_text(json.dumps(envelope), encoding="utf-8")
    assert cache.load(config) is None
    (again,) = run_configs([config], cache=cache)
    assert cache.backend.contains(key)  # rewritten under the current schema
    loaded = cache.load(config)
    assert loaded is not None
    assert loaded.metrics.to_dict() == first.metrics.to_dict()
    assert again.metrics.to_dict() == first.metrics.to_dict()
