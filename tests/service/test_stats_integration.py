"""Daemon-backed replication: the statistics layer over the service."""

from __future__ import annotations

from repro.experiments.scenarios import ScenarioSpec, ScenarioVariant
from repro.stats import replicate, run_tournament, tournament_report


def tiny_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="daemon-stats-test",
        title="daemon-backed replication grid",
        variants=(
            ScenarioVariant("rigid/Wm", {"malleability_policy": None}),
            ScenarioVariant("EGS/Wm", {"malleability_policy": "EGS"}),
        ),
        base={"workload": "Wm", "background_fraction": 0.0},
        default_job_count=2,
    )


def test_replicate_executes_the_grid_on_the_daemon(daemon):
    handle = daemon(workers=2)
    with handle.client() as client:
        replicas = replicate(tiny_spec(), seeds=(0, 1), client=client)
    assert list(replicas) == ["rigid/Wm", "EGS/Wm"]
    for replica in replicas.values():
        assert replica.seeds == (0, 1)
        assert len(replica.samples("mean_response_time")) == 2
    # Every (variant, seed) cell landed in the daemon's store.
    assert len(list(handle.service.store.keys())) == 4


def test_daemon_backed_tournament_matches_local_execution(daemon):
    spec = tiny_spec()
    local = tournament_report(run_tournament(spec, seeds=(0, 1)))
    handle = daemon(workers=2)
    with handle.client() as client:
        remote = tournament_report(
            run_tournament(spec, seeds=(0, 1), client=client)
        )
    assert remote == local
