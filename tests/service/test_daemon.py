"""End-to-end tests of the experiment daemon over its Unix socket.

Two rigs (see ``conftest``): the *real* rig runs genuine simulations on a
process pool and proves byte identity with the standalone engine; the
*gated* rig swaps in a fake runner that blocks until the test opens a gate,
which pins jobs in their queued/running states long enough to observe
coalescing, cancellation and timeouts deterministically.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from _helpers import FailRunner, GateRunner, tiny_config
from repro.experiments.engine import config_key, result_to_record
from repro.experiments.setup import run_experiment
from repro.service import ResultStore, ServiceError
from repro.service import protocol


def wait_for(predicate, *, timeout=10.0, interval=0.01, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(interval)


# -- byte identity with the standalone engine (real simulations) --------------


def test_daemon_result_is_byte_identical_to_run_experiment(daemon):
    config = tiny_config(name="identity")
    handle = daemon(workers=2)
    with handle.client() as client:
        response = client.run_and_wait(
            config, timeout=300, response_format="detailed"
        )
    local = result_to_record(run_experiment(config))
    assert response["ok"] is True
    assert response["key"] == config_key(config)
    # The whole record — config, metrics, horizon — is byte-identical.
    assert json.dumps(response["record"], sort_keys=True) == (
        json.dumps(local, sort_keys=True)
    )
    assert response["digest"] == protocol.metrics_digest(local)
    # The daemon persisted the record in the store, under the same envelope
    # the engine's own cache writes.
    stored = handle.service.store.get(config_key(config))
    assert stored == local


def test_eight_concurrent_submits_execute_exactly_once(daemon):
    # The acceptance criterion: 8 clients racing the same config produce
    # exactly one worker execution and eight identical responses.
    config = tiny_config(name="stampede")
    handle = daemon(workers=2)
    responses = [None] * 8
    errors = []

    def submit(slot: int) -> None:
        try:
            with handle.client() as client:
                responses[slot] = client.run_and_wait(
                    config, timeout=300, response_format="detailed"
                )
        except Exception as error:  # surfaced below, with the slot
            errors.append((slot, error))

    threads = [threading.Thread(target=submit, args=(slot,)) for slot in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    assert not errors, f"client threads failed: {errors}"
    assert all(response is not None and response["ok"] for response in responses)
    digests = {response["digest"] for response in responses}
    records = {json.dumps(response["record"], sort_keys=True) for response in responses}
    assert len(digests) == 1 and len(records) == 1  # eight identical answers
    with handle.client() as client:
        status = client.status()
    assert status["executions"] == 1  # exactly one worker run
    assert status["store"]["entries"] == 1


def test_restarted_daemon_serves_results_from_the_store(daemon, tmp_path):
    config = tiny_config(name="restart")
    store_dir = tmp_path / "shared-store"
    first = daemon(store=ResultStore(store_dir), tag="first")
    with first.client() as client:
        before = client.run_and_wait(config, timeout=300, response_format="detailed")
    first.stop()

    # A brand-new daemon (fresh job table) finds the result on disk: no
    # worker ever runs.
    second = daemon(store=ResultStore(store_dir), tag="second")
    with second.client() as client:
        after = client.run_and_wait(config, timeout=30, response_format="detailed")
        status = client.status()
    assert after["via"] == "store"
    assert after["source"] == "store"
    assert after["record"] == before["record"]
    assert status["executions"] == 0
    assert status["store_served"] == 1


# -- coalescing, observed deterministically (gated fake runner) ---------------


def test_concurrent_submits_coalesce_onto_one_run(daemon, tiny_record):
    runner = GateRunner(tiny_record)
    handle = daemon(runner=runner, workers=2)
    config = tiny_config(name="coalesce")
    responses = [None] * 8

    def submit(slot: int) -> None:
        with handle.client() as client:
            responses[slot] = client.run_and_wait(
                config, timeout=None, response_format="detailed"
            )

    threads = [threading.Thread(target=submit, args=(slot,)) for slot in range(8)]
    for thread in threads:
        thread.start()
    # The gate holds the one spawned worker mid-"simulation", so all eight
    # submissions are in flight together: exactly one spawned, seven
    # attached — no timing luck involved.
    with handle.client() as client:
        wait_for(
            lambda: client.status()["coalesced"] == 7,
            message="8 submissions to coalesce",
        )
        status = client.status()
    assert status["jobs"]["running"] + status["jobs"]["queued"] == 1
    assert len(runner.calls) == 1
    runner.gate.set()
    for thread in threads:
        thread.join(timeout=60)
    vias = sorted(response["via"] for response in responses)
    assert vias == ["attached"] * 7 + ["spawned"]
    assert {response["digest"] for response in responses} == {
        protocol.metrics_digest(tiny_record)
    }
    assert sum(response["coalesced"] for response in responses) == 7
    with handle.client() as client:
        assert client.status()["executions"] == 1


def test_submit_after_completion_is_served_from_the_session(daemon, tiny_record):
    runner = GateRunner(tiny_record)
    runner.gate.set()  # no holding: runs complete immediately
    handle = daemon(runner=runner, workers=2)
    config = tiny_config(name="session-hit")
    with handle.client() as client:
        first = client.run_and_wait(config, timeout=30)
        second = client.submit(config)
        assert first["via"] == "spawned"
        assert second["via"] == "session"
        assert second["state"] == "done"
        assert second["digest"] == first["digest"]
        assert client.status()["executions"] == 1


# -- cancellation -------------------------------------------------------------


def test_cancel_queued_job_works_and_running_job_is_refused(daemon, tiny_record):
    runner = GateRunner(tiny_record)
    handle = daemon(runner=runner, workers=1)  # one slot: the 2nd job queues
    running_config = tiny_config(name="occupier")
    queued_config = tiny_config(name="waiter")
    with handle.client() as client:
        running = client.submit(running_config)
        wait_for(
            lambda: client.status()["jobs"]["running"] == 1,
            message="first job to start",
        )
        queued = client.submit(queued_config)
        assert queued["state"] == "queued"

        # A queued job cancels immediately; its slot is never consumed.
        cancelled = client.cancel(queued["key"])
        assert cancelled["cancelled"] is True
        assert cancelled["state"] == "cancelled"
        got = client.get(queued["key"])
        assert got["state"] == "cancelled"

        # A running job is never killed: cancel reports the refusal.
        refused = client.cancel(running["key"])
        assert refused["cancelled"] is False
        assert refused["state"] == "running"

        # A cancelled config is resubmittable — it spawns a fresh run.
        runner.gate.set()
        resubmitted = client.run_and_wait(queued_config, timeout=60)
        assert resubmitted["via"] == "spawned"
        assert resubmitted["state"] == "done"
        finished = client.run_and_wait(running_config, timeout=60)
        assert finished["state"] == "done"
        assert client.status()["executions"] == 2  # occupier + resubmit


def test_pipelined_submit_cancel_settles_a_never_started_task(daemon, tiny_record):
    # Submit and cancel sent back-to-back on one connection: both lines land
    # in the daemon's read buffer together, so the cancel is dispatched
    # before the job's task gets its first event-loop step.  Cancelling a
    # never-started coroutine skips _run_job entirely (its finally never
    # runs) — the daemon must settle the job itself instead of waiting
    # forever on job.done and leaving a zombie 'queued' table entry.
    runner = GateRunner(tiny_record)
    handle = daemon(runner=runner, workers=1)
    occupier = tiny_config(name="occupier")
    victim = tiny_config(name="drive-by")
    with handle.client() as client:
        client.submit(occupier)  # pins the only slot: the victim stays queued
        wait_for(
            lambda: client.status()["jobs"]["running"] == 1,
            message="occupier to start",
        )
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(30)  # without the fix, the cancel response never comes
    sock.connect(str(handle.socket_path))
    reader = sock.makefile("rb")
    try:
        sock.sendall(
            protocol.encode({"op": "submit", "config": victim.to_dict()})
            + protocol.encode({"op": "cancel", "key": config_key(victim)})
        )
        submitted = json.loads(reader.readline())
        cancelled = json.loads(reader.readline())
    finally:
        reader.close()
        sock.close()
    assert submitted["ok"] is True and submitted["state"] == "queued"
    assert cancelled["ok"] is True
    assert cancelled["cancelled"] is True and cancelled["state"] == "cancelled"
    runner.gate.set()
    with handle.client() as client:
        # No zombie entry: the table shows the cancellation, and the config
        # is resubmittable instead of coalescing onto a dead job.
        assert client.get(config_key(victim))["state"] == "cancelled"
        done = client.run_and_wait(victim, timeout=60)
        assert done["via"] == "spawned" and done["state"] == "done"


def test_cancel_unknown_key_is_not_found(daemon, tiny_record):
    runner = GateRunner(tiny_record)
    runner.gate.set()
    handle = daemon(runner=runner)
    with handle.client() as client:
        with pytest.raises(ServiceError) as excinfo:
            client.cancel("0" * 64)
        assert excinfo.value.code == "not_found"


# -- timeouts and failures ----------------------------------------------------


def test_run_and_wait_timeout_then_late_attach_succeeds(daemon, tiny_record):
    runner = GateRunner(tiny_record)
    handle = daemon(runner=runner, workers=1)
    config = tiny_config(name="slowpoke")
    with handle.client() as client:
        with pytest.raises(ServiceError) as excinfo:
            client.run_and_wait(config, timeout=0.2)
        assert excinfo.value.code == "timeout"
        assert excinfo.value.response["state"] in ("queued", "running")
        # The job survived the client timeout; a later wait attaches to it.
        runner.gate.set()
        response = client.run_and_wait(config, timeout=60)
        assert response["state"] == "done"
        assert client.status()["executions"] == 1


def test_failed_run_is_reported_and_resubmittable(daemon):
    handle = daemon(runner=FailRunner(), workers=1)
    config = tiny_config(name="doomed")
    with handle.client() as client:
        with pytest.raises(ServiceError) as excinfo:
            client.run_and_wait(config, timeout=60)
        assert excinfo.value.code == "execution_failed"
        assert "simulated worker failure" in str(excinfo.value)
        got = client.get(config_key(config))
        assert got["state"] == "failed"
        assert "ValueError" in got["error"]
        # Failures are not cached: the store stays empty and a resubmit
        # spawns (and fails) again.
        status = client.status()
        assert status["store"]["entries"] == 0
        assert status["executions"] == 1
        with pytest.raises(ServiceError):
            client.run_and_wait(config, timeout=60)
        assert client.status()["executions"] == 2


# -- batch, get, list ---------------------------------------------------------


def test_batch_submits_and_deduplicates_in_one_round_trip(daemon, tiny_record):
    runner = GateRunner(tiny_record)
    handle = daemon(runner=runner, workers=2)
    config_a = tiny_config(name="batch", seed=0)
    config_b = tiny_config(name="batch", seed=1)
    with handle.client() as client:
        response = client.batch([config_a, config_b, config_a])
        assert response["count"] == 3
        vias = [job["via"] for job in response["jobs"]]
        assert vias == ["spawned", "spawned", "attached"]  # 3rd is a duplicate
        assert response["jobs"][0]["key"] == response["jobs"][2]["key"]
        runner.gate.set()
        done = client.run_and_wait(config_b, timeout=60)
        assert done["state"] == "done"
        wait_for(
            lambda: client.status()["jobs"]["done"] == 2,
            message="both batch jobs to finish",
        )
        listing = client.list(response_format="detailed")
    assert [entry["name"] for entry in listing] == ["batch", "batch"]
    assert all(entry["digest"] for entry in listing)
    assert [entry["config"]["seed"] for entry in listing] == [0, 1]
    assert len(runner.calls) == 2


def test_get_reaches_store_records_without_a_job_entry(daemon, tiny_record):
    handle = daemon(runner=GateRunner(tiny_record))
    handle.service.store.put("f" * 64, tiny_record)
    with handle.client() as client:
        response = client.get("f" * 64, response_format="detailed")
        assert response["source"] == "store"
        assert response["record"] == tiny_record
        with pytest.raises(ServiceError) as excinfo:
            client.get("0" * 64)
        assert excinfo.value.code == "not_found"
        # Lookup by config works too (key is derived daemon-side).
        with pytest.raises(ServiceError):
            client.get(config=tiny_config(name="never-submitted"))


# -- protocol robustness ------------------------------------------------------


def test_malformed_requests_get_errors_and_the_daemon_survives(daemon, tiny_record):
    runner = GateRunner(tiny_record)
    runner.gate.set()
    handle = daemon(runner=runner)

    with handle.client() as client:
        # Unknown operation.
        with pytest.raises(ServiceError) as excinfo:
            client.request("frobnicate")
        assert excinfo.value.code == "unknown_op"
        # Config that fails ExperimentConfig validation, at submit time.
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"workload": "Wm", "placement_policy": "NOPE"})
        assert excinfo.value.code == "bad_config"
        assert "SJF" in str(excinfo.value)  # the registered names are listed
        # Non-mapping config.
        with pytest.raises(ServiceError) as excinfo:
            client.request("submit", config=[1, 2])
        assert excinfo.value.code == "bad_config"
        # Unknown response_format: a client error, not an internal one.
        with pytest.raises(ServiceError) as excinfo:
            client.request("list", response_format="verbose")
        assert excinfo.value.code == "bad_request"
        assert "verbose" in str(excinfo.value)
        # Non-numeric timeout: rejected before any work is spawned.
        executions = client.status()["executions"]
        with pytest.raises(ServiceError) as excinfo:
            client.request(
                "run_and_wait",
                config=tiny_config(name="never-runs").to_dict(),
                timeout="soon",
            )
        assert excinfo.value.code == "bad_request"
        assert "timeout" in str(excinfo.value)
        assert client.status()["executions"] == executions

    # Raw garbage on the wire: one error line per bad line, connection and
    # daemon both stay up.
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10)
    sock.connect(str(handle.socket_path))
    reader = sock.makefile("rb")
    try:
        sock.sendall(b"this is not json\n")
        error = json.loads(reader.readline())
        assert error["ok"] is False and error["error"]["code"] == "bad_request"
        sock.sendall(b"[1, 2, 3]\n")
        error = json.loads(reader.readline())
        assert error["ok"] is False and error["error"]["code"] == "bad_request"
        # The same connection still serves real requests afterwards.
        sock.sendall(protocol.encode({"op": "status", "id": "after-garbage"}))
        response = json.loads(reader.readline())
        assert response["ok"] is True
        assert response["id"] == "after-garbage"  # ids echo back verbatim
    finally:
        reader.close()
        sock.close()

    with handle.client() as client:
        assert client.status()["ok"] is True


def test_request_ids_are_echoed_through_the_client(daemon, tiny_record):
    runner = GateRunner(tiny_record)
    runner.gate.set()
    handle = daemon(runner=runner)
    with handle.client() as client:
        response = client.request("status", id=41)
        assert response["id"] == 41
