"""Tests of the wire protocol: framing, formats, digests, payloads."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.service import protocol


def test_encode_decode_round_trip():
    message = {"op": "status", "id": 7}
    line = protocol.encode(message)
    assert line.endswith(b"\n")
    assert line.count(b"\n") == 1  # one message, one line
    assert protocol.decode(line) == message


def test_encode_is_canonical():
    assert protocol.encode({"b": 1, "a": 2}) == protocol.encode({"a": 2, "b": 1})


@pytest.mark.parametrize("line", [b"not json\n", b"[1, 2]\n", b'"text"\n'])
def test_decode_rejects_non_object_lines(line):
    with pytest.raises(ValueError):
        protocol.decode(line)


def test_response_format_defaults_and_validates():
    assert protocol.response_format({}) == "concise"
    assert protocol.response_format({"response_format": "detailed"}) == "detailed"
    with pytest.raises(ValueError, match="response_format"):
        protocol.response_format({"response_format": "verbose"})


def test_response_shapes():
    ok = protocol.ok_response("status", uptime=1.0)
    assert ok == {"ok": True, "op": "status", "uptime": 1.0}
    bad = protocol.error_response("get", "not_found", "nope", key="k")
    assert bad["ok"] is False
    assert bad["error"] == {"code": "not_found", "message": "nope"}
    assert bad["key"] == "k"


def test_metrics_digest_is_canonical_sha256(tiny_record):
    expected = hashlib.sha256(
        json.dumps(tiny_record["metrics"], sort_keys=True).encode("utf-8")
    ).hexdigest()
    assert protocol.metrics_digest(tiny_record) == expected
    # Any metrics change moves the digest.
    mutated = dict(tiny_record, metrics=dict(tiny_record["metrics"], unfinished_jobs=9))
    assert protocol.metrics_digest(mutated) != expected


def test_result_payload_concise_vs_detailed(tiny_record):
    concise = protocol.result_payload(tiny_record, "concise")
    assert concise["digest"] == protocol.metrics_digest(tiny_record)
    assert concise["simulated_time"] == tiny_record["simulated_time"]
    assert concise["truncated"] is False
    assert "record" not in concise
    assert set(concise["metrics"]) <= set(protocol.CONCISE_METRIC_KEYS)
    assert concise["metrics"]["jobs"] == 2.0

    detailed = protocol.result_payload(tiny_record, "detailed")
    assert detailed["record"] == tiny_record  # the full cache wire format
    assert detailed["digest"] == concise["digest"]
    assert "metrics" not in detailed  # the record already carries everything
