"""Fixtures for the experiment-service tests.

The daemon tests run a real :class:`~repro.service.daemon.ExperimentService`
in a background thread, talking to it over a Unix socket in ``tmp_path`` —
the exact transport and code path production clients use.  Two kinds of
runner plug into it:

* the real :func:`~repro.experiments.engine._execute_record` on a process
  pool, for byte-identity and end-to-end tests;
* a *gated* fake runner on a thread pool, whose executions block on a
  :class:`threading.Event` the test controls — which makes queued/running
  states, coalescing windows and cancellation races fully deterministic.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional

import pytest

from _helpers import tiny_config
from repro.experiments.engine import result_to_record
from repro.experiments.setup import run_experiment
from repro.service import ExperimentService, ResultStore, ServiceClient


@pytest.fixture(scope="session")
def tiny_record() -> Dict[str, Any]:
    """A genuine result record (valid metrics payload for fake runners)."""
    return result_to_record(run_experiment(tiny_config()))


class DaemonHandle:
    """One background daemon plus the plumbing to reach and stop it."""

    def __init__(
        self,
        service: ExperimentService,
        socket_path,
        thread: threading.Thread,
        pool: Optional[ThreadPoolExecutor],
    ) -> None:
        self.service = service
        self.socket_path = socket_path
        self.thread = thread
        self.pool = pool

    def client(self, **kwargs: Any) -> ServiceClient:
        return ServiceClient(socket_path=self.socket_path, **kwargs)

    def stop(self, timeout: float = 30.0) -> None:
        if self.thread.is_alive():
            try:
                with self.client(timeout=5.0) as client:
                    client.shutdown()
            except (OSError, ConnectionError):
                pass
        self.thread.join(timeout)
        assert not self.thread.is_alive(), "daemon thread failed to stop"
        if self.pool is not None:
            self.pool.shutdown(wait=False)


@pytest.fixture
def daemon(tmp_path):
    """Factory starting daemons in background threads; stops them on teardown."""
    handles: List[DaemonHandle] = []

    def start(
        *,
        store=None,
        workers: int = 2,
        runner=None,
        tag: str = "svc",
    ) -> DaemonHandle:
        if store is None:
            store = ResultStore(tmp_path / f"{tag}-store")
        # Fake runners are plain closures: run them on threads (a process
        # pool would need them picklable and would hide the gate object).
        pool = ThreadPoolExecutor(max_workers=workers) if runner is not None else None
        service = ExperimentService(store, workers=workers, runner=runner, pool=pool)
        ready = threading.Event()
        thread = threading.Thread(
            target=service.run,
            kwargs={
                "socket_path": tmp_path / f"{tag}.sock",
                "on_ready": lambda _address: ready.set(),
            },
            daemon=True,
            name=f"repro-daemon-{tag}",
        )
        thread.start()
        assert ready.wait(30), "daemon failed to start"
        handle = DaemonHandle(service, tmp_path / f"{tag}.sock", thread, pool)
        handles.append(handle)
        return handle

    yield start
    for handle in handles:
        handle.stop()
