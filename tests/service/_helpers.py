"""Shared helpers of the service tests (imported by conftest and tests)."""

from __future__ import annotations

import threading
from typing import Any, Dict, List

from repro.experiments.setup import ExperimentConfig


def tiny_config(**overrides: Any) -> ExperimentConfig:
    """A fast experiment configuration (two rigid jobs, no background)."""
    fields: Dict[str, Any] = {
        "name": "tiny",
        "workload": "Wm",
        "job_count": 2,
        "malleability_policy": None,
        "placement_policy": "WF",
        "background_fraction": 0.0,
        "seed": 0,
    }
    fields.update(overrides)
    return ExperimentConfig(**fields)


class GateRunner:
    """A fake worker whose executions block until the test opens the gate."""

    def __init__(self, template: Dict[str, Any]) -> None:
        self.template = template
        self.gate = threading.Event()
        self.calls: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    def __call__(self, config: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            self.calls.append(config)
        if not self.gate.wait(timeout=30):
            raise RuntimeError("test gate never opened")
        record = dict(self.template)
        record["config"] = config
        return record


class FailRunner:
    """A fake worker that always blows up."""

    def __call__(self, config: Dict[str, Any]) -> Dict[str, Any]:
        raise ValueError(f"simulated worker failure for {config.get('name')!r}")
