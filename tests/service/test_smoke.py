"""Service smoke test against the golden figure-7 snapshot.

The CI service job and this test share one claim: a result obtained through
the daemon (socket, worker pool, store and all) carries exactly the metrics
the golden snapshot pins for the standalone engine — the service is a
transport, never a source of drift.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

from repro.experiments.engine import record_to_result
from repro.experiments.scenarios import get_scenario


def _golden_module():
    """The golden-metrics test module (its digest helpers are the oracle)."""
    path = Path(__file__).parent.parent / "golden" / "test_golden_metrics.py"
    spec = importlib.util.spec_from_file_location("golden_metrics_oracle", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_daemon_figure7_matches_golden_snapshot(daemon):
    golden = _golden_module()
    parameters = golden.GOLDEN_CASES["figure7"]
    label = "FPSMA/Wm"
    config = dict(
        get_scenario("figure7").expand(
            job_count=parameters["job_count"], seed=parameters["seed"]
        )
    )[label]

    handle = daemon(workers=2, tag="golden")
    with handle.client() as client:
        response = client.run_and_wait(
            config, timeout=600, response_format="detailed"
        )
    assert response["ok"] is True

    measured = golden.scenario_digest({label: record_to_result(response["record"])})
    expected = json.loads(golden._golden_path("figure7").read_text(encoding="utf-8"))
    differences = golden.field_diff({label: expected[label]}, measured)
    assert differences == [], "\n".join(differences)
