"""The daemon's ``metrics`` operation and its registry-backed counters."""

from __future__ import annotations

from _helpers import tiny_config


def test_metrics_op_returns_all_three_registries(daemon):
    handle = daemon(workers=1)
    with handle.client() as client:
        config = tiny_config(name="metrics-op")
        client.run_and_wait(config, timeout=300)
        response = client.metrics()
    assert response["ok"] is True
    assert response["op"] == "metrics"
    assert set(response) >= {"service", "store", "process"}
    assert response["service"]["service.executions"] == 1
    assert response["store"]["store.misses"] >= 1
    assert response["store"]["store.puts"] >= 1


def test_op_latency_histograms_accumulate(daemon):
    handle = daemon(workers=1)
    with handle.client() as client:
        client.status()
        client.status()
        snapshot = client.metrics()["service"]
    histogram = snapshot["service.op.status.seconds"]
    assert histogram["count"] == 2
    assert histogram["sum"] >= 0.0
    # The job-latency histogram uses a coarser base; absent until a job ran.
    assert "service.job.seconds" not in snapshot


def test_status_counters_stay_plain_ints(daemon, tiny_record):
    # Wire back-compat: the registry-backed counters still surface as the
    # same integer fields `status` always had.
    handle = daemon(workers=1)
    with handle.client() as client:
        status = client.status()
    assert isinstance(status["executions"], int)
    assert isinstance(status["coalesced"], int)
    assert isinstance(status["store_served"], int)
    assert status["requests"] >= 1
    assert isinstance(status["jobs"], dict)
    assert isinstance(status["store"], dict)


def test_service_counter_properties_match_registry(daemon):
    handle = daemon(workers=1)
    with handle.client() as client:
        config = tiny_config(name="props")
        client.run_and_wait(config, timeout=300)
        client.metrics()
    service = handle.service
    snap = service.metrics.snapshot()
    assert service.executions == snap["service.executions"]
    assert service.requests == snap["service.requests"]
    assert service.coalesced == snap.get("service.coalesced", 0)
    assert service.store_served == snap.get("service.store_served", 0)


def test_store_metrics_registry_mirrors_properties(tmp_path):
    from repro.service import ResultStore

    store = ResultStore(tmp_path / "store")
    store.get("missing-key")
    store.put("k", {"config": {}, "metrics": {"makespan": 1.0}})
    store.get("k")
    assert store.misses == 1
    assert store.hits == 1
    assert store.puts == 1
    snap = store.metrics.snapshot()
    assert snap["store.misses"] == 1
    assert snap["store.hits"] == 1
    assert snap["store.puts"] == 1
