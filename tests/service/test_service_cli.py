"""Tests of the ``repro-cli serve`` / ``repro-cli client`` subcommands.

The end-to-end tests drive the real argparse surface through
:func:`repro.experiments.cli.main` — the serve side in a background thread,
the client side in the test thread — so flag wiring, JSON printing and exit
codes are all exercised as a user would hit them.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.experiments.cli import build_parser, main
from repro.service import ServiceClient
from repro.service.cli import _configs_from


# -- parser wiring ------------------------------------------------------------


def test_serve_and_client_parsers_are_wired():
    parser = build_parser()
    serve = parser.parse_args(
        ["serve", "--socket", "/tmp/x.sock", "--workers", "3", "--store-budget", "1M"]
    )
    assert (serve.command, serve.workers, serve.store_budget) == ("serve", 3, "1M")
    client = parser.parse_args(
        ["client", "--socket", "/tmp/x.sock", "--format", "detailed", "list"]
    )
    assert (client.command, client.client_op, client.format) == (
        "client",
        "list",
        "detailed",
    )
    wait = parser.parse_args(
        ["client", "run-and-wait", "--workload", "Wm", "--job-count", "5",
         "--policy", "none", "--timeout", "9"]
    )
    assert (wait.client_op, wait.job_count, wait.timeout) == ("run-and-wait", 5, 9.0)


def test_configs_from_expands_seeds_and_normalises_policy():
    parser = build_parser()
    args = parser.parse_args(
        ["client", "submit", "--workload", "Wmr", "--policy", "none",
         "--job-count", "7", "--seeds", "0", "1", "2"]
    )
    configs = _configs_from(args)
    assert [config["seed"] for config in configs] == [0, 1, 2]
    assert all(config["malleability_policy"] is None for config in configs)
    assert all(config["workload"] == "Wmr" for config in configs)
    assert all(config["job_count"] == 7 for config in configs)


# -- end-to-end through main() ------------------------------------------------


@pytest.fixture
def served(tmp_path, capsys):
    """A daemon run via ``main(["serve", ...])`` in a background thread."""
    sock = tmp_path / "cli.sock"
    exit_codes = []

    def serve() -> None:
        exit_codes.append(
            main(
                [
                    "serve",
                    "--socket",
                    str(sock),
                    "--workers",
                    "1",
                    "--store-dir",
                    str(tmp_path / "store"),
                ]
            )
        )

    thread = threading.Thread(target=serve, daemon=True, name="repro-cli-serve")
    thread.start()
    probe = ServiceClient(socket_path=sock)
    probe.wait_until_ready(timeout=30)
    probe.close()
    capsys.readouterr()  # flush the "listening on ..." banner
    yield sock
    if thread.is_alive():
        try:
            with ServiceClient(socket_path=sock, timeout=5.0) as client:
                client.shutdown()
        except (OSError, ConnectionError):
            pass
    thread.join(30)
    assert exit_codes == [0]


def _client_json(capsys, argv):
    """Run one client command, asserting success and parsing its JSON."""
    assert main(argv) == 0
    output = capsys.readouterr().out
    return json.loads(output[output.index("{"):])


def test_cli_round_trip_status_run_list(served, capsys, tmp_path):
    sock = str(served)
    status = _client_json(capsys, ["client", "--socket", sock, "status"])
    assert status["ok"] is True
    assert status["workers"] == 1
    assert status["store"]["entries"] == 0

    response = _client_json(
        capsys,
        ["client", "--socket", sock, "run-and-wait", "--workload", "Wm",
         "--policy", "none", "--job-count", "2", "--seeds", "0",
         "--name", "cli-tiny"],
    )
    assert response["state"] == "done"
    assert response["metrics"]["jobs"] == 2.0
    assert response["digest"]

    # list prints a JSON array; the run shows up done.
    assert main(["client", "--socket", sock, "list"]) == 0
    output = capsys.readouterr().out
    listing = json.loads(output[output.index("["):])
    assert [entry["name"] for entry in listing] == ["cli-tiny"]
    assert listing[0]["state"] == "done"

    # get by the printed key round-trips the digest.
    got = _client_json(
        capsys, ["client", "--socket", sock, "get", response["key"]]
    )
    assert got["digest"] == response["digest"]


def test_cli_submit_multiple_seeds_becomes_a_batch(served, capsys):
    sock = str(served)
    response = _client_json(
        capsys,
        ["client", "--socket", sock, "submit", "--workload", "Wm",
         "--policy", "none", "--job-count", "2", "--seeds", "0", "1"],
    )
    assert response["op"] == "batch"
    assert response["count"] == 2
    assert {job["via"] for job in response["jobs"]} == {"spawned"}


def test_cli_run_and_wait_rejects_seed_sweeps(served, capsys):
    assert (
        main(
            ["client", "--socket", str(served), "run-and-wait",
             "--workload", "Wm", "--policy", "none", "--job-count", "2",
             "--seeds", "0", "1"]
        )
        == 2
    )
    assert "exactly one seed" in capsys.readouterr().err


def test_cli_client_host_without_port_is_rejected(capsys):
    # Port 0 only means something for serve ("pick one"); a client would
    # otherwise slip past ServiceClient's host-requires-port guard and fail
    # with a confusing connect-to-port-0 error.
    assert main(["client", "--host", "127.0.0.1", "status"]) == 2
    assert "--port" in capsys.readouterr().err


def test_cli_client_reports_unreachable_daemon(tmp_path, capsys):
    missing = tmp_path / "nobody-home.sock"
    assert main(["client", "--socket", str(missing), "status"]) == 1
    assert "cannot reach the daemon" in capsys.readouterr().err


def test_cli_serve_rejects_garbage_budget(tmp_path, capsys):
    assert (
        main(
            ["serve", "--socket", str(tmp_path / "x.sock"),
             "--store-dir", str(tmp_path / "store"),
             "--store-budget", "lots"]
        )
        == 2
    )
    assert "cannot parse size" in capsys.readouterr().err
