"""Integration tests of the fault injector against a live scheduler.

Scripted availability-trace files drive exact failure sequences, so every
test controls precisely which processors die when.
"""

from __future__ import annotations

import pytest

from repro.apps import ft_profile, gadget2_profile
from repro.cluster import Multicluster
from repro.cluster.local_rm import LocalJob
from repro.faults import FaultInjector
from repro.koala import Job, JobState, KoalaScheduler, SchedulerConfig
from repro.policies.hooks import (
    JobFailed,
    JobRescued,
    NodeFailed,
    NodeRepaired,
    SchedulerHooks,
)
from repro.sim import RandomStreams


class RecordingHooks(SchedulerHooks):
    def __init__(self):
        self.events = []

    def on_node_failed(self, event, scheduler):
        self.events.append(event)

    def on_node_repaired(self, event, scheduler):
        self.events.append(event)

    def on_job_failed(self, event, scheduler):
        self.events.append(event)

    def on_job_rescued(self, event, scheduler):
        self.events.append(event)

    def of(self, event_type):
        return [event for event in self.events if isinstance(event, event_type)]


def build_system(env, *, clusters=(("alpha", 8),), policy="FPSMA", seed=3):
    streams = RandomStreams(seed=seed)
    system = Multicluster(
        env, streams=streams, gram_submission_latency=1.0, gram_recruit_latency=0.1
    )
    for name, size in clusters:
        system.add_cluster(name, size)
    scheduler = KoalaScheduler(
        env,
        system,
        SchedulerConfig(
            placement_policy="WF",
            malleability_policy=policy,
            approach="PRA",
            poll_interval=10.0,
            adaptation_point_interval=0.0,
        ),
        streams=streams,
    )
    return system, streams, scheduler


def inject(env, scheduler, streams, tmp_path, trace_text, *, retries=None):
    path = tmp_path / "faults.flt"
    path.write_text(trace_text, encoding="utf-8")
    reference = f"fault:trace?path={path}"
    if retries is not None:
        reference += f"&retries={retries}"
    return FaultInjector(env, scheduler, reference, streams)


def test_rigid_job_is_killed_and_resubmitted(env, tmp_path):
    system, streams, scheduler = build_system(env)
    hooks = RecordingHooks()
    scheduler.hooks.subscribe(hooks)
    # Down the whole cluster at t=50 (the job holds 4 of 8 nodes), repair at 60.
    injector = inject(
        env, scheduler, streams, tmp_path, "50 alpha down 8\n60 alpha up 8\n"
    )
    job = Job.rigid(gadget2_profile(), 4, name="victim")
    scheduler.submit(job)
    env.run(until=40)
    assert job.state is JobState.RUNNING

    env.run(until=55)
    assert injector.stats.jobs_killed == 1
    assert injector.stats.resubmissions == 1
    assert injector.stats.wasted_processor_seconds > 0
    assert job.state is JobState.QUEUED  # back in the placement queue
    assert system.cluster("alpha").available_processors == 0

    env.run(until=5000)
    assert scheduler.all_done
    assert job.state is JobState.FINISHED
    assert scheduler.finished == [job]
    # The final record spans the *second* execution but keeps the original
    # submission, so response time includes the wasted first attempt.
    record = scheduler.records[job.job_id]
    assert record.submit_time == 0.0
    assert record.start_time > 60.0

    [failed] = hooks.of(JobFailed)
    assert failed.resubmitted and failed.job is job
    assert hooks.of(NodeFailed)[0].processors == 8
    assert hooks.of(NodeRepaired)[0].processors == 8


def test_retry_budget_abandons_the_job_when_exhausted(env, tmp_path):
    system, streams, scheduler = build_system(env)
    hooks = RecordingHooks()
    scheduler.hooks.subscribe(hooks)
    injector = inject(
        env, scheduler, streams, tmp_path, "50 alpha down 8\n", retries=0
    )
    job = Job.rigid(gadget2_profile(), 4, name="doomed")
    scheduler.submit(job)
    env.run(until=100)
    assert injector.stats.jobs_killed == 1
    assert injector.stats.jobs_lost == 1
    assert injector.stats.resubmissions == 0
    assert job.state is JobState.FAILED
    assert scheduler.failed == [job]
    assert scheduler.all_done
    [failed] = hooks.of(JobFailed)
    assert not failed.resubmitted


def test_malleable_job_shrinks_through_the_failure(env, tmp_path):
    # The cluster is exactly the job's size: every struck node is the job's.
    system, streams, scheduler = build_system(env, clusters=(("alpha", 6),))
    hooks = RecordingHooks()
    scheduler.hooks.subscribe(hooks)
    injector = inject(env, scheduler, streams, tmp_path, "100 alpha down 2\n")
    job = Job.malleable(
        gadget2_profile(), initial_processors=6, minimum=2, maximum=8, name="bender"
    )
    scheduler.submit(job)
    env.run(until=90)
    assert job.state is JobState.RUNNING
    runner = scheduler.runner_for(job)
    assert runner.current_allocation == 6

    env.run(until=150)
    assert injector.stats.shrink_rescues == 1
    assert injector.stats.rescued_processors == 2
    assert injector.stats.jobs_killed == 0
    assert job.state is JobState.RUNNING
    assert runner.current_allocation == 4
    assert system.cluster("alpha").failed_processors == 2
    [rescued] = hooks.of(JobRescued)
    assert rescued.job is job and rescued.lost == 2

    env.run(until=20000)
    assert scheduler.all_done
    assert job.state is JobState.FINISHED
    record = scheduler.records[job.job_id]
    assert record.shrink_count >= 1


def test_malleable_job_below_minimum_dies_like_a_rigid_one(env, tmp_path):
    system, streams, scheduler = build_system(env, clusters=(("alpha", 4),))
    injector = inject(
        env, scheduler, streams, tmp_path, "100 alpha down 3\n120 alpha up 3\n"
    )
    job = Job.malleable(
        gadget2_profile(), initial_processors=4, minimum=3, maximum=6, name="fragile"
    )
    scheduler.submit(job)
    env.run(until=110)
    # Losing 3 of 4 leaves 1 < minimum 3: the job cannot shrink through.
    assert injector.stats.jobs_killed == 1
    assert injector.stats.shrink_rescues == 0
    assert job.state is JobState.QUEUED
    env.run(until=20000)
    assert scheduler.all_done
    assert job.state is JobState.FINISHED


def test_local_background_jobs_die_with_their_nodes(env, tmp_path):
    system, streams, scheduler = build_system(env)
    injector = inject(env, scheduler, streams, tmp_path, "50 alpha down 8\n")
    local_rm = system.local_rm("alpha")
    local_job = LocalJob(processors=8, duration=10_000.0)
    local_rm.submit(local_job)
    env.run(until=100)
    assert injector.stats.local_jobs_killed == 1
    assert local_job.finished
    assert local_job.finish_time == pytest.approx(50.0)
    assert system.cluster("alpha").available_processors == 0


def test_drain_removes_capacity_without_killing_anything(env, tmp_path):
    system, streams, scheduler = build_system(env)
    injector = inject(
        env, scheduler, streams, tmp_path, "50 alpha drain 8\n500 alpha up 8\n"
    )
    local_rm = system.local_rm("alpha")
    local_job = LocalJob(processors=6, duration=100.0)
    local_rm.submit(local_job)
    env.run(until=60)
    cluster = system.cluster("alpha")
    # Only the idle 2 drained immediately; the busy 6 are pending.
    assert cluster.failed_processors == 2
    assert injector.pending_drains == {"alpha": 6}
    assert not local_job.finished

    env.run(until=150)
    # The local job finished naturally and its nodes drained on release.
    assert local_job.finished
    assert local_job.finish_time == pytest.approx(100.0)
    assert cluster.failed_processors == 8
    assert injector.stats.local_jobs_killed == 0

    env.run(until=600)
    assert cluster.failed_processors == 0
    assert cluster.idle_processors == 8


def test_repair_cancels_pending_drains(env, tmp_path):
    system, streams, scheduler = build_system(env)
    injector = inject(
        env, scheduler, streams, tmp_path, "50 alpha drain 8\n60 alpha up 8\n"
    )
    local_rm = system.local_rm("alpha")
    local_rm.submit(LocalJob(processors=6, duration=100.0))
    env.run(until=70)
    cluster = system.cluster("alpha")
    # The repair cancelled the 6 pending drains and restored the 2 failed.
    assert injector.pending_drains == {}
    assert cluster.failed_processors == 0


def test_failures_strike_idle_nodes_without_touching_jobs(env, tmp_path):
    system, streams, scheduler = build_system(env)
    injector = inject(env, scheduler, streams, tmp_path, "50 alpha down 4\n")
    job = Job.rigid(gadget2_profile(), 4, name="spared")
    scheduler.submit(job)
    env.run(until=40)
    assert job.state is JobState.RUNNING
    # 4 idle + 4 held by the job; force the draw until it lands on idle only:
    # with the hypergeometric split this specific seed may hit the job, so
    # assert the invariant instead: struck processors == 4 and the system
    # stays consistent either way.
    env.run(until=2000)
    assert injector.stats.processors_failed == 4
    assert scheduler.all_done
    cluster = system.cluster("alpha")
    assert cluster.used_processors == 0
    assert cluster.failed_processors == 4
    assert cluster.idle_processors == 4


def test_injector_ignores_events_for_unknown_clusters(env, tmp_path):
    system, streams, scheduler = build_system(env)
    with pytest.raises(ValueError, match="unknown cluster"):
        inject(env, scheduler, streams, tmp_path, "10 gamma down 1\n")
        env.run(until=20)


def test_simultaneous_failures_on_one_local_job_do_not_crash(env, tmp_path):
    # Two down events in the same instant used to deliver two interrupts to
    # the same local-job process; the second resumed a finished generator
    # and crashed the whole simulation.
    system, streams, scheduler = build_system(env)
    injector = inject(
        env, scheduler, streams, tmp_path, "50 alpha down 4\n50 alpha down 4\n"
    )
    local_rm = system.local_rm("alpha")
    local_job = LocalJob(processors=8, duration=10_000.0)
    local_rm.submit(local_job)
    env.run(until=100)
    assert local_job.finished
    assert injector.stats.local_jobs_killed == 1
    assert system.cluster("alpha").available_processors == 0


def test_out_of_order_fault_model_fails_loudly(env, tmp_path):
    from repro.faults.models import FaultEvent, register_fault_model

    def backwards(rng, clusters, **params):
        yield FaultEvent(time=100.0, cluster="alpha", processors=1)
        yield FaultEvent(time=50.0, cluster="alpha", processors=1)

    register_fault_model(
        "test-backwards", backwards, description="test", overwrite=True
    )
    system, streams, scheduler = build_system(env)
    FaultInjector(env, scheduler, "fault:test-backwards", streams)
    with pytest.raises(ValueError, match="out-of-order"):
        env.run(until=200)


def test_constraint_refusing_the_shrink_kills_instead_of_fake_rescuing(env, tmp_path):
    # FT's power-of-two constraint at 8 processors with a minimum of 5 has
    # no acceptable smaller size: the mandatory shrink would be refused, so
    # the injector must take the kill path, not report a rescue while the
    # application keeps computing on a dead processor.
    system, streams, scheduler = build_system(env, clusters=(("alpha", 8),))
    injector = inject(
        env, scheduler, streams, tmp_path, "20 alpha down 1\n60 alpha up 1\n"
    )
    job = Job.malleable(
        ft_profile(), initial_processors=8, minimum=5, maximum=16, name="pow2"
    )
    scheduler.submit(job)
    env.run(until=30)
    assert injector.stats.shrink_rescues == 0
    assert injector.stats.jobs_killed == 1
    assert job.state is JobState.QUEUED
    env.run(until=30_000)
    assert scheduler.all_done
    assert job.state is JobState.FINISHED
