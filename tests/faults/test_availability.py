"""The cluster-layer availability model: failed processors leave the pool."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, Multicluster
from repro.cluster.local_rm import LocalJob, LocalResourceManager


def test_mark_failed_shrinks_idle_and_refuses_allocations(env):
    cluster = Cluster(env, "alpha", 8)
    cluster.mark_failed(5)
    assert cluster.failed_processors == 5
    assert cluster.available_processors == 3
    assert cluster.idle_processors == 3
    assert cluster.try_allocate(4, owner="too-big") is None
    allocation = cluster.allocate(3, owner="fits")
    assert cluster.idle_processors == 0
    allocation.release()
    cluster.mark_repaired(5)
    assert cluster.idle_processors == 8


def test_mark_failed_and_repaired_validate_bounds(env):
    cluster = Cluster(env, "alpha", 4)
    with pytest.raises(ValueError):
        cluster.mark_failed(5)
    with pytest.raises(ValueError):
        cluster.mark_failed(-1)
    with pytest.raises(ValueError):
        cluster.mark_repaired(1)
    cluster.mark_failed(2)
    with pytest.raises(ValueError):
        cluster.mark_repaired(3)


def test_idle_clamps_while_victims_are_dismantled(env):
    # Mark-first-release-second: between the two, failed + used exceeds the
    # total and the idle count must clamp at zero, not go negative.
    cluster = Cluster(env, "alpha", 4)
    allocation = cluster.allocate(3, owner="victim")
    cluster.mark_failed(2)
    assert cluster.idle_processors == 0
    allocation.release()
    assert cluster.idle_processors == 2


def test_availability_series_records_every_transition(env):
    cluster = Cluster(env, "alpha", 8)
    env.run(until=cluster.env.timeout(10))
    cluster.mark_failed(3)
    env.run(until=cluster.env.timeout(10))
    cluster.mark_repaired(1)
    assert cluster.availability_series.times == [0.0, 10.0, 20.0]
    assert cluster.availability_series.values == [8.0, 5.0, 6.0]


def test_repair_wakes_release_waiters(env):
    cluster = Cluster(env, "alpha", 2)
    cluster.mark_failed(2)
    woken = []
    event = cluster.when_released()
    event.callbacks.append(lambda e: woken.append(e.value))
    cluster.mark_repaired(2)
    env.run(until=1)
    assert woken == [2]


def test_multicluster_availability_series_sums_clusters(env, streams):
    system = Multicluster(env, streams=streams)
    system.add_cluster("alpha", 10)
    system.add_cluster("beta", 6)
    env.run(until=env.timeout(5))
    system.cluster("alpha").mark_failed(4)
    times, values = system.availability_series()
    assert list(times) == [0.0, 5.0]
    assert list(values) == [16.0, 12.0]
    assert system.available_processors == 12


def test_local_rm_fail_allocation_kills_the_running_job(env):
    cluster = Cluster(env, "alpha", 8)
    manager = LocalResourceManager(env, cluster)
    job = LocalJob(processors=4, duration=1000.0)
    manager.submit(job)
    env.run(until=10)
    assert cluster.used_processors == 4
    [(running_job, allocation, _)] = list(manager._running.values())
    assert running_job is job

    cluster.mark_failed(4)
    assert manager.fail_allocation(allocation)
    env.run(until=20)
    assert job.finished
    assert job.finish_time < 1000.0
    assert cluster.used_processors == 0
    assert cluster.idle_processors == 4  # the other half survived


def test_local_rm_fail_allocation_ignores_foreign_allocations(env):
    cluster = Cluster(env, "alpha", 8)
    manager = LocalResourceManager(env, cluster)
    foreign = cluster.allocate(2, owner="not-a-local-job")
    assert not manager.fail_allocation(foreign)
