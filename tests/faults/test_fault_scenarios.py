"""Scenario-level properties of the fault subsystem.

Covers the acceptance criteria of the subsystem: byte-identical
serial-vs-parallel determinism of ``fault-sweep``, provable zero-drift when
faults are disabled, and malleable policies taking measurably fewer job
kills than rigid ones under the same churn.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.engine import result_to_record
from repro.experiments.scenarios import get_scenario, run_scenario
from repro.experiments.setup import ExperimentConfig, run_experiment

#: The historical summary key set: a fault-free run must produce exactly
#: these, or golden snapshots and bench digests would drift.
BASELINE_SUMMARY_KEYS = {
    "jobs",
    "unfinished",
    "mean_execution_time",
    "mean_response_time",
    "median_execution_time",
    "median_response_time",
    "mean_average_allocation",
    "mean_maximum_allocation",
    "grow_messages",
    "shrink_messages",
    "peak_utilization",
}


def sweep_digest(results) -> str:
    return json.dumps(
        {label: result.metrics.to_dict() for label, result in sorted(results.items())},
        sort_keys=True,
    )


def test_fault_sweep_serial_and_parallel_are_byte_identical():
    serial = run_scenario("fault-sweep", job_count=8, seed=0, jobs=1, cache=None)
    parallel = run_scenario("fault-sweep", job_count=8, seed=0, jobs=2, cache=None)
    assert sweep_digest(serial) == sweep_digest(parallel)


def test_fault_sweep_repeated_runs_are_byte_identical():
    first = run_scenario("fault-sweep", job_count=6, seed=0, jobs=1, cache=None)
    second = run_scenario("fault-sweep", job_count=6, seed=0, jobs=1, cache=None)
    assert sweep_digest(first) == sweep_digest(second)


def test_fault_sweep_reports_resilience_metrics():
    results = run_scenario("fault-sweep", job_count=8, seed=0, jobs=1, cache=None)
    assert results
    for result in results.values():
        summary = result.metrics.summary()
        for key in (
            "jobs_killed",
            "resubmissions",
            "shrink_rescues",
            "wasted_processor_seconds",
            "availability_normalized_utilization",
            "node_failures",
        ):
            assert key in summary
        assert result.metrics.resilience is not None
        assert "availability" in result.metrics.resilience


def test_malleable_policies_take_fewer_kills_than_rigid_under_same_churn():
    # The paper's resilience story, quantified: the same trace with the same
    # failure sequence, once all-malleable and once all-rigid.
    results = run_scenario("churn-replay", seed=0, jobs=1, cache=None)
    kills = {
        label: result.metrics.summary()["jobs_killed"]
        for label, result in results.items()
    }
    (malleable_label,) = [label for label in kills if label.startswith("malleable")]
    (rigid_label,) = [label for label in kills if label.startswith("rigid")]
    assert kills[malleable_label] < kills[rigid_label]
    # And the malleable run shows actual shrink-rescues.
    assert (
        results[malleable_label].metrics.summary()["shrink_rescues"]
        > results[rigid_label].metrics.summary()["shrink_rescues"]
    )


def test_fault_sweep_grid_prefers_malleability_at_high_churn():
    results = run_scenario("fault-sweep", seed=0, jobs=1, cache=None)
    spec = get_scenario("fault-sweep")
    flaky = min(
        float(label.rsplit("=", 1)[1]) for label in results if "mtbf=" in label
    )
    rigid = results[f"no-malleability/mtbf={flaky:g}"].metrics.summary()
    for policy in ("FPSMA", "EGS"):
        malleable = results[f"{policy}/mtbf={flaky:g}"].metrics.summary()
        assert malleable["jobs_killed"] < rigid["jobs_killed"]
    assert not spec.is_static


# -- zero drift when disabled ---------------------------------------------------


def test_disabled_faults_add_nothing_to_metrics():
    result = run_experiment(ExperimentConfig(workload="Wm", job_count=6, seed=0))
    assert result.metrics.resilience is None
    assert set(result.metrics.summary()) == BASELINE_SUMMARY_KEYS
    assert "resilience" not in result.metrics.to_dict()


def test_enabled_faults_round_trip_through_the_wire_format():
    from repro.experiments.engine import record_to_result

    config = ExperimentConfig(
        workload="Wmr",
        job_count=8,
        seed=0,
        fault_model="fault:exp?mtbf=7200&mttr=600",
    )
    result = run_experiment(config)
    record = result_to_record(result)
    assert record["metrics"]["resilience"] == result.metrics.resilience
    revived = record_to_result(json.loads(json.dumps(record)))
    assert revived.metrics.to_dict() == result.metrics.to_dict()
    assert revived.config.fault_model == "fault:exp?mtbf=7200&mttr=600"


def test_result_records_carry_the_truncated_flag():
    done = run_experiment(ExperimentConfig(workload="Wm", job_count=3, seed=0))
    assert result_to_record(done)["truncated"] is False
    assert not done.truncated

    cut = run_experiment(
        ExperimentConfig(workload="Wm", job_count=6, seed=0, time_limit=400.0)
    )
    assert cut.truncated
    assert result_to_record(cut)["truncated"] is True


# -- configuration surface --------------------------------------------------------


def test_config_canonicalises_and_validates_fault_references():
    config = ExperimentConfig(fault_model="exp?mttr=60&mtbf=120")
    assert config.fault_model == "fault:exp?mtbf=120&mttr=60"
    assert config.to_dict()["fault_model"] == "fault:exp?mtbf=120&mttr=60"
    restored = ExperimentConfig.from_dict(config.to_dict())
    assert restored.fault_model == config.fault_model

    with pytest.raises(ValueError, match="unknown fault model"):
        ExperimentConfig(fault_model="fault:doesnotexist")
    with pytest.raises(ValueError, match="rejected parameters"):
        ExperimentConfig(fault_model="fault:exp?bogus=1")


def test_trace_backed_fault_model_joins_the_cache_key(tmp_path):
    path = tmp_path / "events.flt"
    path.write_text("10 vu down 1\n", encoding="utf-8")
    config = ExperimentConfig(fault_model=f"fault:trace?path={path}")
    first = config.to_dict()["fault_fingerprint"]
    path.write_text("20 vu down 2\n", encoding="utf-8")
    assert config.to_dict()["fault_fingerprint"] != first
