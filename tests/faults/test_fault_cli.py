"""CLI surface of the fault subsystem and the truncation warning."""

from __future__ import annotations

import pytest

from repro.experiments.cli import main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def test_list_faults_names_every_registered_model(capsys):
    assert main(["list-faults"]) == 0
    output = capsys.readouterr().out
    for name in ("exp", "weibull", "outage", "drain", "trace"):
        assert name in output
    assert "--mtbf" in output


def test_list_scenarios_includes_the_fault_scenarios(capsys):
    assert main(["list-scenarios"]) == 0
    output = capsys.readouterr().out
    assert "fault-sweep" in output
    assert "churn-replay" in output


def test_custom_run_with_mtbf_shorthand(capsys):
    assert (
        main(
            [
                "custom",
                "--workload",
                "Wmr",
                "--policy",
                "EGS",
                "--job-count",
                "6",
                "--mtbf",
                "7200",
                "--mttr",
                "300",
            ]
        )
        == 0
    )
    assert "EGS/Wmr" in capsys.readouterr().out


def test_fault_options_are_mutually_exclusive():
    with pytest.raises(SystemExit):
        main(["custom", "--job-count", "2", "--mtbf", "100", "--fault", "fault:exp"])


def test_mttr_requires_mtbf():
    with pytest.raises(SystemExit):
        main(["custom", "--job-count", "2", "--mttr", "100"])


def test_bad_fault_reference_is_an_argument_error():
    with pytest.raises(SystemExit):
        main(["custom", "--job-count", "2", "--fault", "fault:doesnotexist"])


def test_fault_trace_shorthand(tmp_path, capsys):
    path = tmp_path / "maintenance.flt"
    path.write_text("100 vu drain 40\n400 vu up 40\n", encoding="utf-8")
    assert (
        main(
            [
                "custom",
                "--workload",
                "Wm",
                "--job-count",
                "4",
                "--fault-trace",
                str(path),
            ]
        )
        == 0
    )
    assert "FPSMA/Wm" in capsys.readouterr().out


def test_sweep_accepts_fault_override(capsys):
    assert (
        main(
            [
                "sweep",
                "figure7",
                "--job-count",
                "4",
                "--mtbf",
                "14400",
                "--no-cache",
            ]
        )
        == 0
    )
    assert "Sweep figure7" in capsys.readouterr().out


def test_truncated_runs_warn_on_stderr(capsys):
    assert (
        main(
            [
                "custom",
                "--workload",
                "Wm",
                "--job-count",
                "6",
                "--time-limit",
                "400",
            ]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert "WARNING" in captured.err
    assert "truncated=true" in captured.err


def test_finished_runs_do_not_warn(capsys):
    assert main(["custom", "--workload", "Wm", "--job-count", "3"]) == 0
    assert "WARNING" not in capsys.readouterr().err


def test_scenario_run_warns_when_time_limit_cuts_runs(capsys):
    assert (
        main(
            [
                "sweep",
                "ablation-policy",
                "--job-count",
                "5",
                "--time-limit",
                "500",
                "--no-cache",
            ]
        )
        == 0
    )
    assert "WARNING" in capsys.readouterr().err
