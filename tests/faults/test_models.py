"""Unit tests of the fault models and the ``fault:`` reference machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.models import (
    KIND_FAIL,
    KIND_REPAIR,
    FaultEvent,
    FaultRef,
    cluster_drain,
    cluster_outage,
    exponential_churn,
    fault_fingerprint,
    fault_reference_string,
    is_fault_reference,
    known_fault_models,
    parse_fault_trace,
    resolve_fault_model,
    trace_fault_model,
    weibull_churn,
)

CLUSTERS = {"alpha": 4, "beta": 2}


def take(iterator, count):
    return [next(iterator) for _ in range(count)]


# -- references ---------------------------------------------------------------


def test_reference_parse_and_canonical_round_trip():
    ref = FaultRef.parse("fault:exp?mttr=600&mtbf=3600")
    assert ref.model == "exp"
    assert ref.params == {"mtbf": 3600, "mttr": 600}
    # Canonical form sorts parameters, so equal references hash equally in
    # the result cache.
    assert ref.canonical() == "fault:exp?mtbf=3600&mttr=600"
    # The prefix is optional on input.
    assert FaultRef.parse("exp?mtbf=3600").canonical() == "fault:exp?mtbf=3600"


def test_reference_rejects_malformed_parameters():
    with pytest.raises(ValueError, match="malformed fault parameter"):
        FaultRef.parse("fault:exp?mtbf")
    with pytest.raises(ValueError, match="empty fault model"):
        FaultRef.parse("fault:?mtbf=1")


def test_unknown_model_lists_the_registered_ones():
    with pytest.raises(ValueError, match="exp"):
        resolve_fault_model("nope")


def test_validate_rejects_unknown_parameters_pointedly():
    with pytest.raises(ValueError, match="rejected parameters"):
        FaultRef.parse("fault:exp?mtfb=3600").validate()
    with pytest.raises(ValueError, match="must be positive"):
        FaultRef.parse("fault:exp?mtbf=-1").validate()


def test_fault_reference_string_is_the_config_normaliser():
    assert (
        fault_reference_string("exp?mttr=60&mtbf=120")
        == "fault:exp?mtbf=120&mttr=60"
    )
    with pytest.raises(ValueError):
        fault_reference_string("fault:doesnotexist")


def test_retries_parameter():
    assert FaultRef.parse("fault:exp").retries() is None
    assert FaultRef.parse("fault:exp?retries=-1").retries() is None
    assert FaultRef.parse("fault:exp?retries=2").retries() == 2


def test_is_fault_reference():
    assert is_fault_reference("fault:exp")
    assert not is_fault_reference("trace:das3-synthetic")


def test_known_fault_models_cover_the_builtins():
    names = [name for name, _ in known_fault_models()]
    assert {"exp", "weibull", "outage", "drain", "trace"} <= set(names)


# -- churn models --------------------------------------------------------------


def test_exponential_churn_is_deterministic_and_time_ordered():
    first = take(
        exponential_churn(np.random.default_rng(7), CLUSTERS, mtbf=100, mttr=10), 40
    )
    second = take(
        exponential_churn(np.random.default_rng(7), CLUSTERS, mtbf=100, mttr=10), 40
    )
    assert first == second
    times = [event.time for event in first]
    assert times == sorted(times)
    assert all(event.processors == 1 for event in first)
    assert {event.cluster for event in first} <= set(CLUSTERS)


def test_churn_alternates_failures_and_repairs_in_balance():
    events = take(
        exponential_churn(np.random.default_rng(3), {"alpha": 1}, mtbf=50, mttr=5), 10
    )
    kinds = [event.kind for event in events]
    # A single node strictly alternates fail / repair.
    assert kinds == [KIND_FAIL, KIND_REPAIR] * 5


def test_churn_validates_parameters_eagerly():
    with pytest.raises(ValueError):
        exponential_churn(np.random.default_rng(0), CLUSTERS, mtbf=0)
    with pytest.raises(ValueError):
        weibull_churn(np.random.default_rng(0), CLUSTERS, shape=0)
    with pytest.raises(ValueError):
        weibull_churn(np.random.default_rng(0), CLUSTERS, start=-1)


def test_weibull_churn_mean_uptime_matches_mtbf():
    # One node: its fail/repair alternation exposes the uptime distribution
    # directly (uptime i = failure i+1 minus repair i).
    rng = np.random.default_rng(11)
    events = take(weibull_churn(rng, {"alpha": 1}, mtbf=1000.0, shape=1.5, mttr=1.0), 801)
    failures = [event.time for event in events if event.kind == KIND_FAIL]
    repairs = [event.time for event in events if event.kind == KIND_REPAIR]
    uptimes = [failures[0]] + [
        fail - repair for repair, fail in zip(repairs, failures[1:])
    ]
    assert 900.0 < float(np.mean(uptimes)) < 1100.0


# -- outages and drains ---------------------------------------------------------


def test_outage_fails_and_repairs_the_whole_cluster():
    events = list(
        cluster_outage(None, CLUSTERS, cluster="alpha", at=100, duration=50)
    )
    assert events == [
        FaultEvent(time=100, cluster="alpha", processors=4, kind=KIND_FAIL),
        FaultEvent(time=150, cluster="alpha", processors=4, kind=KIND_REPAIR),
    ]


def test_periodic_outage_repeats_every_period():
    events = take(
        cluster_outage(None, CLUSTERS, cluster="beta", at=10, duration=5, every=100), 6
    )
    fail_times = [event.time for event in events if event.kind == KIND_FAIL]
    assert fail_times == [10, 110, 210]


def test_outage_over_all_clusters_and_node_cap():
    events = list(cluster_outage(None, CLUSTERS, cluster="all", at=0, duration=1, nodes=3))
    fails = [event for event in events if event.kind == KIND_FAIL]
    assert {(event.cluster, event.processors) for event in fails} == {
        ("alpha", 3),
        ("beta", 2),  # capped at the cluster size
    }


def test_outage_rejects_unknown_cluster_and_bad_windows():
    with pytest.raises(ValueError, match="unknown cluster"):
        cluster_outage(None, CLUSTERS, cluster="gamma")
    with pytest.raises(ValueError):
        cluster_outage(None, CLUSTERS, cluster="alpha", duration=0)
    with pytest.raises(ValueError):
        cluster_outage(None, CLUSTERS, cluster="alpha", every=0)
    # Overlapping windows would yield a non-time-ordered stream: rejected.
    with pytest.raises(ValueError, match="overlapping"):
        cluster_outage(None, CLUSTERS, cluster="alpha", duration=3600, every=1800)


def test_drain_events_are_graceful():
    events = list(cluster_drain(None, CLUSTERS, cluster="alpha", at=5, duration=5))
    assert events[0].graceful and events[0].kind == KIND_FAIL
    assert not events[1].graceful and events[1].kind == KIND_REPAIR


# -- trace files -----------------------------------------------------------------


TRACE_TEXT = """
# maintenance schedule
100  alpha  down   2
150  alpha  up     2
50   beta   drain  1   # sorted on read
"""


def test_parse_fault_trace_sorts_and_understands_kinds():
    events = parse_fault_trace(TRACE_TEXT)
    assert [event.time for event in events] == [50, 100, 150]
    assert events[0].graceful and events[0].kind == KIND_FAIL
    assert events[1] == FaultEvent(time=100, cluster="alpha", processors=2)
    assert events[2].kind == KIND_REPAIR


def test_parse_fault_trace_reports_line_numbers():
    with pytest.raises(ValueError, match="<string>:1"):
        parse_fault_trace("10 alpha down")
    with pytest.raises(ValueError, match="unknown event kind"):
        parse_fault_trace("10 alpha explode 1")
    with pytest.raises(ValueError, match="malformed numbers"):
        parse_fault_trace("ten alpha down 1")


def test_trace_model_checks_clusters_and_existence(tmp_path):
    path = tmp_path / "events.flt"
    path.write_text("10 gamma down 1\n", encoding="utf-8")
    with pytest.raises(ValueError, match="unknown cluster 'gamma'"):
        trace_fault_model(None, CLUSTERS, path=str(path))
    with pytest.raises(ValueError, match="does not exist"):
        trace_fault_model(None, CLUSTERS, path=str(tmp_path / "missing.flt"))


def test_fault_fingerprint_tracks_trace_file_content(tmp_path):
    path = tmp_path / "events.flt"
    path.write_text("10 alpha down 1\n", encoding="utf-8")
    reference = f"fault:trace?path={path}"
    before = fault_fingerprint(reference)
    assert before is not None
    path.write_text("20 alpha down 2\n", encoding="utf-8")
    assert fault_fingerprint(reference) != before
    # Code-backed models need no fingerprint: the engine's code digest covers them.
    assert fault_fingerprint("fault:exp?mtbf=1") is None
