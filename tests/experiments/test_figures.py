"""Regression tests of the figure drivers: each paper figure's qualitative shape.

These tests run reduced versions of the paper's experiments (fewer jobs, one
seed) and assert the *relationships* the paper reports, not absolute numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    figure6_report,
    figure6_table,
    figure7_report,
    figure8_report,
    run_figure6,
    run_figure7,
    run_figure8,
)
from repro.experiments.figure6 import simulate_execution_time
from repro.apps import ft_profile, gadget2_profile


# ---------------------------------------------------------------------------
# Figure 6 — application scaling curves
# ---------------------------------------------------------------------------


def test_figure6_curves_match_the_papers_anchor_points():
    table = figure6_table(run_figure6())
    ft, gadget = table["ft"], table["gadget2"]
    # ~2 minutes for FT and ~10 minutes for GADGET-2 on 2 machines.
    assert ft[2] == pytest.approx(120.0)
    assert gadget[2] == pytest.approx(600.0)
    # Best times: ~1 minute for FT, ~4 minutes for GADGET-2.
    assert min(ft.values()) == pytest.approx(60.0)
    assert min(gadget.values()) == pytest.approx(240.0)
    # Curves are non-increasing in the number of machines.
    for curve in (ft, gadget):
        sizes = sorted(curve)
        assert all(curve[b] <= curve[a] + 1e-9 for a, b in zip(sizes, sizes[1:]))


def test_figure6_simulated_execution_matches_the_model():
    """Running the application model inside the simulator reproduces the
    profile's execution times exactly (no reconfigurations involved)."""
    for profile, machines in ((ft_profile(), 8), (gadget2_profile(), 24)):
        simulated = simulate_execution_time(profile, machines)
        assert simulated == pytest.approx(profile.execution_time(machines))


def test_figure6_report_renders_both_applications():
    report = figure6_report()
    assert "Figure 6" in report
    assert "ft" in report and "gadget2" in report


# ---------------------------------------------------------------------------
# Figure 7 — PRA approach (reduced size)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def figure7_results():
    return run_figure7(job_count=80, seed=2)


def test_figure7_all_jobs_complete(figure7_results):
    for label, result in figure7_results.items():
        assert result.all_done, f"{label} left jobs unfinished"
        assert result.metrics.job_count == 80


def test_figure7_malleability_beats_the_mixed_workload(figure7_results):
    """Wm (all malleable) achieves shorter execution times and larger job
    sizes than Wmr (half rigid) for both policies — the paper's headline."""
    for policy in ("FPSMA", "EGS"):
        wm = figure7_results[f"{policy}/Wm"].metrics
        wmr = figure7_results[f"{policy}/Wmr"].metrics
        assert wm.summary()["mean_execution_time"] < wmr.summary()["mean_execution_time"]
        assert wm.summary()["mean_average_allocation"] > wmr.summary()["mean_average_allocation"]


def test_figure7_egs_sends_more_grow_messages(figure7_results):
    """EGS makes all running jobs grow on every trigger, FPSMA only the oldest,
    so EGS sends clearly more grow messages (Figure 7(f))."""
    assert (
        figure7_results["EGS/Wm"].metrics.total_grow_messages
        > figure7_results["FPSMA/Wm"].metrics.total_grow_messages
    )
    # And the all-malleable workload produces more messages than the mixed one.
    for policy in ("FPSMA", "EGS"):
        assert (
            figure7_results[f"{policy}/Wm"].metrics.total_grow_messages
            > figure7_results[f"{policy}/Wmr"].metrics.total_grow_messages
        )


def test_figure7_pra_never_shrinks(figure7_results):
    for result in figure7_results.values():
        assert result.metrics.total_shrink_messages == 0


def test_figure7_jobs_grow_beyond_their_initial_size(figure7_results):
    """With PRA a substantial share of malleable jobs grows beyond the initial
    2 processors (Figures 7(a)/(b)); rigid jobs never do."""
    wm = figure7_results["EGS/Wm"].metrics
    grown = [j for j in wm.jobs if j.maximum_allocation > 2]
    assert len(grown) > 0.4 * len(wm.jobs)
    wmr = figure7_results["EGS/Wmr"].metrics
    assert all(j.maximum_allocation == 2 for j in wmr.select(kind="rigid"))


def test_figure7_report_contains_all_six_panels(figure7_results):
    report = figure7_report(figure7_results)
    for panel in ("7(a)", "7(b)", "7(c)", "7(d)", "7(e)", "7(f)"):
        assert panel in report
    assert "FPSMA/Wm" in report and "EGS/Wmr" in report


# ---------------------------------------------------------------------------
# Figure 8 — PWA approach (reduced size)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def figure8_results():
    return run_figure8(job_count=80, seed=2)


def test_figure8_all_jobs_complete(figure8_results):
    for label, result in figure8_results.items():
        assert result.all_done, f"{label} left jobs unfinished"


def test_figure8_jobs_are_stuck_near_their_minimum_size(figure8_results):
    """Under the high-load W' workloads with PWA, most jobs stay near their
    minimal size (Figures 8(a)/(b))."""
    for label, result in figure8_results.items():
        metrics = result.metrics
        small = [j for j in metrics.malleable_jobs if j.average_allocation <= 6]
        assert len(small) >= 0.5 * len(metrics.malleable_jobs), label


def test_figure8_execution_times_exceed_the_pra_ones(figure7_results, figure8_results):
    """The paper observes GADGET-2 execution times roughly 30% higher under
    PWA/W' than under PRA/W (Figure 8(c) versus 7(c))."""
    for policy in ("FPSMA", "EGS"):
        pra = figure7_results[f"{policy}/Wm"].metrics.select(profile="gadget2")
        pwa = figure8_results[f"{policy}/W'm"].metrics.select(profile="gadget2")
        pra_mean = np.mean([j.execution_time for j in pra])
        pwa_mean = np.mean([j.execution_time for j in pwa])
        # At the reduced job count used in tests the gap is smaller than the
        # paper's ~30%, but the direction must hold.
        assert pwa_mean > pra_mean * 1.02


def test_figure8_egs_remains_the_more_active_policy(figure8_results):
    assert (
        figure8_results["EGS/W'm"].metrics.total_grow_messages
        > figure8_results["FPSMA/W'm"].metrics.total_grow_messages
    )


def test_figure8_report_contains_all_six_panels(figure8_results):
    report = figure8_report(figure8_results)
    for panel in ("8(a)", "8(b)", "8(c)", "8(d)", "8(e)", "8(f)"):
        assert panel in report
