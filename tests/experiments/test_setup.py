"""Tests of the experiment configuration, workload building and the runner."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, build_workload, run_experiment
from repro.experiments.setup import (
    DEFAULT_BACKGROUND_PROFILE,
    FIGURE8_BACKGROUND_PROFILE,
    default_background,
)
from repro.sim import RandomStreams


def small_config(**overrides):
    base = ExperimentConfig(
        name="test",
        workload="Wm",
        job_count=12,
        malleability_policy="EGS",
        approach="PRA",
        seed=5,
        poll_interval=15.0,
    )
    return base.with_overrides(**overrides) if overrides else base


def test_config_label_and_overrides():
    config = small_config()
    assert config.label == "EGS/Wm"
    tweaked = config.with_overrides(malleability_policy=None, workload="Wmr")
    assert tweaked.label == "none/Wmr"
    assert config.label == "EGS/Wm"  # original untouched


def test_build_workload_accepts_all_paper_names():
    streams = RandomStreams(1)
    for name, interarrival in (("Wm", 120.0), ("Wmr", 120.0), ("W'm", 30.0), ("W'mr", 30.0)):
        spec = build_workload(small_config(workload=name, job_count=5), streams)
        gap = spec.jobs[1].submit_time - spec.jobs[0].submit_time
        assert gap == pytest.approx(interarrival)
    with pytest.raises(ValueError):
        build_workload(small_config(workload="bogus"), streams)


def test_default_background_profiles():
    assert default_background(0.0) == {}
    uniform = default_background(0.5)
    assert set(uniform) == {"vu", "uva", "delft", "multimedian", "leiden"}
    profile = default_background(None)
    assert set(profile) == set(DEFAULT_BACKGROUND_PROFILE)
    # Heavier clusters get shorter inter-arrival times (more load).
    assert profile["uva"].mean_interarrival < default_background({"uva": 0.3})["uva"].mean_interarrival
    custom = default_background({"delft": 0.4})
    assert set(custom) == {"delft"}
    with pytest.raises(ValueError):
        default_background(1.5)
    assert set(FIGURE8_BACKGROUND_PROFILE) == set(DEFAULT_BACKGROUND_PROFILE)


def test_run_experiment_completes_all_jobs_and_collects_metrics():
    result = run_experiment(small_config())
    assert result.all_done
    assert result.metrics.job_count == 12
    assert result.metrics.unfinished_jobs == 0
    assert result.simulated_time > result.workload.duration
    summary = result.metrics.summary()
    assert summary["mean_execution_time"] > 0
    assert result.label == "EGS/Wm"


def test_run_experiment_is_reproducible_for_a_given_seed():
    first = run_experiment(small_config())
    second = run_experiment(small_config())
    assert [j.name for j in first.metrics.jobs] == [j.name for j in second.metrics.jobs]
    assert first.metrics.summary() == second.metrics.summary()


def test_different_seeds_change_the_workload_mix():
    a = run_experiment(small_config(seed=1, job_count=20))
    b = run_experiment(small_config(seed=2, job_count=20))
    mix_a = sorted(j.profile for j in a.metrics.jobs)
    mix_b = sorted(j.profile for j in b.metrics.jobs)
    assert mix_a != mix_b or a.metrics.summary() != b.metrics.summary()


def test_same_workload_is_replayed_across_policies():
    """The same seed and workload name give both policies the exact same
    submissions — the property the paper's comparisons rely on."""
    fpsma = run_experiment(small_config(malleability_policy="FPSMA"))
    egs = run_experiment(small_config(malleability_policy="EGS"))
    assert [j.name for j in fpsma.workload] == [j.name for j in egs.workload]
    assert [j.submit_time for j in fpsma.workload] == [j.submit_time for j in egs.workload]


def test_run_experiment_without_background_or_malleability():
    config = small_config(
        malleability_policy=None, background_fraction=0.0, job_count=6
    )
    result = run_experiment(config)
    assert result.all_done
    # Without a malleability manager nothing ever grows.
    assert all(j.maximum_allocation == 2 for j in result.metrics.jobs)
    assert result.metrics.total_grow_messages == 0
