"""Tests of the declarative scenario registry and spec expansion."""

from __future__ import annotations

import pytest

from repro.experiments.scenarios import (
    ScenarioSpec,
    ScenarioVariant,
    get_scenario,
    iter_scenarios,
    register_scenario,
    run_scenario,
    scenario_names,
    scenario_report,
)


def test_registry_contains_every_figure_table_and_ablation():
    names = scenario_names()
    for expected in (
        "figure6",
        "figure7",
        "figure8",
        "table1",
        "ablation-approach",
        "ablation-policy",
        "ablation-threshold",
        "ablation-overhead",
        "ablation-reconfiguration",
        "ablation-placement",
        "ablation-background",
        "tournament",
    ):
        assert expected in names
    with pytest.raises(ValueError):
        get_scenario("nope")


def test_figure7_expansion_matches_the_papers_grid():
    spec = get_scenario("figure7")
    pairs = spec.expand(job_count=10, seed=2)
    # A non-default seed is part of the label: dropping it would collide
    # with the seed-0 expansion of the same grid.
    assert [label for label, _ in pairs] == [
        "FPSMA/Wm@seed2",
        "FPSMA/Wmr@seed2",
        "EGS/Wm@seed2",
        "EGS/Wmr@seed2",
    ]
    for label, config in pairs:
        assert config.job_count == 10
        assert config.seed == 2
        assert config.approach == "PRA"
        assert config.placement_policy == "WF"
    assert pairs[0][1].malleability_policy == "FPSMA"
    assert pairs[2][1].workload == "Wm"


def test_expansions_under_different_seeds_never_share_labels():
    """Regression: ``expand(seed=N)`` used to drop the ``@seed<N>`` suffix,
    so expansions under different root seeds collided on merge."""
    spec = get_scenario("figure7")
    merged = {}
    for seed in (0, 1, 2):
        for label, config in spec.expand(job_count=4, seed=seed):
            assert label not in merged, f"label collision: {label!r}"
            merged[label] = config
    assert len(merged) == 3 * len(spec.variants)
    # The spec's own sole default seed keeps the bare label...
    assert "FPSMA/Wm" in merged
    # ...and every other root seed is spelled out.
    assert "FPSMA/Wm@seed1" in merged and "FPSMA/Wm@seed2" in merged


def test_strip_seed_suffix_keeps_repetition_suffixes():
    from repro.experiments.scenarios import strip_seed_suffix

    assert strip_seed_suffix("EGS/Wm@seed7") == "EGS/Wm"
    assert strip_seed_suffix("EGS/Wm@seed7#rep1") == "EGS/Wm#rep1"
    assert strip_seed_suffix("EGS/Wm") == "EGS/Wm"


def test_figure8_base_carries_the_saturating_background():
    spec = get_scenario("figure8")
    _, config = spec.expand(job_count=5)[0]
    assert config.approach == "PWA"
    assert config.background_fraction  # the heavy Figure 8 profile
    assert config.workload == "W'm"


def test_static_scenarios_refuse_to_expand_but_report():
    spec = get_scenario("table1")
    assert spec.is_static
    with pytest.raises(ValueError):
        spec.expand()
    assert "Table I" in scenario_report(spec)
    assert "Figure 6" in scenario_report("figure6")


def test_seed_grid_and_repetitions_expand_with_distinct_labels_and_seeds():
    spec = ScenarioSpec(
        name="grid-test",
        title="grid",
        base={"workload": "Wm", "malleability_policy": "EGS"},
        variants=(ScenarioVariant("EGS/Wm", {}),),
        seeds=(0, 10),
        repetitions=2,
        default_job_count=4,
    )
    pairs = spec.expand()
    assert [label for label, _ in pairs] == [
        "EGS/Wm@seed0#rep0",
        "EGS/Wm@seed0#rep1",
        "EGS/Wm@seed10#rep0",
        "EGS/Wm@seed10#rep1",
    ]
    assert [config.seed for _, config in pairs] == [0, 1, 20, 21]
    assert len(set(config.seed for _, config in pairs)) == 4  # collision-free
    assert spec.run_count() == 4
    # A caller-provided seed collapses the grid to a single root seed.
    assert [config.seed for _, config in spec.expand(seed=5)] == [10, 11]


def test_adjacent_root_seeds_with_repetitions_never_collide():
    spec = ScenarioSpec(
        name="collision-test",
        title="collisions",
        variants=(ScenarioVariant("v", {"workload": "Wm"}),),
        seeds=(0, 1, 2),
        repetitions=3,
        default_job_count=4,
    )
    seeds = [config.seed for _, config in spec.expand()]
    assert len(seeds) == len(set(seeds)) == 9


def test_explicit_overrides_win_over_base_and_variant():
    spec = get_scenario("figure7")
    _, config = spec.expand(job_count=5, overrides={"grow_threshold": 9})[0]
    assert config.grow_threshold == 9


def test_register_scenario_rejects_duplicates_unless_overwritten():
    spec = ScenarioSpec(name="dup-test", title="dup")
    register_scenario(spec)
    try:
        with pytest.raises(ValueError):
            register_scenario(spec)
        register_scenario(spec, overwrite=True)  # explicit overwrite is fine
    finally:
        import repro.experiments.scenarios as scenarios

        scenarios._SCENARIOS.pop("dup-test", None)


def test_run_scenario_returns_results_keyed_by_variant_label():
    # The non-default root seed stays in the key (collision fix); the
    # bare-label convenience lives in the figure/ablation wrappers.
    results = run_scenario("ablation-approach", job_count=5, seed=1)
    assert sorted(results) == ["PRA/EGS/W'm@seed1", "PWA/EGS/W'm@seed1"]
    for result in results.values():
        assert result.metrics.job_count <= 5
    report = scenario_report("ablation-approach", results)
    assert "Ablation study: approach" in report


def test_default_reporter_is_a_summary_table():
    spec = ScenarioSpec(
        name="plain-test",
        title="Plain sweep",
        base={"workload": "Wm", "malleability_policy": None},
        variants=(ScenarioVariant("none/Wm", {}),),
        default_job_count=3,
    )
    report = scenario_report(spec)
    assert "Plain sweep" in report and "none/Wm" in report


def test_iter_scenarios_is_sorted_and_complete():
    listed = [spec.name for spec in iter_scenarios()]
    assert listed == sorted(listed)
    assert set(listed) >= set(scenario_names())
