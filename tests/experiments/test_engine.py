"""Tests of the sweep engine: parallel fan-out, result cache, determinism."""

from __future__ import annotations

import json

import pytest

import repro.experiments.engine as engine
from repro.experiments.engine import (
    ResultCache,
    code_version,
    config_key,
    record_to_result,
    result_to_record,
    run_configs,
)
from repro.experiments.scenarios import run_scenario
from repro.experiments.setup import ExperimentConfig, run_experiment


def config(**overrides) -> ExperimentConfig:
    base = ExperimentConfig(
        name="engine-test", workload="Wm", job_count=6, malleability_policy="EGS", seed=7
    )
    return base.with_overrides(**overrides) if overrides else base


def dump(metrics) -> str:
    return json.dumps(metrics.to_dict(), sort_keys=True)


# ---------------------------------------------------------------------------
# Keys and records
# ---------------------------------------------------------------------------


def test_code_version_is_stable_within_a_process():
    assert code_version() == code_version()
    assert len(code_version()) == 64


def test_config_key_changes_with_any_config_field():
    base = config_key(config())
    assert config_key(config()) == base
    assert config_key(config(seed=8)) != base
    assert config_key(config(job_count=7)) != base
    assert config_key(config(malleability_policy="FPSMA")) != base


def test_result_record_round_trips_through_json():
    result = run_experiment(config())
    record = json.loads(json.dumps(result_to_record(result)))
    restored = record_to_result(record)
    assert restored.config == result.config
    assert restored.all_done == result.all_done
    assert restored.simulated_time == result.simulated_time
    assert restored.workload is None
    assert restored.workload_duration == result.workload_duration
    assert dump(restored.metrics) == dump(result.metrics)


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------


def test_cache_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.load(config()) is None
    result = run_experiment(config())
    path = cache.store(result)
    assert path.is_file()
    cached = cache.load(config())
    assert cached is not None
    assert dump(cached.metrics) == dump(result.metrics)
    assert cache.load(config(seed=99)) is None  # other configs still miss


def test_corrupt_cache_file_counts_as_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cache.store(run_experiment(config()))
    cache.path_for(config()).write_text("{not json", encoding="utf-8")
    assert cache.load(config()) is None


def test_warm_cache_path_never_calls_run_experiment(tmp_path, monkeypatch):
    """The acceptance check: a second sweep must be served from disk only."""
    cache = ResultCache(tmp_path)
    configs = [config(seed=s) for s in (1, 2)]
    cold = run_configs(configs, cache=cache)

    def explode(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("run_experiment called on the warm cache path")

    monkeypatch.setattr(engine, "run_experiment", explode)
    warm = run_configs(configs, cache=cache)
    for before, after in zip(cold, warm):
        assert dump(before.metrics) == dump(after.metrics)


def test_refresh_ignores_cached_entries(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    run_configs([config()], cache=cache)
    calls = []
    real = engine.run_experiment
    monkeypatch.setattr(
        engine, "run_experiment", lambda c: calls.append(c) or real(c)
    )
    run_configs([config()], cache=cache, refresh=True)
    assert len(calls) == 1


def test_cache_clear_removes_every_entry(tmp_path):
    cache = ResultCache(tmp_path)
    run_configs([config(seed=s) for s in (1, 2, 3)], cache=cache)
    assert cache.clear() == 3
    assert cache.load(config(seed=1)) is None


# ---------------------------------------------------------------------------
# Parallel execution
# ---------------------------------------------------------------------------


def test_run_configs_preserves_order_and_rejects_bad_jobs():
    configs = [config(seed=s) for s in (3, 1, 2)]
    results = run_configs(configs)
    assert [r.config.seed for r in results] == [3, 1, 2]
    with pytest.raises(ValueError):
        run_configs(configs, jobs=0)


def test_parallel_metrics_are_byte_identical_to_serial(tmp_path):
    """Same config + seed => byte-identical ``to_dict()`` dumps, serial or
    ``jobs=4``, cold or warm.  The paper's comparisons rely on exact replay."""
    serial = run_scenario("figure7", job_count=6, seed=4)
    parallel = run_scenario(
        "figure7", job_count=6, seed=4, jobs=4, cache=ResultCache(tmp_path)
    )
    assert list(serial) == list(parallel)  # same labels, same stable order
    for label in serial:
        assert dump(serial[label].metrics) == dump(parallel[label].metrics), label
        assert serial[label].simulated_time == parallel[label].simulated_time


def test_mixed_warm_and_cold_entries_merge_in_order(tmp_path):
    cache = ResultCache(tmp_path)
    first, third = config(seed=1), config(seed=3)
    run_configs([first, third], cache=cache)  # pre-warm seeds 1 and 3
    results = run_configs([config(seed=s) for s in (1, 2, 3)], jobs=2, cache=cache)
    assert [r.config.seed for r in results] == [1, 2, 3]
    assert cache.load(config(seed=2)) is not None  # the miss was stored too
