"""Tests of the ``repro-experiment`` command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in ("figure6", "figure7", "figure8", "ablation", "run"):
        args = parser.parse_args(
            [command, "approach"] if command == "ablation" else [command]
        )
        assert args.command == command


def test_cli_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_figure6_command_prints_the_scaling_table(capsys):
    assert main(["figure6"]) == 0
    output = capsys.readouterr().out
    assert "Figure 6" in output
    assert "gadget2" in output and "ft" in output


def test_run_command_summary_and_csv(capsys):
    assert main(["run", "--workload", "Wm", "--policy", "EGS", "--jobs", "6", "--seed", "3"]) == 0
    summary = capsys.readouterr().out
    assert "EGS/Wm" in summary and "mean exec" in summary

    assert main(
        ["run", "--workload", "Wm", "--policy", "none", "--jobs", "4", "--seed", "3", "--csv"]
    ) == 0
    csv = capsys.readouterr().out
    assert csv.splitlines()[0].startswith("name,profile,kind")
    assert len(csv.strip().splitlines()) == 5  # header + 4 jobs


def test_figure7_command_with_reduced_jobs(capsys):
    assert main(["figure7", "--jobs", "8", "--seed", "1"]) == 0
    output = capsys.readouterr().out
    assert "Figure 7(a)" in output and "Figure 7(f)" in output
    assert "FPSMA/Wm" in output and "EGS/Wmr" in output


def test_ablation_command(capsys):
    assert main(["ablation", "threshold", "--jobs", "6", "--seed", "1"]) == 0
    output = capsys.readouterr().out
    assert "Ablation study: threshold" in output
    assert "threshold=0" in output


def test_output_file_option(tmp_path, capsys):
    target = tmp_path / "report.txt"
    assert main(["--output", str(target), "figure6"]) == 0
    assert capsys.readouterr().out == ""
    assert "Figure 6" in target.read_text(encoding="utf-8")


def test_unknown_ablation_study_rejected():
    with pytest.raises(SystemExit):
        main(["ablation", "nonsense"])
