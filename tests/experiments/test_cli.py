"""Tests of the ``repro-cli`` command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments.cli import build_parser, main


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the CLI's default result cache at a per-test directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def test_parser_knows_all_commands():
    parser = build_parser()
    samples = {
        "list-scenarios": ["list-scenarios"],
        "run": ["run", "figure7"],
        "sweep": ["sweep", "figure7"],
        "custom": ["custom"],
    }
    for command, argv in samples.items():
        assert parser.parse_args(argv).command == command


def test_cli_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list_scenarios_names_every_registered_scenario(capsys):
    assert main(["list-scenarios"]) == 0
    output = capsys.readouterr().out
    for name in ("figure6", "figure7", "figure8", "table1", "ablation-policy"):
        assert name in output


def test_run_static_scenario_prints_the_scaling_table(capsys):
    assert main(["run", "figure6"]) == 0
    output = capsys.readouterr().out
    assert "Figure 6" in output
    assert "gadget2" in output and "ft" in output


def test_run_table1_scenario(capsys):
    assert main(["run", "table1"]) == 0
    output = capsys.readouterr().out
    assert "Table I" in output and "Delft" in output


def test_custom_command_summary_and_csv(capsys):
    assert (
        main(
            ["custom", "--workload", "Wm", "--policy", "EGS", "--job-count", "6", "--seed", "3"]
        )
        == 0
    )
    summary = capsys.readouterr().out
    assert "EGS/Wm" in summary and "mean exec" in summary

    assert (
        main(
            [
                "custom",
                "--workload",
                "Wm",
                "--policy",
                "none",
                "--job-count",
                "4",
                "--seed",
                "3",
                "--csv",
            ]
        )
        == 0
    )
    csv = capsys.readouterr().out
    assert csv.splitlines()[0].startswith("name,profile,kind")
    assert len(csv.strip().splitlines()) == 5  # header + 4 jobs


def test_run_figure7_with_reduced_jobs_and_parallel_workers(capsys):
    assert main(["run", "figure7", "--job-count", "8", "--seed", "1", "--jobs", "2"]) == 0
    output = capsys.readouterr().out
    assert "Figure 7(a)" in output and "Figure 7(f)" in output
    assert "FPSMA/Wm" in output and "EGS/Wmr" in output


def test_sweep_prints_the_merged_summary(capsys):
    assert main(["sweep", "ablation-threshold", "--job-count", "6", "--seed", "1"]) == 0
    output = capsys.readouterr().out
    assert "Sweep ablation-threshold" in output
    assert "threshold=0" in output


def test_sweep_rejects_static_scenarios():
    with pytest.raises(SystemExit):
        main(["sweep", "figure6"])


def test_no_cache_leaves_the_cache_directory_empty(tmp_path, capsys):
    cache_dir = tmp_path / "explicit-cache"
    assert (
        main(
            [
                "run",
                "figure7",
                "--job-count",
                "4",
                "--no-cache",
                "--cache-dir",
                str(cache_dir),
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert not cache_dir.exists()


def test_cache_dir_option_populates_the_cache(tmp_path, capsys):
    cache_dir = tmp_path / "explicit-cache"
    assert main(["sweep", "figure7", "--job-count", "4", "--cache-dir", str(cache_dir)]) == 0
    capsys.readouterr()
    assert len(list(cache_dir.glob("*.json"))) == 4


def test_output_file_option(tmp_path, capsys):
    target = tmp_path / "report.txt"
    assert main(["--output", str(target), "run", "figure6"]) == 0
    assert capsys.readouterr().out == ""
    assert "Figure 6" in target.read_text(encoding="utf-8")


def test_unknown_scenario_rejected():
    with pytest.raises(SystemExit):
        main(["run", "nonsense"])


def test_list_policies_names_every_axis_and_signature(capsys):
    assert main(["list-policies"]) == 0
    output = capsys.readouterr().out
    for kind in ("placement:", "malleability:", "approach:"):
        assert kind in output
    for name in ("WF", "EASY", "FPSMA", "AVERAGE_STEAL", "PRA", "PWA"):
        assert name in output
    # Parameter signatures and docstring one-liners are shown.
    assert "reserve_depth=1" in output
    assert "balance='fraction'" in output
    assert "FCFS placement with EASY backfilling" in output


def test_custom_with_policy_args(capsys):
    assert (
        main(
            [
                "custom",
                "--policy",
                "AVERAGE_STEAL",
                "--policy-arg",
                "balance=absolute",
                "--placement",
                "EASY",
                "--placement-arg",
                "reserve_depth=2",
                "--job-count",
                "4",
                "--seed",
                "1",
            ]
        )
        == 0
    )
    summary = capsys.readouterr().out
    assert "AVERAGE_STEAL" in summary


def test_custom_rejects_unknown_policy_with_registered_names():
    with pytest.raises(SystemExit):
        main(["custom", "--policy", "EGSS", "--job-count", "2"])


def test_custom_rejects_bad_policy_arg():
    with pytest.raises(SystemExit):
        main(
            [
                "custom",
                "--policy",
                "EGS",
                "--policy-arg",
                "favour_interval=30",
                "--job-count",
                "2",
            ]
        )


def test_policy_arg_requires_a_policy():
    with pytest.raises(SystemExit):
        main(["custom", "--policy", "none", "--policy-arg", "balance=absolute"])


def test_run_new_policy_scenarios(capsys):
    assert main(["run", "average-steal", "--job-count", "6", "--seed", "1"]) == 0
    output = capsys.readouterr().out
    assert "AVERAGE_STEAL" in output
    assert main(["run", "backfilling", "--job-count", "6", "--seed", "1"]) == 0
    output = capsys.readouterr().out
    assert "EASY?reserve_depth=2" in output


# -- tournament ---------------------------------------------------------------


def test_tournament_prints_a_ranked_report(capsys):
    assert (
        main(["tournament", "--scenario", "figure7", "--seeds", "0,1", "--job-count", "4"])
        == 0
    )
    output = capsys.readouterr().out
    assert "Tournament: figure7" in output
    assert "2 seeds" in output and "95% CI" in output
    assert "Pareto frontier" in output


def test_tournament_repeat_is_byte_identical_from_the_warm_cache(capsys):
    argv = ["tournament", "--scenario", "figure7", "--seeds", "0,1", "--job-count", "4"]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert warm == cold


def test_tournament_grid_flags_build_a_custom_grid(capsys):
    assert (
        main(
            [
                "tournament",
                "--policies",
                "EGS,none",
                "--load-factors",
                "1",
                "--faults",
                "none",
                "--seeds",
                "0,1",
                "--job-count",
                "3",
            ]
        )
        == 0
    )
    output = capsys.readouterr().out
    assert "Tournament: tournament-custom" in output
    assert "EGS/load=1x/no-faults" in output
    assert "no-malleability/load=1x/no-faults" in output


def test_tournament_grid_flags_conflict_with_other_scenarios():
    with pytest.raises(SystemExit):
        main(["tournament", "--scenario", "figure7", "--policies", "EGS"])


def test_tournament_rejects_bad_seed_grids():
    for seeds in ("", "1,1", "-1"):
        with pytest.raises(SystemExit):
            main(["tournament", "--scenario", "figure7", "--seeds", seeds])


def test_tournament_rejects_unknown_rank_metric():
    with pytest.raises(SystemExit):
        main(
            [
                "tournament",
                "--scenario",
                "figure7",
                "--seeds",
                "0",
                "--job-count",
                "2",
                "--metric",
                "not_a_metric",
            ]
        )
