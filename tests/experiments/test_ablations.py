"""Smoke tests of the ablation sweeps (reduced sizes).

The full sweeps run as benchmarks; these tests exercise the same code paths
with tiny workloads so regressions in the ablation drivers are caught by the
ordinary test suite.
"""

from __future__ import annotations


from repro.experiments.ablations import (
    ablation_report,
    run_approach_ablation,
    run_overhead_ablation,
    run_policy_ablation,
    run_reconfiguration_cost_ablation,
    run_threshold_ablation,
)


def test_policy_ablation_includes_baselines_and_no_malleability():
    results = run_policy_ablation(
        job_count=8, seed=1, policies=("FPSMA", "EQUIPARTITION", None)
    )
    assert set(results) == {"FPSMA/Wm", "EQUIPARTITION/Wm", "no-malleability/Wm"}
    for label, result in results.items():
        assert result.all_done, label
    none = results["no-malleability/Wm"].metrics
    assert none.total_grow_messages == 0
    report = ablation_report(results, title="policies")
    assert "no-malleability/Wm" in report


def test_approach_ablation_runs_both_approaches():
    results = run_approach_ablation(job_count=8, seed=1)
    assert len(results) == 2
    labels = sorted(results)
    assert labels[0].startswith("PRA") and labels[1].startswith("PWA")
    pra = next(r for label, r in results.items() if label.startswith("PRA"))
    assert pra.metrics.total_shrink_messages == 0


def test_threshold_ablation_monotone_in_threshold():
    results = run_threshold_ablation(job_count=8, seed=1, thresholds=(0, 64))
    small = results["threshold=0"].metrics.summary()["mean_average_allocation"]
    large = results["threshold=64"].metrics.summary()["mean_average_allocation"]
    # Reserving 64 processors per cluster leaves essentially nothing to grow into.
    assert large <= small + 1e-9


def test_overhead_ablation_runs_all_latencies():
    results = run_overhead_ablation(job_count=6, seed=1, submission_latencies=(0.0, 60.0))
    assert set(results) == {"gram-latency=0s", "gram-latency=60s"}
    for result in results.values():
        assert result.all_done


def test_reconfiguration_cost_ablation_slows_growers_down():
    results = run_reconfiguration_cost_ablation(job_count=6, seed=1, costs=(0.0, 120.0))
    cheap = results["reconfig-cost=0s"].metrics.summary()["mean_execution_time"]
    expensive = results["reconfig-cost=120s"].metrics.summary()["mean_execution_time"]
    assert expensive >= cheap - 1e-9
