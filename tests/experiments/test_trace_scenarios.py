"""Trace scenarios end-to-end: registry, engine, policy grid, determinism, CLI.

The trace workload axis must compose with everything the experiment layer
already guarantees for synthetic workloads: every registered placement ×
malleability policy completes a tiny trace replay, serial and parallel
sweeps of the trace scenarios are byte-identical, and the CLI paths
(``list-traces``, ``run trace-replay``, ``--trace``/``--load-factor``)
work end-to-end.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import main as cli_main
from repro.experiments.scenarios import get_scenario, run_scenario
from repro.experiments.setup import ExperimentConfig, run_experiment
from repro.policies import names

#: A tiny deterministic trace reference shared by the fast tests below.
TINY_TRACE = "trace:das3-synthetic?jobs=24&max_procs=32"

PLACEMENTS = names("placement")
MALLEABILITY = names("malleability") + (None,)


def sweep_digest(results) -> str:
    return json.dumps(
        {label: result.metrics.to_dict() for label, result in sorted(results.items())},
        sort_keys=True,
    )


# -- registry -----------------------------------------------------------------


def test_trace_scenarios_are_registered():
    replay = get_scenario("trace-replay")
    assert not replay.is_static
    assert all(
        variant.overrides.get("malleability_policy", "x") is not None
        or variant.label.startswith("no-malleability")
        for variant in replay.variants
    )
    sweep = get_scenario("trace-load-sweep")
    factors = [variant.overrides["workload"] for variant in sweep.variants]
    assert all(workload.startswith("trace:") for workload in factors)
    assert len(set(factors)) == len(factors)


def test_trace_replay_appears_in_benchable_scenarios():
    from repro.bench.runner import benchable_scenarios

    assert "trace-replay" in benchable_scenarios()
    assert "trace-load-sweep" in benchable_scenarios()


# -- cross-policy smoke grid ---------------------------------------------------


@pytest.mark.parametrize("placement", PLACEMENTS)
@pytest.mark.parametrize("malleability", MALLEABILITY)
def test_every_policy_combination_completes_a_trace_replay(placement, malleability):
    config = ExperimentConfig(
        name=f"trace-grid-{placement}-{malleability}",
        workload=TINY_TRACE,
        job_count=3,
        placement_policy=placement,
        malleability_policy=malleability,
        approach="PRA",
        background_fraction=0.0,
        seed=0,
    )
    result = run_experiment(config)
    assert result.all_done, (
        f"trace replay under {placement}/{malleability} did not finish"
    )
    assert result.metrics.job_count == 3


def test_trace_grid_results_are_serial_parallel_identical():
    # The same grid rows must not depend on which process ran them: spot-check
    # one scenario-shaped sweep over the policy axis through the engine.
    from repro.experiments.scenarios import ScenarioSpec, ScenarioVariant

    spec = ScenarioSpec(
        name="trace-grid-determinism",
        title="grid determinism probe",
        base={"workload": TINY_TRACE, "approach": "PRA", "background_fraction": 0.0},
        variants=tuple(
            ScenarioVariant(f"{policy}", {"malleability_policy": policy})
            for policy in ("FPSMA", "EGS", "AVERAGE_STEAL")
        ),
        default_job_count=4,
    )
    serial = run_scenario(spec, jobs=1, cache=None)
    parallel = run_scenario(spec, jobs=2, cache=None)
    assert sweep_digest(serial) == sweep_digest(parallel)


# -- scenario determinism ------------------------------------------------------


@pytest.mark.parametrize("scenario", ["trace-replay", "trace-load-sweep"])
def test_trace_scenarios_serial_vs_parallel_byte_identical(scenario):
    serial = run_scenario(scenario, job_count=6, seed=0, jobs=1, cache=None)
    parallel = run_scenario(scenario, job_count=6, seed=0, jobs=2, cache=None)
    assert sweep_digest(serial) == sweep_digest(parallel)


def test_trace_replay_results_are_cacheable(tmp_path):
    first = run_scenario("trace-replay", job_count=5, seed=0, jobs=1, cache=str(tmp_path))
    warm = run_scenario("trace-replay", job_count=5, seed=0, jobs=1, cache=str(tmp_path))
    assert sweep_digest(first) == sweep_digest(warm)
    assert list(tmp_path.glob("*.json"))


# -- CLI ----------------------------------------------------------------------


def test_cli_list_traces(capsys):
    assert cli_main(["list-traces"]) == 0
    output = capsys.readouterr().out
    assert "das3-synthetic" in output
    assert "REPRO_TRACES_DIR" in output


def test_cli_run_trace_replay_end_to_end(capsys):
    code = cli_main(
        ["run", "trace-replay", "--job-count", "4", "--no-cache"]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "das3-synthetic" in output


def test_cli_run_accepts_scenario_option(capsys):
    code = cli_main(
        ["run", "--scenario", "trace-replay", "--job-count", "3", "--no-cache"]
    )
    assert code == 0
    assert "das3-synthetic" in capsys.readouterr().out


def test_cli_run_rejects_conflicting_scenarios(capsys):
    with pytest.raises(SystemExit):
        cli_main(["run", "figure7", "--scenario", "trace-replay"])
    with pytest.raises(SystemExit):
        cli_main(["run"])


def test_cli_trace_options_override_the_workload(capsys):
    code = cli_main(
        [
            "run",
            "trace-replay",
            "--trace",
            "das3-synthetic",
            "--load-factor",
            "2",
            "--trace-malleable",
            "0.5",
            "--job-count",
            "3",
            "--no-cache",
        ]
    )
    assert code == 0
    assert "das3-synthetic" in capsys.readouterr().out


def test_cli_trace_options_require_a_trace():
    with pytest.raises(SystemExit):
        cli_main(["run", "trace-replay", "--load-factor", "2", "--no-cache"])


def test_cli_rejects_invalid_trace_inputs_as_argument_errors(capsys):
    # Bad trace references must fail at argument time with a pointed
    # parser error, like every other bad input — never a traceback mid-run.
    for argv in (
        ["run", "trace-replay", "--trace", "no-such-trace", "--no-cache"],
        ["run", "trace-replay", "--trace", "das3-synthetic", "--load-factor", "-2"],
        ["run", "trace-replay", "--trace", "das3-synthetic", "--trace-malleable", "1.5"],
        ["custom", "--trace", "das3-synthetic", "--trace-window", "oops"],
    ):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(argv)
        assert excinfo.value.code == 2
        capsys.readouterr()  # drain the usage/error output per case


def test_cli_custom_accepts_a_trace_path(tmp_path, capsys):
    from repro.workloads import SwfWriter, synthetic_das3_trace

    path = tmp_path / "tiny.swf"
    SwfWriter().write(synthetic_das3_trace(jobs=6), path)
    code = cli_main(
        ["custom", "--trace", str(path), "--job-count", "4", "--policy", "EGS"]
    )
    assert code == 0
    assert "cli-custom" not in capsys.readouterr().err
