"""Unit tests of the reconfiguration (grow/shrink pause) cost models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    ConstantReconfigurationCost,
    DataRedistributionCost,
    NoReconfigurationCost,
    PerProcessorReconfigurationCost,
)


def test_no_cost_model_is_always_zero():
    model = NoReconfigurationCost()
    assert model.cost(2, 40) == 0.0
    assert model.cost(40, 2) == 0.0


def test_constant_cost_only_charged_on_actual_change():
    model = ConstantReconfigurationCost(12.0)
    assert model.cost(4, 8) == 12.0
    assert model.cost(8, 4) == 12.0
    assert model.cost(8, 8) == 0.0
    with pytest.raises(ValueError):
        ConstantReconfigurationCost(-1.0)


def test_per_processor_cost_scales_with_delta():
    model = PerProcessorReconfigurationCost(base=2.0, per_processor=0.5)
    assert model.cost(2, 10) == pytest.approx(2.0 + 0.5 * 8)
    assert model.cost(10, 2) == pytest.approx(2.0 + 0.5 * 8)
    assert model.cost(5, 5) == 0.0


def test_data_redistribution_cost_depends_on_moved_fraction():
    model = DataRedistributionCost(data_volume=1000.0, bandwidth=100.0, base=1.0)
    # Growing 2 -> 4 moves half the data: 1 + (2/4)*1000/100 = 6.
    assert model.cost(2, 4) == pytest.approx(6.0)
    # Doubling from a larger base moves the same fraction.
    assert model.cost(10, 20) == pytest.approx(6.0)
    # Small relative changes are cheap.
    assert model.cost(40, 41) < model.cost(2, 4)
    assert model.cost(7, 7) == 0.0


def test_cost_models_validate_inputs():
    with pytest.raises(ValueError):
        DataRedistributionCost(data_volume=-1, bandwidth=10)
    with pytest.raises(ValueError):
        DataRedistributionCost(data_volume=10, bandwidth=0)
    with pytest.raises(ValueError):
        PerProcessorReconfigurationCost(base=-0.1)
    with pytest.raises(ValueError):
        NoReconfigurationCost().cost(-1, 4)


MODELS = [
    NoReconfigurationCost(),
    ConstantReconfigurationCost(5.0),
    PerProcessorReconfigurationCost(base=1.0, per_processor=0.25),
    DataRedistributionCost(data_volume=1600.0, bandwidth=400.0, base=1.0),
]


@pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
@given(
    old=st.integers(min_value=1, max_value=64),
    new=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=60, deadline=None)
def test_costs_are_nonnegative_symmetric_and_zero_without_change(model, old, new):
    """Costs are non-negative, zero when nothing changes, and direction-agnostic."""
    cost = model.cost(old, new)
    assert cost >= 0.0
    assert model.cost(new, old) == pytest.approx(cost)
    if old == new:
        assert cost == 0.0
