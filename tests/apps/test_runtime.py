"""Unit and property tests of the simulated application runtime."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    ApplicationProfile,
    ConstantReconfigurationCost,
    NoReconfigurationCost,
    PowerLawSpeedup,
    RunningApplication,
    ft_profile,
    gadget2_profile,
)
from repro.sim import Environment


def make_profile(*, reconfig_cost: float = 0.0) -> ApplicationProfile:
    """A simple perfectly scaling profile: T(n) = 100 / n."""
    return ApplicationProfile(
        name="linear",
        speedup=PowerLawSpeedup(sequential_time=100.0, alpha=1.0),
        reconfiguration=(
            ConstantReconfigurationCost(reconfig_cost)
            if reconfig_cost
            else NoReconfigurationCost()
        ),
    )


def run_to_completion(env: Environment, app: RunningApplication) -> None:
    app.start()
    env.run(app.completed)


# ---------------------------------------------------------------------------
# Fixed-allocation execution
# ---------------------------------------------------------------------------


def test_execution_time_matches_profile_without_reallocation():
    env = Environment()
    app = RunningApplication(env, make_profile(), initial_allocation=4)
    run_to_completion(env, app)
    assert app.record.execution_time == pytest.approx(25.0)
    assert app.record.average_allocation == pytest.approx(4.0)
    assert app.record.maximum_allocation == 4
    assert app.is_finished and not app.is_running


def test_total_work_scales_execution_time():
    env = Environment()
    app = RunningApplication(env, make_profile(), initial_allocation=2, total_work=0.5)
    run_to_completion(env, app)
    assert app.record.execution_time == pytest.approx(25.0)  # half of T(2)=50


def test_validation_of_constructor_arguments():
    env = Environment()
    profile = make_profile()
    with pytest.raises(ValueError):
        RunningApplication(env, profile, initial_allocation=0)
    with pytest.raises(ValueError):
        RunningApplication(env, profile, initial_allocation=2, adaptation_point_interval=-1)
    with pytest.raises(ValueError):
        RunningApplication(env, profile, initial_allocation=2, total_work=0)


def test_cannot_start_twice_or_reallocate_before_start():
    env = Environment()
    app = RunningApplication(env, make_profile(), initial_allocation=2)
    with pytest.raises(RuntimeError):
        app.set_allocation(4)
    app.start()
    with pytest.raises(RuntimeError):
        app.start()


# ---------------------------------------------------------------------------
# Grow / shrink behaviour
# ---------------------------------------------------------------------------


def test_growing_mid_run_shortens_execution():
    env = Environment()
    profile = make_profile()
    app = RunningApplication(env, profile, initial_allocation=2, adaptation_point_interval=0.0)
    app.start()

    def grower(env, app):
        yield env.timeout(25.0)  # half of the work done at T(2)=50
        yield app.set_allocation(10)

    env.process(grower(env, app))
    env.run(app.completed)
    # Remaining half of the work at 10 processors takes 5 seconds.
    assert app.record.execution_time == pytest.approx(30.0)
    assert app.record.maximum_allocation == 10
    assert app.record.grow_count == 1
    assert app.record.shrink_count == 0


def test_shrinking_mid_run_lengthens_execution():
    env = Environment()
    app = RunningApplication(env, make_profile(), initial_allocation=10, adaptation_point_interval=0.0)
    app.start()

    def shrinker(env, app):
        yield env.timeout(5.0)  # half done at T(10)=10
        yield app.set_allocation(2)

    env.process(shrinker(env, app))
    env.run(app.completed)
    assert app.record.execution_time == pytest.approx(30.0)
    assert app.record.shrink_count == 1


def test_reconfiguration_cost_pauses_progress():
    env = Environment()
    profile = make_profile(reconfig_cost=7.0)
    app = RunningApplication(env, profile, initial_allocation=2, adaptation_point_interval=0.0)
    app.start()

    def grower(env, app):
        yield env.timeout(25.0)
        yield app.set_allocation(10)

    env.process(grower(env, app))
    env.run(app.completed)
    # As before but with a 7-second pause during which no progress is made.
    assert app.record.execution_time == pytest.approx(37.0)
    assert app.record.reconfigurations[0].cost == pytest.approx(7.0)


def test_adaptation_point_wait_delays_the_switch():
    env = Environment()
    app = RunningApplication(env, make_profile(), initial_allocation=2, adaptation_point_interval=10.0)
    app.start()

    def grower(env, app):
        yield env.timeout(10.0)
        ack = app.set_allocation(4)
        yield ack
        return env.now

    grower_proc = env.process(grower(env, app))
    env.run(app.completed)
    # Without an RNG the wait is half the adaptation-point interval.
    assert grower_proc.value == pytest.approx(15.0)


def test_same_size_reallocation_acknowledged_immediately():
    env = Environment()
    app = RunningApplication(env, make_profile(), initial_allocation=4)
    app.start()
    ack = app.set_allocation(4)
    assert ack.triggered
    env.run(app.completed)
    assert app.record.reconfigurations == []


def test_reallocation_after_completion_is_a_no_op():
    env = Environment()
    app = RunningApplication(env, make_profile(), initial_allocation=4)
    run_to_completion(env, app)
    ack = app.set_allocation(8)
    assert ack.triggered
    assert ack.value == 4
    assert app.allocation == 4


def test_queued_reallocations_are_served_in_order():
    env = Environment()
    app = RunningApplication(env, make_profile(), initial_allocation=2, adaptation_point_interval=0.0)
    app.start()

    def driver(env, app):
        yield env.timeout(10.0)
        first = app.set_allocation(4)
        second = app.set_allocation(8)
        yield first & second
        return app.allocation

    driver_proc = env.process(driver(env, app))
    env.run(app.completed)
    assert driver_proc.value == 8
    assert [r.new_allocation for r in app.record.reconfigurations] == [4, 8]


def test_ft_profile_runs_and_records_submit_time():
    env = Environment()
    app = RunningApplication(env, ft_profile(), initial_allocation=2, job_id="ft-test")
    app.record.submit_time = 0.0
    run_to_completion(env, app)
    assert app.record.execution_time == pytest.approx(120.0)
    assert app.record.response_time == pytest.approx(120.0)
    assert app.record.wait_time == pytest.approx(0.0)


# ---------------------------------------------------------------------------
# Property-based invariants
# ---------------------------------------------------------------------------


@given(
    initial=st.integers(min_value=1, max_value=46),
    switches=st.lists(
        st.tuples(
            st.floats(min_value=1.0, max_value=120.0),
            st.integers(min_value=1, max_value=46),
        ),
        max_size=4,
    ),
)
@settings(max_examples=40, deadline=None)
def test_execution_time_bounded_by_best_and_worst_allocation(initial, switches):
    """However the allocation changes, the execution time stays between the
    all-time-best and all-time-worst fixed allocations (zero-cost reconfig)."""
    env = Environment()
    profile = gadget2_profile(reconfiguration=None).with_reconfiguration(NoReconfigurationCost())
    app = RunningApplication(env, profile, initial_allocation=initial, adaptation_point_interval=0.0)
    app.start()

    def driver(env, app, switches):
        for delay, size in switches:
            yield env.timeout(delay)
            if app.is_finished:
                return
            yield app.set_allocation(size)

    env.process(driver(env, app, switches))
    env.run(app.completed)

    sizes = [initial] + [size for _, size in switches]
    best = min(profile.execution_time(s) for s in sizes)
    worst = max(profile.execution_time(s) for s in sizes)
    assert best - 1e-6 <= app.record.execution_time <= worst + 1e-6


@given(
    initial=st.integers(min_value=1, max_value=32),
    growths=st.lists(st.integers(min_value=1, max_value=46), min_size=1, max_size=5),
)
@settings(max_examples=40, deadline=None)
def test_allocation_history_is_consistent(initial, growths):
    """The recorded allocation series always starts at the initial allocation
    and its maximum equals the largest allocation ever set."""
    env = Environment()
    profile = gadget2_profile().with_reconfiguration(NoReconfigurationCost())
    app = RunningApplication(env, profile, initial_allocation=initial, adaptation_point_interval=0.0)
    app.start()

    applied = [initial]

    def driver(env, app, growths):
        for size in growths:
            yield env.timeout(5.0)
            if app.is_finished:
                return
            got = yield app.set_allocation(size)
            applied.append(got)

    env.process(driver(env, app, growths))
    env.run(app.completed)
    series = app.record.allocation_series
    assert series.values[0] == initial
    assert app.record.maximum_allocation == max(applied)
