"""Unit tests of application profiles and the registry."""

from __future__ import annotations

import pytest

from repro.apps import (
    ApplicationProfile,
    ConstantReconfigurationCost,
    PowerLawSpeedup,
    ProfileRegistry,
    default_registry,
    ft_profile,
    gadget2_profile,
)


def test_ft_profile_matches_paper_description():
    ft = ft_profile()
    assert ft.name == "ft"
    # Power-of-two constraint: offered 13 extra on top of nothing -> 8.
    assert ft.accepted_size(13) == 8
    assert ft.accepted_size(32) == 32
    assert ft.accepted_size(0) == 0
    # Figure 6 anchors: ~2 minutes on 2 machines, ~1 minute at best.
    assert ft.execution_time(2) == pytest.approx(120.0)
    assert ft.execution_time(32) == pytest.approx(60.0)
    assert ft.default_minimum == 2
    assert ft.default_maximum == 32
    assert ft.malleable


def test_gadget2_profile_matches_paper_description():
    gadget = gadget2_profile()
    assert gadget.name == "gadget2"
    # GADGET-2 accepts any size thanks to its internal load balancer.
    assert gadget.accepted_size(13) == 13
    assert gadget.execution_time(2) == pytest.approx(600.0)
    assert gadget.execution_time(46) == pytest.approx(240.0)
    assert gadget.default_maximum == 46


def test_profile_as_rigid_round_trip():
    ft = ft_profile()
    rigid = ft.as_rigid()
    assert not rigid.malleable
    assert ft.malleable  # original untouched (frozen dataclass)
    assert rigid.speedup is ft.speedup


def test_profile_with_reconfiguration_override():
    profile = gadget2_profile().with_reconfiguration(ConstantReconfigurationCost(7.0))
    assert profile.reconfiguration.cost(2, 10) == 7.0


def test_profile_validation():
    with pytest.raises(ValueError):
        ApplicationProfile(name="", speedup=PowerLawSpeedup(10.0))
    with pytest.raises(ValueError):
        ApplicationProfile(name="x", speedup=PowerLawSpeedup(10.0), default_minimum=0)
    with pytest.raises(ValueError):
        ApplicationProfile(
            name="x", speedup=PowerLawSpeedup(10.0), default_minimum=8, default_maximum=4
        )


def test_registry_lookup_and_errors():
    registry = default_registry()
    assert "ft" in registry
    assert "gadget2" in registry
    assert registry.get("ft").name == "ft"
    assert registry["gadget2"].name == "gadget2"
    assert len(registry) == 2
    assert sorted(registry) == ["ft", "gadget2"]
    with pytest.raises(KeyError):
        registry.get("does-not-exist")


def test_registry_rejects_duplicate_registration():
    registry = ProfileRegistry()
    registry.register(ft_profile())
    with pytest.raises(KeyError):
        registry.register(ft_profile())
    registry.register(ft_profile(), overwrite=True)  # explicit overwrite is fine


def test_registry_factory_is_lazy_and_cached():
    calls = []

    def factory():
        calls.append(1)
        return gadget2_profile()

    registry = ProfileRegistry()
    registry.register_factory("lazy", factory)
    assert not calls
    first = registry.get("lazy")
    second = registry.get("lazy")
    assert first is second
    assert len(calls) == 1
