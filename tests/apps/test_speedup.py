"""Unit and property tests of the speedup models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import AmdahlSpeedup, DowneySpeedup, PowerLawSpeedup, TabulatedSpeedup
from repro.apps.profiles import FT_SCALING_POINTS, GADGET2_SCALING_POINTS


# ---------------------------------------------------------------------------
# Amdahl
# ---------------------------------------------------------------------------


def test_amdahl_sequential_time_and_asymptote():
    model = AmdahlSpeedup(sequential_time=100.0, serial_fraction=0.1)
    assert model.execution_time(1) == pytest.approx(100.0)
    # With 10% serial work, the execution time can never drop below 10s.
    assert model.execution_time(10_000) == pytest.approx(10.0, rel=1e-2)
    assert model.speedup(1) == pytest.approx(1.0)


def test_amdahl_overhead_creates_a_minimum():
    model = AmdahlSpeedup(sequential_time=100.0, serial_fraction=0.05, overhead_per_processor=1.0)
    best = model.best_size(64)
    # Past the optimum, adding processors makes things worse.
    assert model.execution_time(best) < model.execution_time(64)
    assert 1 < best < 64


def test_amdahl_validation():
    with pytest.raises(ValueError):
        AmdahlSpeedup(sequential_time=0, serial_fraction=0.1)
    with pytest.raises(ValueError):
        AmdahlSpeedup(sequential_time=10, serial_fraction=1.5)
    with pytest.raises(ValueError):
        AmdahlSpeedup(sequential_time=10, serial_fraction=0.5, overhead_per_processor=-1)


# ---------------------------------------------------------------------------
# Downey
# ---------------------------------------------------------------------------


def test_downey_speedup_caps_at_average_parallelism():
    model = DowneySpeedup(sequential_time=1000.0, average_parallelism=16.0, sigma=0.5)
    assert model.speedup(1) == pytest.approx(1.0)
    assert model.speedup(1000) == pytest.approx(16.0)


def test_downey_high_variance_regime():
    model = DowneySpeedup(sequential_time=1000.0, average_parallelism=8.0, sigma=2.0)
    assert model.speedup(4) <= 4.0
    assert model.speedup(1000) == pytest.approx(8.0)


def test_downey_validation():
    with pytest.raises(ValueError):
        DowneySpeedup(sequential_time=10, average_parallelism=0.5, sigma=1.0)
    with pytest.raises(ValueError):
        DowneySpeedup(sequential_time=10, average_parallelism=4, sigma=-1)


# ---------------------------------------------------------------------------
# Power law and tabulated
# ---------------------------------------------------------------------------


def test_power_law_perfect_scaling_at_alpha_one():
    model = PowerLawSpeedup(sequential_time=100.0, alpha=1.0)
    assert model.execution_time(4) == pytest.approx(25.0)
    assert model.speedup(8) == pytest.approx(8.0)


def test_tabulated_interpolates_and_extrapolates():
    model = TabulatedSpeedup([(2, 120.0), (8, 70.0), (32, 60.0)])
    assert model.execution_time(2) == pytest.approx(120.0)
    assert model.execution_time(8) == pytest.approx(70.0)
    # Between measured points the time lies between the neighbours.
    assert 70.0 < model.execution_time(4) < 120.0
    # Beyond the last point the curve is flat (extra processors are wasted).
    assert model.execution_time(64) == pytest.approx(60.0)
    # Below the first point, assume linear slowdown.
    assert model.execution_time(1) == pytest.approx(240.0)


def test_tabulated_requires_points():
    with pytest.raises(ValueError):
        TabulatedSpeedup([])
    with pytest.raises(ValueError):
        TabulatedSpeedup([(0, 50.0)])
    with pytest.raises(ValueError):
        TabulatedSpeedup([(2, -1.0)])


def test_calibration_matches_figure6_anchor_points():
    """The calibrated profiles hit the execution times quoted in the paper."""
    ft = TabulatedSpeedup(FT_SCALING_POINTS)
    gadget = TabulatedSpeedup(GADGET2_SCALING_POINTS)
    # "With 2 processors, GADGET 2 takes 10 minutes, while FT lasts 2 minutes."
    assert ft.execution_time(2) == pytest.approx(120.0)
    assert gadget.execution_time(2) == pytest.approx(600.0)
    # "The best execution times are respectively 4 minutes for GADGET 2 and
    #  1 minute for FT."
    assert ft.execution_time(32) == pytest.approx(60.0)
    assert gadget.execution_time(46) == pytest.approx(240.0)


# ---------------------------------------------------------------------------
# Property-based invariants shared by all models
# ---------------------------------------------------------------------------

MODELS = [
    AmdahlSpeedup(sequential_time=500.0, serial_fraction=0.08),
    DowneySpeedup(sequential_time=500.0, average_parallelism=24.0, sigma=0.8),
    PowerLawSpeedup(sequential_time=500.0, alpha=0.85),
    TabulatedSpeedup(GADGET2_SCALING_POINTS),
]


@pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
@given(n=st.integers(min_value=1, max_value=128))
@settings(max_examples=40, deadline=None)
def test_execution_time_positive_and_speedup_bounded(model, n):
    """T(n) > 0 and 1 <= speedup(n) <= n for every model and size."""
    assert model.execution_time(n) > 0
    assert model.speedup(n) >= 1.0 - 1e-9
    assert model.speedup(n) <= n + 1e-9


@pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
@given(n=st.integers(min_value=1, max_value=127))
@settings(max_examples=40, deadline=None)
def test_execution_time_never_increases_with_more_processors(model, n):
    """All calibrated models are monotone: more processors never slow the job."""
    assert model.execution_time(n + 1) <= model.execution_time(n) + 1e-9


@pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
def test_work_rate_is_inverse_of_execution_time(model):
    for n in (1, 2, 7, 32):
        assert model.work_rate(n) == pytest.approx(1.0 / model.execution_time(n))


@pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
def test_rejects_non_positive_processor_counts(model):
    with pytest.raises(ValueError):
        model.execution_time(0)
    with pytest.raises(ValueError):
        model.efficiency(-3)
