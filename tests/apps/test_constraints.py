"""Unit and property tests of the application size constraints."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import AnySize, CompositeConstraint, MultipleOf, PowerOfTwo, RangeConstraint
from repro.apps.constraints import ExplicitSizes


def test_any_size_accepts_everything_positive():
    constraint = AnySize()
    assert constraint.is_acceptable(1)
    assert constraint.is_acceptable(97)
    assert not constraint.is_acceptable(0)
    assert constraint.largest_acceptable(13) == 13
    assert constraint.largest_acceptable(0) == 0


def test_power_of_two_matches_ft_behaviour():
    constraint = PowerOfTwo()
    assert [n for n in range(1, 20) if constraint.is_acceptable(n)] == [1, 2, 4, 8, 16]
    # "the FT application accepts only the highest power of 2 processors that
    #  does not exceed the allocated number"
    assert constraint.largest_acceptable(13) == 8
    assert constraint.largest_acceptable(32) == 32
    assert constraint.largest_acceptable(1) == 1
    assert constraint.largest_acceptable(0) == 0


def test_multiple_of_constraint():
    constraint = MultipleOf(4)
    assert constraint.is_acceptable(8)
    assert not constraint.is_acceptable(10)
    assert constraint.largest_acceptable(11) == 8
    assert constraint.largest_acceptable(3) == 0
    with pytest.raises(ValueError):
        MultipleOf(0)


def test_range_constraint_combines_bounds_and_inner():
    constraint = RangeConstraint(2, 32, inner=PowerOfTwo())
    assert constraint.is_acceptable(16)
    assert not constraint.is_acceptable(1)  # below minimum
    assert not constraint.is_acceptable(64)  # above maximum
    assert not constraint.is_acceptable(12)  # inner rejects
    assert constraint.largest_acceptable(100) == 32
    assert constraint.largest_acceptable(1) == 0
    with pytest.raises(ValueError):
        RangeConstraint(4, 2)


def test_explicit_sizes():
    constraint = ExplicitSizes([3, 6, 12])
    assert constraint.is_acceptable(6)
    assert not constraint.is_acceptable(5)
    assert constraint.largest_acceptable(11) == 6
    assert constraint.largest_acceptable(2) == 0
    with pytest.raises(ValueError):
        ExplicitSizes([])


def test_composite_requires_all_members_to_accept():
    constraint = CompositeConstraint([PowerOfTwo(), MultipleOf(4)])
    assert constraint.is_acceptable(8)
    assert not constraint.is_acceptable(2)  # multiple-of-4 rejects
    assert not constraint.is_acceptable(12)  # power-of-two rejects
    assert constraint.largest_acceptable(30) == 16
    with pytest.raises(ValueError):
        CompositeConstraint([])


def test_smallest_acceptable():
    assert PowerOfTwo().smallest_acceptable(9) == 16
    assert MultipleOf(5).smallest_acceptable(11) == 15
    assert AnySize().smallest_acceptable(7) == 7


CONSTRAINTS = [
    AnySize(),
    PowerOfTwo(),
    MultipleOf(3),
    RangeConstraint(2, 40, inner=PowerOfTwo()),
    ExplicitSizes([2, 5, 9, 21]),
]


@pytest.mark.parametrize("constraint", CONSTRAINTS, ids=lambda c: repr(c))
@given(offered=st.integers(min_value=0, max_value=200))
@settings(max_examples=60, deadline=None)
def test_largest_acceptable_is_acceptable_and_maximal(constraint, offered):
    """largest_acceptable(n) is acceptable, <= n, and no acceptable size in
    (largest, n] exists — the exact property the grow/shrink protocol needs."""
    largest = constraint.largest_acceptable(offered)
    assert largest <= max(offered, 0)
    if largest > 0:
        assert constraint.is_acceptable(largest)
    for candidate in range(largest + 1, min(offered, largest + 50) + 1):
        assert not constraint.is_acceptable(candidate)
