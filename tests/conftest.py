"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.apps import ft_profile, gadget2_profile
from repro.cluster import Multicluster, das3_multicluster
from repro.sim import Environment, RandomStreams


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def streams() -> RandomStreams:
    """Deterministic random streams for tests."""
    return RandomStreams(seed=1234)


@pytest.fixture
def ft():
    """The calibrated NAS FT application profile."""
    return ft_profile()


@pytest.fixture
def gadget2():
    """The calibrated GADGET-2 application profile."""
    return gadget2_profile()


@pytest.fixture
def das3(env, streams) -> Multicluster:
    """The five-cluster DAS-3 system of Table I, without background load."""
    return das3_multicluster(env, streams=streams)


@pytest.fixture
def small_system(env, streams) -> Multicluster:
    """A small two-cluster system for fast, tightly controlled tests."""
    multicluster = Multicluster(env, streams=streams, gram_submission_latency=1.0)
    multicluster.add_cluster("alpha", 32)
    multicluster.add_cluster("beta", 16)
    return multicluster
