"""A policy in a single new file plugs into every surface without edits.

This is the acceptance test of the policy-API redesign: registering a policy
with one ``@register`` decorator — no changes to the scheduler, manager or
CLI — makes it listable by ``repro-cli list-policies``, constructible with
parameters from a :class:`~repro.experiments.scenarios.ScenarioSpec` and
runnable end-to-end.
"""

from __future__ import annotations

import os
import textwrap

import pytest

from repro.experiments.cli import main
from repro.experiments.scenarios import ScenarioSpec, policy_variants
from repro.experiments.setup import ExperimentConfig, run_experiment
from repro.koala.placement import PlacementPolicy, WorstFit
from repro.policies import names, register
from repro.policies.registry import _ALIASES, _REGISTRY


@pytest.fixture
def scratch_registration():
    before_registry = dict(_REGISTRY)
    before_aliases = dict(_ALIASES)
    yield
    _REGISTRY.clear()
    _REGISTRY.update(before_registry)
    _ALIASES.clear()
    _ALIASES.update(before_aliases)


CUSTOM_POLICY_SOURCE = textwrap.dedent(
    '''
    """A user-supplied placement policy living outside the repro package."""

    from repro.koala.placement import WorstFit
    from repro.policies import register


    @register("placement", "FIRSTFIT")
    class FirstFit(WorstFit):
        """Place components on the first cluster that fits (alphabetical)."""

        name = "FIRSTFIT"

        def __init__(self, reverse: bool = False) -> None:
            self.reverse = reverse

        def place(self, job, idle_processors, multicluster):
            ordered = sorted(idle_processors, reverse=self.reverse)
            view = {name: idle_processors[name] for name in ordered}
            return super().place(job, view, multicluster)
    '''
)


def test_single_file_policy_reaches_every_surface(
    tmp_path, capsys, scratch_registration
):
    module_path = tmp_path / "my_policies.py"
    module_path.write_text(CUSTOM_POLICY_SOURCE, encoding="utf-8")

    # Listable through the CLI, loaded from the file, no repo edits.
    exit_code = main(["--policy-module", str(module_path), "list-policies"])
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "FIRSTFIT" in output
    assert "reverse=False" in output
    assert names("placement") == ("CF", "CM", "EASY", "FCM", "FIRSTFIT", "SJF", "WF")

    # Constructible with parameters from a scenario spec.
    spec = ScenarioSpec(
        name="custom-sweep",
        title="user policy sweep",
        base={"workload": "Wm", "malleability_policy": None},
        variants=policy_variants(
            "placement_policy",
            ("FIRSTFIT", "FIRSTFIT?reverse=True"),
            scenario="custom-sweep",
        ),
        default_job_count=2,
    )
    pairs = spec.expand(overrides={"background_fraction": 0.0})
    assert [config.placement_policy for _, config in pairs] == [
        "FIRSTFIT",
        "FIRSTFIT?reverse=True",
    ]

    # Runs end-to-end.
    result = run_experiment(pairs[1][1])
    assert result.all_done


def test_in_process_registration_is_enough(scratch_registration):
    @register("placement", "NOOPFIT")
    class NoopFit(WorstFit):
        """Worst-Fit under a different name."""

        name = "NOOPFIT"

    config = ExperimentConfig(
        placement_policy="NOOPFIT",
        malleability_policy=None,
        job_count=2,
        background_fraction=0.0,
    )
    assert config.placement_policy == "NOOPFIT"
    assert isinstance(NoopFit(), PlacementPolicy)
    result = run_experiment(config)
    assert result.all_done


def test_policy_module_flag_is_idempotent(tmp_path, capsys, scratch_registration, monkeypatch):
    from repro.policies.registry import POLICY_MODULES_ENV

    monkeypatch.delenv(POLICY_MODULES_ENV, raising=False)
    module_path = tmp_path / "repeat_policies.py"
    module_path.write_text(CUSTOM_POLICY_SOURCE, encoding="utf-8")
    argv = ["--policy-module", str(module_path), "--policy-module", str(module_path)]
    assert main(argv + ["list-policies"]) == 0
    assert "FIRSTFIT" in capsys.readouterr().out
    # The module reference is exported (once) for sweep worker processes.
    assert os.environ[POLICY_MODULES_ENV].split(os.pathsep).count(
        str(module_path.resolve())
    ) == 1
    # A second invocation in the same process must not re-execute the module.
    assert main(argv + ["list-policies"]) == 0
    assert "FIRSTFIT" in capsys.readouterr().out


def test_policy_file_with_stdlib_stem_still_loads(tmp_path, capsys, scratch_registration, monkeypatch):
    from repro.policies.registry import POLICY_MODULES_ENV

    monkeypatch.delenv(POLICY_MODULES_ENV, raising=False)
    # 'json' is already imported by the CLI; the file must load anyway and
    # must not shadow the real module.
    module_path = tmp_path / "json.py"
    module_path.write_text(CUSTOM_POLICY_SOURCE, encoding="utf-8")
    assert main(["--policy-module", str(module_path), "list-policies"]) == 0
    assert "FIRSTFIT" in capsys.readouterr().out
    import json as real_json

    assert hasattr(real_json, "dumps")


def test_broken_policy_module_reports_cli_error(tmp_path, capsys, scratch_registration):
    module_path = tmp_path / "broken_policies.py"
    module_path.write_text("raise ValueError('boom at import')\n", encoding="utf-8")
    with pytest.raises(SystemExit):
        main(["--policy-module", str(module_path), "list-policies"])
    assert "cannot import policy module" in capsys.readouterr().err
