"""Tests of the SJF placement policy (wagomu's ``rigid_shortest_job_first``).

The ft profile's execution time falls with allocation, so a job requesting
*more* processors is the *shorter* job — which makes the SJF-vs-FCFS
inversions below easy to stage: submit the long small job first and watch
the short big one overtake it (or not, under Worst-Fit).
"""

from __future__ import annotations

import json

from repro.apps import ft_profile
from repro.cluster import Multicluster
from repro.experiments.engine import result_to_record, run_configs
from repro.experiments.setup import ExperimentConfig
from repro.koala import Job, JobState, KoalaScheduler, SchedulerConfig
from repro.koala.placement import WorstFit
from repro.policies.sjf import ShortestJobFirst
from repro.sim import RandomStreams


def build_scheduler(env, *, placement="SJF", cluster_size=10):
    streams = RandomStreams(seed=7)
    system = Multicluster(env, streams=streams, gram_submission_latency=1.0)
    system.add_cluster("alpha", cluster_size)
    scheduler = KoalaScheduler(
        env,
        system,
        SchedulerConfig(
            placement_policy=placement,
            malleability_policy=None,
            poll_interval=10.0,
        ),
        streams=streams,
    )
    return system, scheduler


def rigid(name, processors):
    return Job.rigid(ft_profile().as_rigid(), processors=processors, name=name)


def test_sjf_standalone_equals_worst_fit():
    policy = ShortestJobFirst()
    job = rigid("solo", 4)
    idle = {"alpha": 10, "beta": 6}
    decision = policy.place(job, idle, multicluster=None)
    reference = WorstFit().place(job, idle, multicluster=None)
    assert decision.placements == reference.placements


def test_sjf_estimates_fall_with_requested_processors():
    assert ShortestJobFirst._estimated_runtime(rigid("big", 8)) < (
        ShortestJobFirst._estimated_runtime(rigid("small", 2))
    )


def test_sjf_lets_the_shorter_job_overtake_fcfs_order(env):
    # Both jobs wait behind a full machine; the short one (8 procs) was
    # submitted after the long one (6 procs) but must start first, and once
    # it holds 8 of 10 processors the long job cannot fit until it ends.
    _, scheduler = build_scheduler(env, placement="SJF")
    blocker = rigid("blocker", 10)
    scheduler.submit(blocker)
    env.run(until=30)
    assert blocker.state is JobState.RUNNING

    long_job = rigid("long", 6)
    short_job = rigid("short", 8)
    scheduler.submit(long_job)
    scheduler.submit(short_job)
    env.run(until=30_000)
    assert scheduler.all_done
    short_record = scheduler.records[short_job.job_id]
    long_record = scheduler.records[long_job.job_id]
    # The inversion: submitted second, started first — and the long job
    # could not squeeze in beside it (8 + 6 > 10), so it waited for the
    # short job to finish entirely.
    assert short_record.start_time < long_record.start_time
    assert long_record.start_time >= short_record.finish_time


def test_worst_fit_serves_the_same_queue_fcfs(env):
    # Control: under WF the long job keeps its FCFS turn and the short one
    # (which no longer fits behind it) waits.
    _, scheduler = build_scheduler(env, placement="WF")
    blocker = rigid("blocker", 10)
    scheduler.submit(blocker)
    env.run(until=30)

    long_job = rigid("long", 6)
    short_job = rigid("short", 8)
    scheduler.submit(long_job)
    scheduler.submit(short_job)
    env.run(until=30_000)
    assert scheduler.all_done
    assert scheduler.records[long_job.job_id].start_time < (
        scheduler.records[short_job.job_id].start_time
    )


def test_greedy_sjf_starts_a_longer_job_the_short_one_cannot_use(env):
    # 2 idle processors: the short job (8 procs) cannot be placed, so the
    # greedy default lets the long 2-processor job start instead of idling.
    _, scheduler = build_scheduler(env, placement="SJF")
    running = rigid("running", 8)
    scheduler.submit(running)
    env.run(until=30)
    assert running.state is JobState.RUNNING

    short_job = rigid("short", 8)
    long_job = rigid("long", 2)
    scheduler.submit(short_job)
    scheduler.submit(long_job)
    env.run(until=60)  # the 8-proc blocker runs until ~t=72
    assert long_job.state is JobState.RUNNING
    assert short_job.state is JobState.QUEUED
    env.run(until=30_000)
    assert scheduler.all_done


def test_strict_sjf_never_overtakes_a_shorter_waiting_job(env):
    # Same setup, strict=True: the long job must idle the 2 processors
    # while the shorter (but unplaceable) job waits its turn.
    _, scheduler = build_scheduler(env, placement="SJF?strict=True")
    running = rigid("running", 8)
    scheduler.submit(running)
    env.run(until=30)

    short_job = rigid("short", 8)
    long_job = rigid("long", 2)
    scheduler.submit(short_job)
    scheduler.submit(long_job)
    env.run(until=60)  # the 8-proc blocker runs until ~t=72
    assert long_job.state is JobState.QUEUED
    assert short_job.state is JobState.QUEUED
    # Once the blocker ends, 10 processors fit both jobs in the same
    # management round, so no overtaking question remains — just check the
    # system drains.
    env.run(until=30_000)
    assert scheduler.all_done


def test_sjf_deferrals_do_not_burn_placement_retries(env):
    # Strict mode holds the long job purely because a shorter one waits —
    # a deferral, not a capacity failure, so its retry counter must stay
    # untouched while it waits (the short job, failing on real capacity,
    # does accumulate tries).
    _, scheduler = build_scheduler(env, placement="SJF?strict=True")
    running = rigid("running", 8)
    scheduler.submit(running)
    env.run(until=30)
    short_job = rigid("short", 8)
    long_job = rigid("long", 2)
    scheduler.submit(short_job)
    scheduler.submit(long_job)
    env.run(until=60)  # the 8-proc blocker runs until ~t=72
    assert long_job.state is JobState.QUEUED
    assert long_job.placement_tries == 0
    assert short_job.placement_tries > 0


def test_sjf_sweep_is_serial_parallel_byte_identical(tmp_path):
    configs = [
        ExperimentConfig(
            name=f"sjf-{seed}",
            workload="Wm",
            job_count=8,
            malleability_policy=None,
            placement_policy="SJF",
            seed=seed,
        )
        for seed in (0, 1)
    ]
    serial = run_configs(configs, jobs=1, cache=None)
    parallel = run_configs(configs, jobs=2, cache=None)
    for one, two in zip(serial, parallel):
        assert json.dumps(result_to_record(one), sort_keys=True) == (
            json.dumps(result_to_record(two), sort_keys=True)
        )
