"""Every registered policy combination constructs and survives a smoke run.

This is the registry's contract test: whatever is registered — including
policies added later in single new files — must be constructible by name from
a configuration and must complete a tiny experiment under every
(placement x approach x malleability) combination.
"""

from __future__ import annotations

import pytest

from repro.experiments.setup import ExperimentConfig, run_experiment
from repro.koala.placement import PlacementPolicy
from repro.malleability.manager import JobManagementApproach
from repro.malleability.policies import MalleabilityPolicy
from repro.policies import build_policy, names

PLACEMENTS = names("placement")
APPROACHES = names("approach")
MALLEABILITY = names("malleability") + (None,)


def test_every_registered_policy_constructs_by_name():
    for name in PLACEMENTS:
        assert isinstance(build_policy("placement", name), PlacementPolicy)
    for name in names("malleability"):
        assert isinstance(build_policy("malleability", name), MalleabilityPolicy)
    for name in APPROACHES:
        assert isinstance(build_policy("approach", name), JobManagementApproach)


def test_every_combination_builds_a_valid_config():
    for placement in PLACEMENTS:
        for approach in APPROACHES:
            for malleability in MALLEABILITY:
                config = ExperimentConfig(
                    placement_policy=placement,
                    approach=approach,
                    malleability_policy=malleability,
                )
                assert config.placement_policy == placement
                assert config.approach == approach


@pytest.mark.parametrize("placement", PLACEMENTS)
@pytest.mark.parametrize("approach", APPROACHES)
@pytest.mark.parametrize("malleability", MALLEABILITY)
def test_combination_smoke_experiment(placement, approach, malleability):
    config = ExperimentConfig(
        name=f"combo-{placement}-{approach}-{malleability}",
        workload="Wm",
        job_count=2,
        placement_policy=placement,
        approach=approach,
        malleability_policy=malleability,
        background_fraction=0.0,
        seed=0,
    )
    result = run_experiment(config)
    assert result.all_done, (
        f"combination {placement}/{approach}/{malleability} did not finish"
    )
    assert result.metrics.job_count == 2
