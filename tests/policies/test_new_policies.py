"""Tests of the two policies shipped with the unified policy API.

* ``AVERAGE_STEAL`` — the ElastiSim-style fair-share malleability policy;
* ``EASY`` — the FCFS + EASY-backfilling placement policy (the first
  hook-driven policy).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from types import SimpleNamespace

import pytest

from repro.apps import ft_profile
from repro.cluster import Multicluster
from repro.experiments.engine import result_to_record, run_configs
from repro.experiments.setup import ExperimentConfig, run_experiment
from repro.koala import Job, JobState, KoalaScheduler, SchedulerConfig
from repro.koala.placement import WorstFit
from repro.policies.average_steal import AverageSteal
from repro.policies.backfilling import EasyBackfilling
from repro.sim import RandomStreams


# ---------------------------------------------------------------------------
# AverageSteal planning
# ---------------------------------------------------------------------------


@dataclass
class FakeRunner:
    """Stand-in malleable job view with explicit size bounds."""

    name: str
    start_time: float
    current_allocation: int
    minimum: int = 2
    maximum: int = 46
    reconfiguring: bool = False
    job: SimpleNamespace = field(init=False)

    def __post_init__(self):
        self.job = SimpleNamespace(
            minimum_processors=self.minimum, maximum_processors=self.maximum
        )

    def preview_grow(self, offered: int) -> int:
        return max(0, min(self.current_allocation + offered, self.maximum) - self.current_allocation)

    def preview_shrink(self, requested: int) -> int:
        return max(0, self.current_allocation - max(self.current_allocation - requested, self.minimum))


def test_average_steal_grows_emptiest_fraction_first():
    # small is at 25% of its range, big at 75%: the growth goes to small.
    small = FakeRunner("small", 10.0, current_allocation=3, minimum=2, maximum=6)
    big = FakeRunner("big", 20.0, current_allocation=5, minimum=2, maximum=6)
    plan = AverageSteal().plan_grow([big, small], grow_value=2)
    amounts = {d.runner.name: d.offered for d in plan}
    assert amounts == {"small": 2}


def test_average_steal_balances_towards_equal_fill():
    a = FakeRunner("a", 10.0, current_allocation=2, minimum=2, maximum=10)
    b = FakeRunner("b", 20.0, current_allocation=6, minimum=2, maximum=10)
    plan = AverageSteal().plan_grow([a, b], grow_value=4)
    amounts = {d.runner.name: d.offered for d in plan}
    # a (fill 0) takes processors until it catches up with b (fill 0.5).
    assert amounts == {"a": 4}


def test_average_steal_shrinks_fullest_first():
    full = FakeRunner("full", 10.0, current_allocation=9, minimum=2, maximum=10)
    empty = FakeRunner("empty", 20.0, current_allocation=3, minimum=2, maximum=10)
    plan = AverageSteal().plan_shrink([empty, full], shrink_value=3)
    amounts = {d.runner.name: d.requested for d in plan}
    assert amounts == {"full": 3}


def test_average_steal_absolute_mode_uses_raw_allocation():
    # In fraction mode wide takes priority (lower fill); in absolute mode
    # narrow does (smaller allocation).
    wide = FakeRunner("wide", 10.0, current_allocation=4, minimum=2, maximum=46)
    narrow = FakeRunner("narrow", 20.0, current_allocation=3, minimum=2, maximum=4)
    by_fraction = AverageSteal(balance="fraction").plan_grow([wide, narrow], 1)
    assert by_fraction[0].runner.name == "wide"
    by_absolute = AverageSteal(balance="absolute").plan_grow([wide, narrow], 1)
    assert by_absolute[0].runner.name == "narrow"


def test_average_steal_respects_reconfiguring_and_bounds():
    busy = FakeRunner("busy", 10.0, current_allocation=2, reconfiguring=True)
    capped = FakeRunner("capped", 20.0, current_allocation=6, minimum=2, maximum=6)
    assert AverageSteal().plan_grow([busy, capped], grow_value=5) == []
    at_minimum = FakeRunner("atmin", 30.0, current_allocation=2, minimum=2)
    assert AverageSteal().plan_shrink([busy, at_minimum], shrink_value=5) == []


def test_average_steal_rejects_unknown_balance_mode():
    with pytest.raises(ValueError, match="balance"):
        AverageSteal(balance="chaotic")


# ---------------------------------------------------------------------------
# EasyBackfilling
# ---------------------------------------------------------------------------


def build_scheduler(env, *, placement="EASY", cluster_size=10):
    streams = RandomStreams(seed=11)
    system = Multicluster(env, streams=streams, gram_submission_latency=1.0)
    system.add_cluster("alpha", cluster_size)
    scheduler = KoalaScheduler(
        env,
        system,
        SchedulerConfig(
            placement_policy=placement,
            malleability_policy=None,
            poll_interval=10.0,
        ),
        streams=streams,
    )
    return system, scheduler


def rigid(name, processors):
    return Job.rigid(ft_profile().as_rigid(), processors=processors, name=name)


def test_easy_standalone_equals_worst_fit():
    policy = EasyBackfilling()
    job = rigid("solo", 4)
    idle = {"alpha": 10, "beta": 6}
    decision = policy.place(job, idle, multicluster=None)
    reference = WorstFit().place(job, idle, multicluster=None)
    assert decision.placements == reference.placements


def test_easy_denies_backfill_that_would_delay_the_head(env):
    _, scheduler = build_scheduler(env, placement="EASY")
    running = rigid("running", 6)
    scheduler.submit(running)
    env.run(until=30)
    assert running.state is JobState.RUNNING

    head = rigid("head", 8)  # does not fit: only 4 idle
    candidate = rigid("candidate", 4)  # fits, but same profile => outlives head's shadow
    scheduler.submit(head)
    scheduler.submit(candidate)
    env.run(until=60)
    # EASY refuses to start the candidate ahead of the reserved head.
    assert head.state is JobState.QUEUED
    assert candidate.state is JobState.QUEUED

    env.run(until=6000)
    assert scheduler.all_done
    # FCFS order is preserved: the head started no later than the candidate.
    assert scheduler.records[head.job_id].start_time <= (
        scheduler.records[candidate.job_id].start_time
    )


def test_worst_fit_lets_the_same_candidate_jump_the_head(env):
    _, scheduler = build_scheduler(env, placement="WF")
    running = rigid("running", 6)
    scheduler.submit(running)
    env.run(until=30)

    head = rigid("head", 8)
    candidate = rigid("candidate", 4)
    scheduler.submit(head)
    scheduler.submit(candidate)
    env.run(until=60)
    # Worst-Fit places anything that fits, out of order.
    assert candidate.state is JobState.RUNNING
    assert head.state is JobState.QUEUED
    env.run(until=6000)
    assert scheduler.all_done
    assert scheduler.records[candidate.job_id].start_time < (
        scheduler.records[head.job_id].start_time
    )


def test_easy_allows_backfill_into_spare_processors(env):
    # Cluster of 12: running job takes 6, head needs 8. At the head's shadow
    # start 12 processors are free, leaving 4 spare — a 2-processor candidate
    # backfills immediately without delaying the head.
    _, scheduler = build_scheduler(env, placement="EASY", cluster_size=12)
    running = rigid("running", 6)
    scheduler.submit(running)
    env.run(until=30)

    head = rigid("head", 8)
    candidate = rigid("candidate", 2)
    scheduler.submit(head)
    scheduler.submit(candidate)
    env.run(until=60)
    assert candidate.state is JobState.RUNNING
    assert head.state is JobState.QUEUED
    env.run(until=8000)
    assert scheduler.all_done


def test_easy_parameters_validated():
    with pytest.raises(ValueError):
        EasyBackfilling(reserve_depth=0)
    with pytest.raises(ValueError):
        EasyBackfilling(runtime_margin=0.0)


# ---------------------------------------------------------------------------
# End-to-end: smoke runs and deterministic sweeps
# ---------------------------------------------------------------------------


def smoke_config(**overrides):
    defaults = dict(
        name="new-policy-smoke",
        workload="Wm",
        job_count=4,
        background_fraction=0.0,
        seed=2,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def test_new_policies_complete_smoke_experiments():
    for overrides in (
        {"placement_policy": "EASY"},
        {"placement_policy": "EASY?reserve_depth=2"},
        {"malleability_policy": "AVERAGE_STEAL"},
        {"malleability_policy": "AVERAGE_STEAL?balance='absolute'"},
    ):
        result = run_experiment(smoke_config(**overrides))
        assert result.all_done
        assert result.metrics.job_count == 4


def test_new_policy_sweeps_are_serial_parallel_byte_identical():
    configs = [
        smoke_config(placement_policy="EASY", seed=3),
        smoke_config(malleability_policy="AVERAGE_STEAL", seed=3),
        smoke_config(malleability_policy="AVERAGE_STEAL?balance='absolute'", seed=3),
    ]
    serial = run_configs(configs, jobs=1, cache=None)
    parallel = run_configs(configs, jobs=2, cache=None)
    for left, right in zip(serial, parallel):
        left_json = json.dumps(result_to_record(left), sort_keys=True)
        right_json = json.dumps(result_to_record(right), sort_keys=True)
        assert left_json == right_json


def test_easy_holds_do_not_consume_placement_retries(env):
    # A backfill candidate held back to protect the head's reservation is a
    # deferral: its try counter must not move, while the head's genuine
    # capacity failures still count.
    _, scheduler = build_scheduler(env, placement="EASY")
    scheduler.submit(rigid("running", 6))
    env.run(until=30)
    head = rigid("head", 8)  # capacity failure: only 4 idle
    candidate = rigid("candidate", 4)  # fits, but held back by the reservation
    scheduler.submit(head)
    scheduler.submit(candidate)
    # Several polls pass; each one would burn a candidate retry if holds
    # counted as failures.
    env.run(until=60)
    assert candidate.state is JobState.QUEUED
    tries = {entry.job.name: entry.tries for entry in scheduler.queue}
    assert tries["head"] > 0
    assert tries["candidate"] == 0
    assert candidate.placement_tries == 0
    env.run(until=6000)
    assert scheduler.all_done
    assert not scheduler.failed


def test_easy_deeper_reservations_still_protect_earlier_heads(env):
    # With reserve_depth=2 the second reserved head must still defer to the
    # first: deeper reservations never make backfilling *more* aggressive.
    _, scheduler = build_scheduler(env, placement="EASY?reserve_depth=2")
    scheduler.submit(rigid("running", 6))
    env.run(until=30)
    first = rigid("first", 8)  # does not fit (4 idle)
    second = rigid("second", 4)  # fits, reserved too, but behind first
    scheduler.submit(first)
    scheduler.submit(second)
    env.run(until=60)
    assert first.state is JobState.QUEUED
    assert second.state is JobState.QUEUED
    env.run(until=6000)
    assert scheduler.all_done
    assert scheduler.records[first.job_id].start_time <= (
        scheduler.records[second.job_id].start_time
    )
