"""Tests of the unified policy registry and the PolicySpec parser."""

from __future__ import annotations

import pytest

from repro.experiments.setup import ExperimentConfig
from repro.koala.placement import CloseToFiles, WorstFit
from repro.koala.scheduler import SchedulerConfig
from repro.malleability.manager import PrecedenceToRunningApplications
from repro.malleability.policies import EquiGrowShrink
from repro.policies import (
    KINDS,
    PolicySpec,
    build_policy,
    iter_registered,
    names,
    policy_doc,
    policy_signature,
    register,
    resolve,
    spec_string,
)
from repro.policies.average_steal import AverageSteal
from repro.policies.backfilling import EasyBackfilling
from repro.policies.registry import _ALIASES, _REGISTRY


@pytest.fixture
def scratch_registration():
    """Roll back any registrations a test makes."""
    before_registry = dict(_REGISTRY)
    before_aliases = dict(_ALIASES)
    yield
    _REGISTRY.clear()
    _REGISTRY.update(before_registry)
    _ALIASES.clear()
    _ALIASES.update(before_aliases)


def test_builtin_policies_are_registered():
    assert names("placement") == ("CF", "CM", "EASY", "FCM", "SJF", "WF")
    assert names("malleability") == (
        "AVERAGE_STEAL",
        "EGS",
        "EQUIPARTITION",
        "FOLDING",
        "FPSMA",
    )
    assert names("approach") == ("PRA", "PWA")
    assert set(KINDS) == {"placement", "malleability", "approach"}


def test_iter_registered_yields_sorted_triples():
    triples = list(iter_registered())
    assert ("malleability", "AVERAGE_STEAL", AverageSteal) in triples
    assert triples == sorted(triples, key=lambda t: (t[0], t[1]))


def test_resolve_handles_aliases_and_case():
    assert resolve("placement", "wf") is WorstFit
    assert resolve("placement", "worst-fit") is WorstFit
    assert resolve("malleability", "equi-grow-shrink") is EquiGrowShrink
    assert resolve("malleability", "steal") is AverageSteal


def test_unknown_name_lists_registered_names():
    with pytest.raises(ValueError, match="CF, CM, EASY, FCM, SJF, WF"):
        resolve("placement", "NOPE")
    with pytest.raises(ValueError, match="AVERAGE_STEAL"):
        PolicySpec.parse("malleability", "XYZZY")


def test_spec_parses_bare_name():
    spec = PolicySpec.parse("placement", "wf")
    assert (spec.kind, spec.name, spec.params) == ("placement", "WF", ())
    assert spec.canonical() == "WF"
    assert isinstance(spec.build(), WorstFit)


def test_spec_parses_query_string_with_literals():
    spec = PolicySpec.parse("placement", "EASY?reserve_depth=2&runtime_margin=1.5")
    assert spec.name == "EASY"
    assert dict(spec.params) == {"reserve_depth": 2, "runtime_margin": 1.5}
    policy = spec.build()
    assert isinstance(policy, EasyBackfilling)
    assert policy.reserve_depth == 2
    assert policy.runtime_margin == 1.5


def test_spec_parses_mapping_and_spec_passthrough():
    spec = PolicySpec.parse(
        "placement", {"name": "cf", "params": {"file_size_mb": 250}}
    )
    assert spec.canonical() == "CF?file_size_mb=250"
    again = PolicySpec.parse("placement", spec)
    assert again == spec
    policy = spec.build()
    assert isinstance(policy, CloseToFiles)
    assert policy.file_size_mb == 250


def test_canonical_string_round_trips_string_params():
    spec = PolicySpec.parse("malleability", "AVERAGE_STEAL?balance='absolute'")
    text = spec.canonical()
    reparsed = PolicySpec.parse("malleability", text)
    assert reparsed == spec
    assert reparsed.build().balance == "absolute"


def test_canonical_params_are_sorted():
    a = PolicySpec.parse("placement", "EASY?runtime_margin=2.0&reserve_depth=3")
    b = PolicySpec.parse("placement", "EASY?reserve_depth=3&runtime_margin=2.0")
    assert a == b
    assert a.canonical() == b.canonical()


def test_unknown_parameter_raises_with_signature():
    with pytest.raises(TypeError, match="reserve_depth"):
        PolicySpec.parse("placement", "EASY?bogus=1")


def test_parameter_on_parameterless_policy_rejected():
    with pytest.raises(TypeError, match="no parameters"):
        PolicySpec.parse("malleability", "EGS?favour_interval=30")


def test_malformed_query_string_rejected():
    with pytest.raises(ValueError, match="malformed"):
        PolicySpec.parse("placement", "EASY?reserve_depth")


def test_build_policy_passes_instances_through():
    instance = WorstFit()
    assert build_policy("placement", instance) is instance


def test_duplicate_registration_rejected(scratch_registration):
    @register("placement", "DUPE")
    class First(WorstFit):
        pass

    with pytest.raises(ValueError, match="already registered"):

        @register("placement", "DUPE")
        class Second(WorstFit):
            pass

    # Re-registering the *same* class is benign (repeated module import).
    assert register("placement", "DUPE")(First) is First


def test_signature_and_doc_rendering():
    assert policy_signature(WorstFit) == ""
    assert "file_size_mb" in policy_signature(CloseToFiles)
    assert policy_doc(EquiGrowShrink).startswith("Equi-Grow")


# -- registry construction across every axis ----------------------------------


def test_build_policy_across_all_axes():
    assert isinstance(build_policy("placement", "wf"), WorstFit)
    assert isinstance(build_policy("malleability", "egs"), EquiGrowShrink)
    assert isinstance(
        build_policy("approach", "pra"), PrecedenceToRunningApplications
    )


def test_build_policy_raises_value_error_on_unknown_names():
    with pytest.raises(ValueError):
        build_policy("placement", "nope")
    with pytest.raises(ValueError):
        build_policy("malleability", "nope")
    with pytest.raises(ValueError):
        build_policy("approach", "nope")


def test_parameterised_reference_constructs_configured_instance():
    direct = build_policy("placement", "CF?file_size_mb=123.0")
    assert isinstance(direct, CloseToFiles)
    assert direct.file_size_mb == 123.0


# -- config-construction-time validation -------------------------------------


def test_experiment_config_rejects_unknown_policies_early():
    with pytest.raises(ValueError, match="AVERAGE_STEAL, EGS"):
        ExperimentConfig(malleability_policy="EGSS")
    with pytest.raises(ValueError, match="CF, CM, EASY"):
        ExperimentConfig(placement_policy="WFX")
    with pytest.raises(ValueError, match="PRA, PWA"):
        ExperimentConfig(approach="PRB")


def test_experiment_config_rejects_bad_params_early():
    with pytest.raises(TypeError, match="reserve_depth"):
        ExperimentConfig(placement_policy="EASY?depth=2")


def test_scheduler_config_rejects_unknown_policies_early():
    with pytest.raises(ValueError, match="registered"):
        SchedulerConfig(malleability_policy="FPSMAA")
    with pytest.raises(ValueError, match="registered"):
        SchedulerConfig(placement_policy="nope")
    with pytest.raises(ValueError, match="registered"):
        SchedulerConfig(approach="nope")


def test_configs_canonicalise_policy_references():
    config = ExperimentConfig(
        malleability_policy={"name": "average_steal", "params": {"balance": "absolute"}},
        placement_policy="easy?reserve_depth=2",
        approach="pwa",
    )
    assert config.malleability_policy == "AVERAGE_STEAL?balance='absolute'"
    assert config.placement_policy == "EASY?reserve_depth=2"
    assert config.approach == "PWA"
    # The canonical strings survive the JSON round-trip used by the cache.
    round_tripped = ExperimentConfig.from_dict(config.to_dict())
    assert round_tripped == config


def test_scheduler_config_accepts_instances_unchanged():
    policy = EasyBackfilling(reserve_depth=3)
    config = SchedulerConfig(placement_policy=policy)
    assert config.placement_policy is policy


def test_spec_string_normalises_every_form():
    assert spec_string("placement", "wf") == "WF"
    assert spec_string("approach", {"name": "pra"}) == "PRA"
    assert (
        spec_string("malleability", PolicySpec.parse("malleability", "steal"))
        == "AVERAGE_STEAL"
    )


def test_alias_cannot_hijack_a_registered_name(scratch_registration):
    with pytest.raises(ValueError, match="collides"):

        @register("malleability", "HIJACKER", aliases=("EGS",))
        class Hijacker(EquiGrowShrink):
            pass


def test_alias_cannot_be_retargeted(scratch_registration):
    @register("placement", "ONE", aliases=("SHARED",))
    class One(WorstFit):
        pass

    with pytest.raises(ValueError, match="already an alias"):

        @register("placement", "TWO", aliases=("SHARED",))
        class Two(WorstFit):
            pass


def test_registered_name_wins_over_alias(scratch_registration):
    # Registering a policy whose *name* equals a pre-existing alias is
    # allowed, and direct names take precedence over the alias mapping.
    @register("malleability", "STEAL")
    class DirectSteal(EquiGrowShrink):
        pass

    assert resolve("malleability", "STEAL") is DirectSteal


def test_spec_of_wrong_kind_is_rejected():
    placement = PolicySpec.parse("placement", "WF")
    with pytest.raises(ValueError, match="expected a malleability policy"):
        PolicySpec.parse("malleability", placement)
