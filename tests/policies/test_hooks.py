"""Tests of the typed scheduler events and the hook dispatcher."""

from __future__ import annotations

from repro.apps import ft_profile
from repro.cluster import Multicluster
from repro.koala import Job, KoalaScheduler, SchedulerConfig
from repro.policies import (
    HOOK_METHODS,
    JobEnded,
    JobPlaced,
    JobStarted,
    JobSubmitted,
    KisUpdated,
    ProcessorsFreed,
    SchedulerHooks,
    implements_hooks,
)
from repro.sim import RandomStreams


class RecordingHooks(SchedulerHooks):
    """Probe subscriber that records every event it receives."""

    def __init__(self):
        self.attached_to = None
        self.events = []

    def on_attach(self, scheduler):
        self.attached_to = scheduler

    def on_job_submitted(self, event, scheduler):
        self.events.append(event)

    def on_job_placed(self, event, scheduler):
        self.events.append(event)

    def on_job_started(self, event, scheduler):
        self.events.append(event)

    def on_job_ended(self, event, scheduler):
        self.events.append(event)

    def on_processors_freed(self, event, scheduler):
        self.events.append(event)

    def on_kis_updated(self, event, scheduler):
        self.events.append(event)

    def of_type(self, event_type):
        return [event for event in self.events if isinstance(event, event_type)]


def build_scheduler(env, **config_kwargs):
    streams = RandomStreams(seed=5)
    system = Multicluster(env, streams=streams, gram_submission_latency=1.0)
    system.add_cluster("alpha", 16)
    scheduler = KoalaScheduler(
        env,
        system,
        SchedulerConfig(poll_interval=10.0, **config_kwargs),
        streams=streams,
    )
    return system, scheduler


def test_scheduler_emits_all_six_event_types(env):
    _, scheduler = build_scheduler(env)
    probe = RecordingHooks()
    scheduler.hooks.subscribe(probe)
    assert probe.attached_to is scheduler

    job = Job.malleable(ft_profile(), name="probe-job")
    scheduler.submit(job)
    env.run(until=2000)
    assert scheduler.all_done

    submitted = probe.of_type(JobSubmitted)
    assert [event.job for event in submitted] == [job]
    placed = probe.of_type(JobPlaced)
    assert placed and placed[0].cluster_name == "alpha"
    assert placed[0].processors == 2
    started = probe.of_type(JobStarted)
    assert [event.job for event in started] == [job]
    ended = probe.of_type(JobEnded)
    assert len(ended) == 1 and not ended[0].failed
    assert ended[0].record is scheduler.records[job.job_id]
    assert probe.of_type(ProcessorsFreed)
    assert probe.of_type(KisUpdated)

    # Event times are monotonic within the run.
    times = [event.time for event in probe.events]
    assert times == sorted(times)


def test_policy_axes_are_subscribed_in_order(env):
    _, scheduler = build_scheduler(env, malleability_policy="EGS", approach="PRA")
    subscribers = scheduler.hooks.subscribers
    assert subscribers[0] is scheduler.placement_policy
    assert subscribers[1] is scheduler.manager.policy
    assert subscribers[2] is scheduler.approach


def test_scheduler_without_malleability_uses_queue_scan_hooks(env):
    _, scheduler = build_scheduler(env, malleability_policy=None)
    assert scheduler.manager is None
    job = Job.malleable(ft_profile(), name="plain")
    scheduler.submit(job)
    env.run(until=1500)
    assert scheduler.all_done


def test_unsubscribe_stops_delivery(env):
    _, scheduler = build_scheduler(env)
    probe = RecordingHooks()
    scheduler.hooks.subscribe(probe)
    scheduler.hooks.unsubscribe(probe)
    scheduler.submit(Job.malleable(ft_profile(), name="silent"))
    env.run(until=50)
    assert probe.events == []


def test_subscribe_is_idempotent(env):
    _, scheduler = build_scheduler(env)
    probe = RecordingHooks()
    scheduler.hooks.subscribe(probe)
    scheduler.hooks.subscribe(probe)
    scheduler.submit(Job.malleable(ft_profile(), name="once"))
    assert len(probe.of_type(JobSubmitted)) == 1


def test_hook_methods_cover_every_event_type():
    assert set(HOOK_METHODS.values()) == {
        "on_job_submitted",
        "on_job_placed",
        "on_job_started",
        "on_job_ended",
        "on_processors_freed",
        "on_kis_updated",
        "on_node_failed",
        "on_node_repaired",
        "on_job_failed",
        "on_job_rescued",
    }


def test_implements_hooks_detects_overrides():
    assert implements_hooks(RecordingHooks())
    assert not implements_hooks(SchedulerHooks())
    assert not implements_hooks(object())


def test_plain_policies_tolerate_event_dispatch(env):
    # Worst-Fit and FPSMA implement no hooks at all; dispatch must skip them
    # silently while still delivering to the approach.
    _, scheduler = build_scheduler(env, placement_policy="WF", malleability_policy="FPSMA")
    job = Job.malleable(ft_profile(), name="dispatch")
    scheduler.submit(job)
    env.run(until=2000)
    assert scheduler.all_done
