"""The package version is declared once and reported consistently."""

from __future__ import annotations

import re
from pathlib import Path

import repro


def test_dunder_version_matches_pyproject():
    # No tomllib on 3.9: a pinned regex over the [project] table suffices.
    pyproject = Path(__file__).parent.parent / "pyproject.toml"
    match = re.search(
        r'^version = "([^"]+)"$', pyproject.read_text(encoding="utf-8"), re.MULTILINE
    )
    assert match, "pyproject.toml lost its version field"
    assert repro.__version__ == match.group(1)
