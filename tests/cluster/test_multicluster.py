"""Unit tests of the multicluster container, the network model and the DAS-3 preset."""

from __future__ import annotations

import pytest

from repro.cluster import (
    BackgroundLoadSpec,
    DAS3_CLUSTERS,
    Link,
    Multicluster,
    NetworkModel,
    das3_multicluster,
)
from repro.cluster.das3 import DAS3_TOTAL_NODES
from repro.sim import Environment, RandomStreams


# ---------------------------------------------------------------------------
# Network model
# ---------------------------------------------------------------------------


def test_link_transfer_time():
    link = Link(latency=0.01, bandwidth=100.0)
    assert link.transfer_time(0) == 0.0
    assert link.transfer_time(500) == pytest.approx(0.01 + 5.0)
    with pytest.raises(ValueError):
        link.transfer_time(-1)
    with pytest.raises(ValueError):
        Link(latency=-1, bandwidth=10)
    with pytest.raises(ValueError):
        Link(latency=0, bandwidth=0)


def test_network_model_defaults_and_overrides():
    network = NetworkModel()
    # Intra-site transfers use the fast local link.
    assert network.transfer_time("a", "a", 100) < network.transfer_time("a", "b", 100)
    fast = Link(latency=1e-3, bandwidth=1000.0)
    network.set_link("a", "b", fast)
    assert network.link("a", "b") is fast
    assert network.link("b", "a") is fast  # symmetric


def test_network_best_source_picks_minimum():
    network = NetworkModel()
    network.set_link("src-fast", "dst", Link(latency=0.0, bandwidth=1000.0))
    network.set_link("src-slow", "dst", Link(latency=0.0, bandwidth=10.0))
    best = network.best_source("dst", ["src-slow", "src-fast"], 100)
    assert best is not None
    assert best[0] == "src-fast"
    assert network.best_source("dst", [], 100) is None


# ---------------------------------------------------------------------------
# Multicluster
# ---------------------------------------------------------------------------


def test_add_cluster_and_lookup(env, streams):
    system = Multicluster(env, streams=streams)
    system.add_cluster("a", 10)
    system.add_cluster("b", 20, background=BackgroundLoadSpec(mean_interarrival=100.0))
    assert len(system) == 2
    assert system.total_processors == 30
    assert "a" in system and "c" not in system
    assert system.cluster("a").total_processors == 10
    assert system.local_rm("a").cluster is system.cluster("a")
    assert system.gram("b").cluster is system.cluster("b")
    assert system.background("a") is None
    assert system.background("b") is not None
    with pytest.raises(ValueError):
        system.add_cluster("a", 5)
    with pytest.raises(KeyError):
        system.cluster("missing")


def test_replica_catalogue(env, streams):
    system = Multicluster(env, streams=streams)
    system.add_cluster("a", 10)
    system.register_replica("input.dat", "a")
    assert system.replica_sites("input.dat") == {"a"}
    assert system.replica_sites("unknown.dat") == set()
    with pytest.raises(KeyError):
        system.register_replica("x", "missing-cluster")


def test_aggregate_idle_and_utilization_series(env, streams):
    system = Multicluster(env, streams=streams)
    a = system.add_cluster("a", 10)
    b = system.add_cluster("b", 10)

    def workload(env):
        a.allocate(4, owner="j1")
        yield env.timeout(10)
        b.allocate(6, owner="j2", kind="local")
        yield env.timeout(10)

    env.process(workload(env))
    env.run()
    assert system.used_processors == 10
    assert system.idle_processors == 10
    times, values = system.utilization_series("all")
    assert values[-1] == 10
    _, grid = system.utilization_series("grid")
    assert grid[-1] == 4
    _, local = system.utilization_series("local")
    assert local[-1] == 6
    with pytest.raises(ValueError):
        system.utilization_series("bogus")


# ---------------------------------------------------------------------------
# DAS-3 preset (Table I)
# ---------------------------------------------------------------------------


def test_das3_matches_table_one(das3):
    # Five clusters, 272 nodes in total.
    assert len(das3) == 5
    assert das3.total_processors == DAS3_TOTAL_NODES == 272
    sizes = {spec.name: spec.nodes for spec in DAS3_CLUSTERS}
    assert sizes == {"vu": 85, "uva": 41, "delft": 68, "multimedian": 46, "leiden": 32}
    for spec in DAS3_CLUSTERS:
        assert das3.cluster(spec.name).total_processors == spec.nodes
        assert das3.cluster(spec.name).location == spec.location


def test_das3_with_background_load():
    env = Environment()
    system = das3_multicluster(
        env,
        streams=RandomStreams(2),
        background={"delft": BackgroundLoadSpec(mean_interarrival=120.0, mean_duration=300.0)},
    )
    env.run(until=4000)
    assert system.background("delft") is not None
    assert system.background("vu") is None
    assert system.background("delft").submitted_count > 0
