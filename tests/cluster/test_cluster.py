"""Unit tests of the cluster pool: allocation accounting and usage series."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import AllocationError, Cluster
from repro.sim import Environment


def test_cluster_requires_at_least_one_processor(env):
    with pytest.raises(ValueError):
        Cluster(env, "empty", 0)


def test_allocate_and_release_update_counters(env):
    cluster = Cluster(env, "c", 10)
    assert cluster.idle_processors == 10
    allocation = cluster.allocate(4, owner="job-1")
    assert cluster.used_processors == 4
    assert cluster.grid_processors == 4
    assert cluster.local_processors == 0
    assert cluster.idle_processors == 6
    assert cluster.utilization == pytest.approx(0.4)
    allocation.release()
    assert cluster.idle_processors == 10
    assert not allocation.active
    assert allocation.duration == 0.0


def test_local_and_grid_usage_tracked_separately(env):
    cluster = Cluster(env, "c", 20)
    cluster.allocate(5, owner="grid-job", kind="grid")
    cluster.allocate(3, owner="local-job", kind="local")
    assert cluster.grid_processors == 5
    assert cluster.local_processors == 3
    assert cluster.used_processors == 8


def test_try_allocate_returns_none_when_insufficient(env):
    cluster = Cluster(env, "c", 4)
    assert cluster.try_allocate(5, owner="too-big") is None
    assert cluster.try_allocate(4, owner="fits") is not None
    assert cluster.try_allocate(1, owner="now-full") is None


def test_allocate_raises_when_insufficient(env):
    cluster = Cluster(env, "c", 4)
    with pytest.raises(AllocationError):
        cluster.allocate(5, owner="too-big")
    with pytest.raises(AllocationError):
        cluster.allocate(0, owner="zero")


def test_release_of_unknown_allocation_rejected(env):
    cluster_a = Cluster(env, "a", 4)
    cluster_b = Cluster(env, "b", 4)
    allocation = cluster_a.allocate(2, owner="job")
    with pytest.raises(AllocationError):
        cluster_b.release(allocation)
    cluster_a.release(allocation)
    with pytest.raises(AllocationError):
        cluster_a.release(allocation)  # double release


def test_usage_series_records_changes_over_time(env):
    cluster = Cluster(env, "c", 10)

    def workload(env, cluster):
        allocation = cluster.allocate(6, owner="j1")
        yield env.timeout(10)
        allocation.release()
        yield env.timeout(5)
        cluster.allocate(2, owner="j2", kind="local")

    env.process(workload(env, cluster))
    env.run()
    series = cluster.usage_series
    assert series.value_at(0) == 6
    assert series.value_at(9.9) == 6
    assert series.value_at(10) == 0
    assert series.value_at(15) == 2
    assert cluster.local_usage_series.value_at(15) == 2
    assert cluster.grid_usage_series.value_at(15) == 0


def test_when_released_event_fires_on_next_release(env):
    cluster = Cluster(env, "c", 10)
    allocation = cluster.allocate(3, owner="j1")

    def waiter(env, cluster):
        idle = yield cluster.when_released()
        return (env.now, idle)

    def releaser(env, allocation):
        yield env.timeout(7)
        allocation.release()

    waiter_proc = env.process(waiter(env, cluster))
    env.process(releaser(env, allocation))
    env.run()
    assert waiter_proc.value == (7, 10)


def test_release_listener_sees_every_release(env):
    cluster = Cluster(env, "c", 16)
    seen = []
    cluster.add_release_listener(lambda allocation: seen.append(
        (allocation.processors, allocation.kind)
    ))
    a = cluster.allocate(4, owner="grid", kind="grid")
    b = cluster.allocate(2, owner="local", kind="local")
    a.release()
    b.release()
    assert seen == [(4, "grid"), (2, "local")]


def test_active_allocations_sorted_by_grant_time(env):
    cluster = Cluster(env, "c", 16)

    def workload(env, cluster):
        cluster.allocate(1, owner="first")
        yield env.timeout(1)
        cluster.allocate(1, owner="second")
        yield env.timeout(1)
        cluster.allocate(1, owner="third")

    env.process(workload(env, cluster))
    env.run()
    assert [a.owner for a in cluster.active_allocations] == ["first", "second", "third"]


@given(
    requests=st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=30),
)
@settings(max_examples=50, deadline=None)
def test_capacity_is_never_exceeded(requests):
    """Whatever the sequence of allocations, usage never exceeds capacity and
    idle + used always equals the total."""
    env = Environment()
    cluster = Cluster(env, "prop", 32)
    live = []
    for index, size in enumerate(requests):
        allocation = cluster.try_allocate(size, owner=f"job-{index}")
        if allocation is not None:
            live.append(allocation)
        assert 0 <= cluster.used_processors <= cluster.total_processors
        assert cluster.idle_processors + cluster.used_processors == cluster.total_processors
        # Periodically release the oldest allocation to keep churn going.
        if index % 3 == 2 and live:
            live.pop(0).release()
            assert cluster.idle_processors + cluster.used_processors == cluster.total_processors
