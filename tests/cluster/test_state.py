"""Tests of the struct-of-arrays cluster state (`repro.cluster.state`).

The invariants under test are the module's contract: after every mutation,
``idle == max(0, total - failed - used)`` and ``effective == max(0,
idle - pending)``, the shared dict views reflect the columns, and the
vectorized Worst-Fit selection matches the historical sort-based rule.
The last test binds real clusters through a multicluster and checks the
mirror stays exact through allocate/release/fail/repair.
"""

from __future__ import annotations

import pytest

from repro.cluster.multicluster import Multicluster
from repro.cluster.state import ClusterState
from repro.sim.core import Environment


def make_state():
    state = ClusterState()
    state.register("delft", 64)
    state.register("amsterdam", 32)
    return state


def check_invariants(state):
    for index, name in enumerate(state.names):
        idle = max(
            0,
            int(state.total[index])
            - int(state.failed[index])
            - int(state.used_grid[index])
            - int(state.used_local[index]),
        )
        effective = max(0, idle - int(state.pending[index]))
        assert int(state.idle[index]) == idle
        assert int(state.effective[index]) == effective
        assert state.idle_view()[name] == idle
        assert state.effective_view()[name] == effective
        assert state.idle_of(name) == idle
        assert state.effective_of(name) == effective


def test_register_initialises_full_idle():
    state = make_state()
    assert len(state) == 2
    assert state.index_of("delft") == 0
    assert state.idle_view() == {"delft": 64, "amsterdam": 32}
    assert state.effective_view() == {"delft": 64, "amsterdam": 32}
    check_invariants(state)


def test_register_rejects_duplicates():
    state = make_state()
    with pytest.raises(ValueError, match="already registered"):
        state.register("delft", 16)


def test_usage_failed_and_pending_updates_hold_the_invariants():
    state = make_state()
    state.update_usage(0, 30, 10)
    check_invariants(state)
    assert state.idle_of("delft") == 24
    state.update_failed(0, 20)
    check_invariants(state)
    assert state.idle_of("delft") == 4
    state.update_pending("delft", 3)
    check_invariants(state)
    assert state.effective_of("delft") == 1
    assert state.idle_of("delft") == 4  # pending never touches idle
    state.update_pending("delft", 0)
    check_invariants(state)
    assert state.effective_of("delft") == 4


def test_idle_clamps_at_zero_during_fault_teardown():
    # Between a failure striking busy nodes and the victim allocations being
    # released, failed + used may transiently exceed the total.
    state = make_state()
    state.update_usage(0, 60, 0)
    state.update_failed(0, 10)
    check_invariants(state)
    assert state.idle_of("delft") == 0
    assert state.effective_of("delft") == 0


def test_pending_above_idle_clamps_effective():
    state = make_state()
    state.update_usage(1, 30, 0)
    state.update_pending("amsterdam", 5)
    check_invariants(state)
    assert state.idle_of("amsterdam") == 2
    assert state.effective_of("amsterdam") == 0


def test_total_idle_sums_the_column():
    state = make_state()
    state.update_usage(0, 10, 0)
    assert state.total_idle() == 54 + 32


def test_select_worst_fit_matches_the_sort_rule():
    state = make_state()
    # delft 64 idle, amsterdam 32 idle: worst fit picks delft.
    assert state.select_worst_fit(1) == "delft"
    # Tie on effective idle: lexicographically smallest name wins.
    state.update_usage(0, 32, 0)
    assert state.effective_of("delft") == state.effective_of("amsterdam") == 32
    assert state.select_worst_fit(1) == "amsterdam"
    # Nothing fits: None.
    assert state.select_worst_fit(33) is None


def test_shared_views_are_live():
    state = make_state()
    idle = state.idle_view()
    effective = state.effective_view()
    state.update_usage(0, 16, 0)
    assert idle["delft"] == 48
    assert effective["delft"] == 48


def test_bound_clusters_mirror_through_their_lifecycle():
    env = Environment()
    multicluster = Multicluster(env)
    delft = multicluster.add_cluster("delft", 64)
    amsterdam = multicluster.add_cluster("amsterdam", 32)
    assert amsterdam.total_processors == 32
    state = multicluster.state

    allocation = delft.try_allocate(10, owner="job-1")
    assert state.idle_of("delft") == 54
    local = delft.try_allocate(4, owner="bg", kind="local")
    assert state.idle_of("delft") == 50
    delft.mark_failed(20)
    assert state.idle_of("delft") == 30
    check_invariants(state)
    delft.release(allocation)
    assert state.idle_of("delft") == 40
    delft.mark_repaired(20)
    delft.release(local)
    assert state.idle_of("delft") == 64
    assert state.idle_of("amsterdam") == 32
    check_invariants(state)
