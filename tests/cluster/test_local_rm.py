"""Unit tests of the SGE-like local resource manager and background load."""

from __future__ import annotations

import pytest

from repro.cluster import BackgroundLoadGenerator, BackgroundLoadSpec, Cluster, LocalJob, LocalResourceManager
from repro.sim import Environment, RandomStreams


def build(env, nodes=8, backfilling=False):
    cluster = Cluster(env, "c", nodes)
    return cluster, LocalResourceManager(env, cluster, backfilling=backfilling)


def test_local_job_validation():
    with pytest.raises(ValueError):
        LocalJob(processors=0, duration=10)
    with pytest.raises(ValueError):
        LocalJob(processors=2, duration=0)


def test_fcfs_jobs_run_in_submission_order(env):
    cluster, lrm = build(env, nodes=4)
    jobs = [LocalJob(processors=4, duration=10, name=f"j{i}") for i in range(3)]
    for job in jobs:
        lrm.submit(job)
    env.run()
    starts = [job.start_time for job in jobs]
    assert starts == [0, 10, 20]
    assert all(job.finished for job in jobs)
    assert [j.name for j in lrm.finished_jobs] == ["j0", "j1", "j2"]


def test_head_of_queue_blocks_without_backfilling(env):
    cluster, lrm = build(env, nodes=8, backfilling=False)
    running = LocalJob(processors=6, duration=20, name="running")
    big = LocalJob(processors=8, duration=10, name="big")
    small = LocalJob(processors=2, duration=5, name="small")
    lrm.submit(running)
    lrm.submit(big)
    lrm.submit(small)
    env.run()
    # Plain FCFS: the small job must wait behind the blocked big job.
    assert small.start_time > big.start_time or small.start_time >= 20


def test_backfilling_lets_small_jobs_jump_the_blocked_head(env):
    cluster, lrm = build(env, nodes=8, backfilling=True)
    running = LocalJob(processors=6, duration=20, name="running")
    big = LocalJob(processors=8, duration=10, name="big")
    small = LocalJob(processors=2, duration=5, name="small")
    lrm.submit(running)
    lrm.submit(big)
    lrm.submit(small)
    env.run()
    assert small.start_time == 0  # fits next to the running job immediately
    assert big.start_time >= 20


def test_completion_event_fires_with_the_job(env):
    cluster, lrm = build(env, nodes=4)
    job = LocalJob(processors=2, duration=7)

    def waiter(env, done):
        finished = yield done
        return (env.now, finished.name)

    done = lrm.submit(job)
    waiter_proc = env.process(waiter(env, done))
    env.run()
    assert waiter_proc.value == (7, job.name)
    assert job.wait_time == 0


def test_queue_length_reflects_waiting_jobs(env):
    cluster, lrm = build(env, nodes=2)
    lrm.submit(LocalJob(processors=2, duration=50))
    lrm.submit(LocalJob(processors=2, duration=50))
    lrm.submit(LocalJob(processors=2, duration=50))
    env.run(until=1)
    assert lrm.queue_length == 2
    assert cluster.used_processors == 2


# ---------------------------------------------------------------------------
# Background load generator
# ---------------------------------------------------------------------------


def test_background_spec_validation():
    with pytest.raises(ValueError):
        BackgroundLoadSpec(mean_interarrival=0)
    with pytest.raises(ValueError):
        BackgroundLoadSpec(mean_duration=0)
    with pytest.raises(ValueError):
        BackgroundLoadSpec(min_processors=4, max_processors=2)
    assert not BackgroundLoadSpec().enabled
    assert BackgroundLoadSpec(mean_interarrival=60).enabled


def test_background_generator_submits_jobs_with_sizes_in_range(env):
    cluster, lrm = build(env, nodes=64)
    spec = BackgroundLoadSpec(
        mean_interarrival=30.0, mean_duration=100.0, min_processors=2, max_processors=6
    )
    generator = BackgroundLoadGenerator(env, lrm, spec, RandomStreams(5)["bg"], name="bg")
    env.run(until=3000)
    assert generator.submitted_count > 10
    assert all(2 <= job.processors <= 6 for job in generator.jobs)
    assert all(job.duration >= 1.0 for job in generator.jobs)
    # The cluster actually saw load.
    assert cluster.usage_series.time_average(0, 3000) > 0


def test_background_generator_respects_time_window(env):
    cluster, lrm = build(env, nodes=64)
    spec = BackgroundLoadSpec(
        mean_interarrival=20.0, mean_duration=50.0, start_time=100.0, end_time=500.0
    )
    generator = BackgroundLoadGenerator(env, lrm, spec, RandomStreams(6)["bg"])
    env.run(until=2000)
    assert all(100.0 <= job.submit_time <= 500.0 for job in generator.jobs)


def test_background_generator_is_reproducible(env):
    def run_once(seed):
        env = Environment()
        cluster = Cluster(env, "c", 64)
        lrm = LocalResourceManager(env, cluster)
        spec = BackgroundLoadSpec(mean_interarrival=25.0, mean_duration=80.0)
        generator = BackgroundLoadGenerator(env, lrm, spec, RandomStreams(seed)["bg"])
        env.run(until=2000)
        return [(job.submit_time, job.processors) for job in generator.jobs]

    assert run_once(7) == run_once(7)
    assert run_once(7) != run_once(8)
