"""Unit tests of the GRAM submission endpoint."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, GramEndpoint, GramSubmissionError
from repro.sim import Environment, RandomStreams


def build(env, nodes=16, latency=5.0, recruit=0.5, rng=None):
    cluster = Cluster(env, "c", nodes)
    endpoint = GramEndpoint(
        env, cluster, submission_latency=latency, recruit_latency=recruit, rng=rng
    )
    return cluster, endpoint


def test_submission_becomes_active_after_latency(env):
    cluster, endpoint = build(env, latency=5.0)

    def driver(env, endpoint):
        job = yield endpoint.submit("job-1", 4)
        return (env.now, job.processors, job.active)

    driver_proc = env.process(driver(env, endpoint))
    env.run()
    assert driver_proc.value == (5.0, 4, True)
    assert cluster.used_processors == 4
    assert len(endpoint.active_jobs) == 1


def test_submission_fails_when_processors_disappear(env):
    cluster, endpoint = build(env, nodes=4, latency=5.0)

    def competitor(env, cluster):
        # Takes the nodes while the GRAM submission is still in flight.
        yield env.timeout(1.0)
        cluster.allocate(3, owner="background", kind="local")

    def driver(env, endpoint):
        try:
            yield endpoint.submit("job-1", 2)
        except GramSubmissionError as error:
            return ("failed", error.requested, env.now)
        return ("ok",)

    env.process(competitor(env, cluster))
    driver_proc = env.process(driver(env, endpoint))
    env.run()
    assert driver_proc.value == ("failed", 2, 5.0)
    assert cluster.grid_processors == 0


def test_release_returns_processors(env):
    cluster, endpoint = build(env)

    def driver(env, endpoint):
        job = yield endpoint.submit("job-1", 6)
        yield env.timeout(10)
        endpoint.release(job)
        return cluster.idle_processors

    driver_proc = env.process(driver(env, endpoint))
    env.run()
    assert driver_proc.value == 16
    assert endpoint.active_jobs == []


def test_recruit_requires_an_active_job_and_is_fast(env):
    cluster, endpoint = build(env, latency=4.0, recruit=0.5)

    def driver(env, endpoint):
        job = yield endpoint.submit("job-1", 1)
        submitted_at = env.now
        yield endpoint.recruit(job)
        return env.now - submitted_at

    driver_proc = env.process(driver(env, endpoint))
    env.run()
    assert driver_proc.value == pytest.approx(0.5)


def test_recruit_of_released_job_rejected(env):
    cluster, endpoint = build(env)

    def driver(env, endpoint):
        job = yield endpoint.submit("job-1", 1)
        endpoint.release(job)
        try:
            endpoint.recruit(job)
        except GramSubmissionError:
            return "rejected"

    driver_proc = env.process(driver(env, endpoint))
    env.run()
    assert driver_proc.value == "rejected"


def test_latency_jitter_stays_within_bounds():
    env = Environment()
    rng = RandomStreams(3)["gram"]
    cluster, endpoint = build(env, latency=10.0, rng=rng)
    endpoint.latency_jitter = 0.2
    times = []

    def driver(env, endpoint, index):
        started = env.now
        yield endpoint.submit(f"job-{index}", 1)
        times.append(env.now - started)

    for index in range(10):
        env.process(driver(env, endpoint, index))
    env.run()
    assert all(8.0 <= t <= 12.0 for t in times)
    assert len(set(times)) > 1  # jitter actually varies


def test_submission_validation(env):
    cluster, endpoint = build(env)
    with pytest.raises(ValueError):
        endpoint.submit("job", 0)
    with pytest.raises(ValueError):
        GramEndpoint(env, cluster, submission_latency=-1)
    with pytest.raises(ValueError):
        GramEndpoint(env, cluster, latency_jitter=1.5)


def test_failed_submission_does_not_crash_unwaited(env):
    """A refused submission must never abort the simulation, even if the
    caller has not started waiting on it yet (pre-defused failure)."""
    cluster, endpoint = build(env, nodes=1, latency=2.0)
    cluster.allocate(1, owner="taken", kind="local")
    endpoint.submit("job-1", 1)  # nobody ever waits on this event
    env.run()  # must not raise
    assert cluster.grid_processors == 0
