"""Trace records, sinks, path resolution and schema validation."""

from __future__ import annotations

import json

import pytest

from repro.experiments.setup import ExperimentConfig
from repro.obs.trace import (
    TRACE_SCHEMA,
    GzipJsonlSink,
    JsonlSink,
    NullSink,
    Tracer,
    load_trace,
    open_sink,
    payload_digest,
    read_trace,
    resolve_trace_path,
    validate_trace,
)


def test_jsonl_sink_round_trip(tmp_path):
    path = tmp_path / "t.jsonl"
    tracer = Tracer(JsonlSink(path), meta={"label": "x", "seed": 3})
    tracer.record("sched", t=1.0, pr=0, id=1, e="Timeout")
    tracer.record("run_end", t=2.0, events=1, all_done=True, digest="d")
    tracer.close()
    records = load_trace(path)
    assert records[0] == {"k": "header", "schema": TRACE_SCHEMA, "label": "x", "seed": 3}
    assert records[1]["e"] == "Timeout"
    assert records[2]["k"] == "run_end"
    assert validate_trace(records) == []


def test_gzip_sink_round_trip_and_suffix_dispatch(tmp_path):
    path = tmp_path / "t.jsonl.gz"
    sink = open_sink(path)
    assert isinstance(sink, GzipJsonlSink)
    tracer = Tracer(sink)
    tracer.record("ev", t=1.0, pr=0, e="Event")
    tracer.close()
    records = load_trace(path)
    assert [record["k"] for record in records] == ["header", "ev"]


def test_gzip_sink_output_is_name_and_time_independent(tmp_path):
    def write(path):
        tracer = Tracer(open_sink(path), meta={"seed": 0})
        tracer.record("ev", t=1.0, pr=0, e="Event")
        tracer.close()
        return path.read_bytes()

    assert write(tmp_path / "a.gz") == write(tmp_path / "differently-named.gz")


def test_null_sink_discards():
    tracer = Tracer(NullSink())
    tracer.record("ev", t=0.0, pr=0, e="Event")
    tracer.close()  # nothing to assert beyond "does not raise"


def test_canonical_lines_sorted_compact(tmp_path):
    path = tmp_path / "t.jsonl"
    tracer = Tracer(JsonlSink(path))
    tracer.record("queue", t=5.0, pending=2, processed=10)
    tracer.close()
    lines = path.read_text().splitlines()
    assert lines[1] == '{"k":"queue","pending":2,"processed":10,"t":5.0}'


def test_resolve_trace_path_literal_file():
    assert str(resolve_trace_path("/x/run.jsonl")) == "/x/run.jsonl"
    assert str(resolve_trace_path("/x/run.gz")) == "/x/run.gz"


def test_resolve_trace_path_directory_derives_from_config():
    config = ExperimentConfig(name="fig7", workload="Wm", seed=4, job_count=8)
    path = resolve_trace_path("/traces", config)
    assert str(path).startswith("/traces/")
    assert str(path).endswith("-seed4.jsonl")
    assert "fig7" in path.name
    assert "/" not in path.name  # the label's slash must be sanitised


def test_resolve_trace_path_directory_without_config():
    assert resolve_trace_path("/traces").name == "trace.jsonl"


def test_payload_digest_is_deterministic_and_order_free():
    assert payload_digest({"a": 1, "b": "x"}) == payload_digest({"b": "x", "a": 1})
    assert payload_digest({"a": 1}) != payload_digest({"a": 2})


def test_record_hook_reduces_jobs_to_names():
    from repro.policies.hooks import JobSubmitted

    written = []

    class Sink:
        def write(self, record):
            written.append(record)

        def close(self):
            pass

    class FakeJob:
        name = "Wm-1-ft-m"

    tracer = Tracer(Sink())
    tracer.record_hook(JobSubmitted(time=12.5, job=FakeJob()))
    record = written[-1]
    assert record["k"] == "hook"
    assert record["e"] == "job_submitted"
    assert record["t"] == 12.5
    assert record["job"] == "Wm-1-ft-m"
    assert record["digest"] == payload_digest({"job": "Wm-1-ft-m"})


def test_read_trace_rejects_garbage(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"k":"header","schema":1}\nnot json\n')
    with pytest.raises(ValueError, match="bad.jsonl:2"):
        list(read_trace(path))


def test_read_trace_skips_blank_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"k":"header","schema":1}\n\n{"k":"ev","t":1.0,"pr":0,"e":"E"}\n')
    assert len(load_trace(path)) == 2


def test_validate_trace_flags_problems():
    assert validate_trace([]) == ["trace is empty (no header record)"]
    assert validate_trace([{"k": "ev", "t": 1.0, "e": "E"}])[0].startswith(
        "record 0: expected a header"
    )
    assert "schema" in validate_trace([{"k": "header", "schema": 99}])[0]
    records = [
        {"k": "header", "schema": TRACE_SCHEMA},
        {"k": "nonsense"},
        {"k": "ev", "e": "E"},  # missing t
        {"k": "sched", "t": 1.0},  # missing e
        {"k": "header", "schema": TRACE_SCHEMA},  # header after first
    ]
    problems = validate_trace(records)
    assert len(problems) == 4
    assert any("unknown kind" in problem for problem in problems)
    assert any("without a sim-time" in problem for problem in problems)
    assert any("without an event name" in problem for problem in problems)
    assert any("header after the first" in problem for problem in problems)


def test_validate_trace_caps_problem_list():
    records = [{"k": "header", "schema": TRACE_SCHEMA}] + [{"k": "zzz"}] * 50
    problems = validate_trace(records)
    assert problems[-1].startswith("...")
    assert len(problems) <= 21


def test_trace_records_are_json_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    tracer = Tracer(JsonlSink(path))
    tracer.record("cache", op="submit", key="k", hit=False)
    tracer.close()
    for line in path.read_text().splitlines():
        assert isinstance(json.loads(line), dict)
