"""Tracing must observe, never perturb: traced == untraced, always.

The property test sweeps seeds and policies over both kernel event-queue
backends and requires the traced run's metrics to digest identically to the
untraced run's — the observability layer is a pure observer.  Same-seed
traces must additionally be byte-identical files (the foundation of
``repro-cli trace diff``).
"""

from __future__ import annotations

import hashlib
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.setup import ExperimentConfig, run_experiment
from repro.obs.trace import load_trace, validate_trace


def _digest(result) -> str:
    return hashlib.sha256(
        json.dumps(result.metrics.to_dict(), sort_keys=True).encode("utf-8")
    ).hexdigest()


def _config(seed, policy, **overrides):
    return ExperimentConfig(
        name="traced-prop",
        workload="Wm",
        job_count=6,
        seed=seed,
        malleability_policy=policy,
        **overrides,
    )


@pytest.mark.parametrize("queue", ["calendar", "heap"])
@settings(
    max_examples=5, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture]
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    policy=st.sampled_from(["FPSMA", "EGS", None]),
)
def test_traced_and_untraced_runs_digest_identically(
    tmp_path_factory, monkeypatch, queue, seed, policy
):
    monkeypatch.setenv("REPRO_SIM_QUEUE", queue)
    target = tmp_path_factory.mktemp("traces") / f"{queue}-{seed}.jsonl"
    untraced = run_experiment(_config(seed, policy))
    traced = run_experiment(_config(seed, policy, trace=str(target)))
    assert _digest(traced) == _digest(untraced)
    records = load_trace(target)
    assert validate_trace(records) == []
    assert records[-1]["k"] == "run_end"
    assert records[-1]["digest"] == _digest(traced)


@pytest.mark.parametrize("queue", ["calendar", "heap"])
def test_same_seed_traces_are_byte_identical(tmp_path, monkeypatch, queue):
    monkeypatch.setenv("REPRO_SIM_QUEUE", queue)
    paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
    for path in paths:
        run_experiment(_config(3, "FPSMA", trace=str(path)))
    assert paths[0].read_bytes() == paths[1].read_bytes()


def test_different_seed_traces_diverge_in_simulation_records(tmp_path):
    from repro.obs.cli import diff_traces

    paths = {}
    for seed in (0, 1):
        paths[seed] = tmp_path / f"seed{seed}.jsonl"
        run_experiment(_config(seed, "FPSMA", trace=str(paths[seed])))
    divergence = diff_traces(load_trace(paths[0]), load_trace(paths[1]))
    assert divergence is not None
    index, ra, rb = divergence
    assert ra is not None and rb is not None
    # The first divergent record is a simulated one, not metadata.
    assert ra["k"] not in ("header", "run_start")


def test_env_var_activates_tracing(tmp_path, monkeypatch):
    target = tmp_path / "env.jsonl"
    monkeypatch.setenv("REPRO_TRACE", str(target))
    run_experiment(_config(0, "FPSMA"))
    assert target.exists()
    assert validate_trace(load_trace(target)) == []


def test_trace_field_changes_the_cache_key():
    from repro.experiments.engine import config_key

    plain = _config(0, "FPSMA")
    traced = _config(0, "FPSMA", trace="/tmp/t.jsonl")
    assert config_key(plain) != config_key(traced)


def test_tracer_detaches_after_the_run(tmp_path):
    from repro.sim.core import Environment

    run_experiment(_config(0, "FPSMA", trace=str(tmp_path / "t.jsonl")))
    env = Environment()
    assert env._tracer is None


def test_disabled_tracing_leaves_the_hot_path_untouched():
    """set_tracer(None) must restore the raw queue-push fast path."""
    from repro.sim.core import Environment

    env = Environment()
    assert env._tracer is None
    assert env._push == env._queue.push

    class Sink:
        def write(self, record):
            pass

        def close(self):
            pass

    from repro.obs.trace import Tracer

    env.set_tracer(Tracer(Sink()))
    assert env._push != env._queue.push
    env.set_tracer(None)
    assert env._push == env._queue.push
