"""Logging setup: level resolution, idempotence, capture-safe stderr."""

from __future__ import annotations

import io
import logging
import sys

import pytest

from repro.obs.log import (
    LOG_LEVEL_ENV,
    ROOT_LOGGER,
    _resolve_level,
    get_logger,
    setup_logging,
)


@pytest.fixture(autouse=True)
def _reset_repro_logger():
    """Each test gets a pristine ``repro`` logger."""
    logger = logging.getLogger(ROOT_LOGGER)
    saved = (list(logger.handlers), logger.level, logger.propagate)
    logger.handlers.clear()
    yield
    logger.handlers[:], logger.level, logger.propagate = saved[0], saved[1], saved[2]


def test_get_logger_lives_under_repro():
    assert get_logger().name == ROOT_LOGGER
    assert get_logger("cli").name == f"{ROOT_LOGGER}.cli"
    assert get_logger("cli").parent is get_logger()


def test_level_defaults_to_warning(monkeypatch):
    monkeypatch.delenv(LOG_LEVEL_ENV, raising=False)
    assert _resolve_level(None, False) == logging.WARNING


def test_quiet_beats_everything(monkeypatch):
    monkeypatch.setenv(LOG_LEVEL_ENV, "debug")
    assert _resolve_level("debug", True) == logging.ERROR


def test_explicit_level_beats_environment(monkeypatch):
    monkeypatch.setenv(LOG_LEVEL_ENV, "error")
    assert _resolve_level("info", False) == logging.INFO


def test_environment_level_applies(monkeypatch):
    monkeypatch.setenv(LOG_LEVEL_ENV, "debug")
    assert _resolve_level(None, False) == logging.DEBUG


def test_numeric_levels_pass_through():
    assert _resolve_level("15", False) == 15


def test_unknown_level_raises():
    with pytest.raises(ValueError, match="unknown log level"):
        _resolve_level("loud", False)


def test_setup_is_idempotent():
    first = setup_logging("info")
    second = setup_logging("debug")
    assert first is second
    assert len(first.handlers) == 1
    assert first.level == logging.DEBUG


def test_handler_resolves_stderr_at_emit_time(monkeypatch):
    logger = setup_logging("info")
    replacement = io.StringIO()
    monkeypatch.setattr(sys, "stderr", replacement)
    logger.warning("hello from the test")
    assert "WARNING repro: hello from the test" in replacement.getvalue()


def test_explicit_stream_pins(monkeypatch):
    pinned = io.StringIO()
    logger = setup_logging("info", stream=pinned)
    monkeypatch.setattr(sys, "stderr", io.StringIO())
    logger.error("pinned message")
    assert "pinned message" in pinned.getvalue()
    assert sys.stderr.getvalue() == ""


def test_repro_records_do_not_propagate_to_root():
    logger = setup_logging("info", stream=io.StringIO())
    assert logger.propagate is False
