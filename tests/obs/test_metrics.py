"""The metrics registry: counters, gauges, histograms, snapshots."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)


def test_counter_counts_up():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    assert counter.snapshot() == 5


def test_counter_rejects_negative_increments():
    counter = Counter()
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert counter.value == 0


def test_counter_zero_increment_is_allowed():
    counter = Counter()
    counter.inc(0)
    assert counter.value == 0


def test_gauge_moves_both_ways():
    gauge = Gauge()
    gauge.inc()
    gauge.inc(2.5)
    gauge.dec()
    assert gauge.snapshot() == pytest.approx(2.5)
    gauge.set(-3.0)
    assert gauge.snapshot() == pytest.approx(-3.0)


def test_histogram_summary_statistics():
    histogram = Histogram()
    for value in (0.5, 1.0, 2.0, 0.25):
        histogram.observe(value)
    snap = histogram.snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(3.75)
    assert snap["min"] == pytest.approx(0.25)
    assert snap["max"] == pytest.approx(2.0)
    assert snap["mean"] == pytest.approx(3.75 / 4)
    assert sum(snap["buckets"]) == 4


def test_histogram_buckets_are_powers_of_two_over_base():
    histogram = Histogram(base=1.0)
    # [0, 1) -> bucket 0, [1, 2) -> bucket 1, [2, 4) -> bucket 2, ...
    histogram.observe(0.5)
    histogram.observe(1.5)
    histogram.observe(3.0)
    histogram.observe(5.0)
    assert histogram.buckets[:4] == [1, 1, 1, 1]


def test_histogram_huge_values_land_in_last_bucket():
    histogram = Histogram(base=0.001)
    histogram.observe(1e30)
    assert histogram.buckets[-1] == 1


def test_histogram_snapshot_elides_trailing_empty_buckets():
    histogram = Histogram(base=1.0)
    histogram.observe(0.5)
    assert histogram.snapshot()["buckets"] == [1]


def test_histogram_rejects_non_positive_base():
    with pytest.raises(ValueError):
        Histogram(base=0.0)


def test_registry_get_or_create_is_stable():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c") is registry.histogram("c")


def test_registry_rejects_kind_clashes():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")
    with pytest.raises(TypeError):
        registry.histogram("x")


def test_registry_snapshot_is_sorted_and_json_shaped():
    import json

    registry = MetricsRegistry()
    registry.counter("z.count").inc(2)
    registry.gauge("a.depth").set(1.5)
    registry.histogram("m.lat").observe(0.01)
    snap = registry.snapshot()
    assert list(snap) == sorted(snap)
    assert snap["z.count"] == 2
    assert snap["a.depth"] == 1.5
    assert snap["m.lat"]["count"] == 1
    json.dumps(snap)  # must be wire-able


def test_registry_reset_drops_everything():
    registry = MetricsRegistry()
    registry.counter("x").inc()
    registry.reset()
    assert registry.snapshot() == {}
    assert registry.counter("x").value == 0


def test_registry_concurrent_creation_yields_one_metric():
    registry = MetricsRegistry()
    results = []

    def create():
        results.append(registry.counter("shared"))

    threads = [threading.Thread(target=create) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert all(metric is results[0] for metric in results)


def test_global_registry_is_a_singleton():
    assert get_registry() is get_registry()
    assert isinstance(get_registry(), MetricsRegistry)
