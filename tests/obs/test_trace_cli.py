"""The ``repro-cli trace`` subcommand: summary, timeline, diff, validate."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import main
from repro.obs.cli import diff_traces, summarize_trace, timeline_report
from repro.obs.trace import TRACE_SCHEMA


def _write_trace(path, records):
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return str(path)


def _run_records(seed=0, divergence_at=None):
    """A small synthetic run trace; *divergence_at* perturbs one record."""
    records = [
        {"k": "header", "schema": TRACE_SCHEMA, "label": "X/Wm", "seed": seed},
        {"k": "run_start", "label": "X/Wm", "seed": seed},
        {"k": "sched", "t": 0.0, "pr": 0, "id": 1, "e": "Timeout"},
        {"k": "ev", "t": 10.0, "pr": 0, "e": "Timeout"},
        {"k": "hook", "t": 10.0, "e": "job_submitted", "digest": "aa", "job": "j1"},
        {"k": "hook", "t": 20.0, "e": "job_started", "digest": "bb", "job": "j1"},
        {"k": "hook", "t": 90.0, "e": "job_ended", "digest": "cc", "job": "j1"},
        {"k": "queue", "t": 90.0, "pending": 3, "processed": 64},
        {"k": "run_end", "t": 90.0, "events": 2, "all_done": True, "digest": "dd"},
    ]
    if divergence_at is not None:
        records[divergence_at] = dict(records[divergence_at], t=999.0)
    return records


def test_summary_reports_counts_and_metadata():
    report = summarize_trace(_run_records())
    assert "9 records" in report
    assert f"schema {TRACE_SCHEMA}" in report
    assert "label=X/Wm" in report
    assert "seed=0" in report
    assert "job_submitted" in report
    assert "peak pending events: 3" in report
    assert "run end: t=90.0" in report


def test_timeline_draws_each_job():
    report = timeline_report(_run_records())
    assert "j1" in report
    assert "=" in report  # a running span
    assert "running jobs" in report


def test_timeline_without_hooks_says_so():
    report = timeline_report([{"k": "header", "schema": TRACE_SCHEMA}])
    assert "nothing to draw" in report


def test_diff_skips_metadata_by_default():
    a = _run_records(seed=0)
    b = _run_records(seed=1)  # differs only in header/run_start
    assert diff_traces(a, b) is None
    divergence = diff_traces(a, b, include_meta=True)
    assert divergence is not None and divergence[0] == 0


def test_diff_pinpoints_first_divergent_record():
    a = _run_records()
    b = _run_records(divergence_at=3)  # the "ev" record, index 1 post-filter
    divergence = diff_traces(a, b)
    assert divergence is not None
    index, ra, rb = divergence
    assert index == 1
    assert ra["t"] == 10.0 and rb["t"] == 999.0


def test_diff_handles_prefix_traces():
    a = _run_records()
    divergence = diff_traces(a, a[:-1])
    assert divergence is not None
    index, ra, rb = divergence
    assert ra is not None and rb is None


# -- end-to-end through the repro-cli entry point ------------------------------


def test_cli_validate_ok_and_exit_codes(tmp_path, capsys):
    good = _write_trace(tmp_path / "good.jsonl", _run_records())
    assert main(["trace", "validate", good]) == 0
    assert "valid: 9 records" in capsys.readouterr().out

    bad = _write_trace(tmp_path / "bad.jsonl", [{"k": "zzz"}])
    assert main(["trace", "validate", bad]) == 1
    assert "invalid:" in capsys.readouterr().err


def test_cli_summary_and_timeline(tmp_path, capsys):
    trace = _write_trace(tmp_path / "t.jsonl", _run_records())
    assert main(["trace", "summary", trace]) == 0
    assert "records by kind" in capsys.readouterr().out
    assert main(["trace", "timeline", trace, "--width", "40"]) == 0
    assert "job timeline" in capsys.readouterr().out


def test_cli_diff_exit_codes(tmp_path, capsys):
    a = _write_trace(tmp_path / "a.jsonl", _run_records(seed=0))
    b = _write_trace(tmp_path / "b.jsonl", _run_records(seed=1))
    c = _write_trace(tmp_path / "c.jsonl", _run_records(seed=1, divergence_at=5))

    assert main(["trace", "diff", a, b]) == 0  # metadata-only difference
    assert "identical" in capsys.readouterr().out

    assert main(["trace", "diff", a, c]) == 1
    out = capsys.readouterr().out
    assert "first divergence at record" in out
    assert "sim-time" in out

    assert main(["trace", "diff", a, b, "--include-meta"]) == 1


def test_cli_missing_file_is_a_clean_error(tmp_path, capsys):
    assert main(["trace", "summary", str(tmp_path / "nope.jsonl")]) == 2
    assert "error:" in capsys.readouterr().err


@pytest.mark.parametrize("op", ["summary", "timeline", "validate"])
def test_cli_garbage_file_is_a_clean_error(tmp_path, capsys, op):
    path = tmp_path / "garbage.jsonl"
    path.write_text("this is not json\n")
    assert main(["trace", op, str(path)]) == 2
    assert "error:" in capsys.readouterr().err
