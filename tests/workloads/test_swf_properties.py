"""Property-based tests (hypothesis) of the SWF layer.

Two round-trip contracts hold for *arbitrary* valid inputs, not just the
hand-written samples:

* ``SwfJob -> as_line() -> parse_line()`` preserves every field value
  exactly, whatever mix of integers, floats and exponent-notation numbers
  the record carries;
* ``WorkloadSpec -> SwfWriter.from_workload -> workload_from_swf`` preserves
  the arrival order, submit times, job sizes and application profiles of any
  valid specification (runtimes live in the SWF record layer and round-trip
  there).

The suite runs with ``derandomize=True``: every CI matrix entry executes the
same example sequence, so a failure reproduces everywhere.
"""

from __future__ import annotations

import io

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.koala import JobKind  # noqa: E402
from repro.workloads import (  # noqa: E402
    JobSpec,
    SwfJob,
    SwfField,
    SwfReader,
    SwfWriter,
    WorkloadSpec,
    workload_from_swf,
)

# Deterministic in CI: same examples on every interpreter of the matrix.
settings.register_profile(
    "repro-deterministic", deadline=None, derandomize=True, max_examples=60
)
settings.load_profile("repro-deterministic")


# -- strategies ----------------------------------------------------------------

#: One SWF field: an integer, or a finite float (SWF has no NaN semantics —
#: and NaN would break equality-based round-trip checking anyway).
field_values = st.one_of(
    st.integers(min_value=-(10**12), max_value=10**12),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
)

swf_records = st.tuples(*([field_values] * len(SwfField))).map(
    lambda fields: SwfJob(fields=fields)
)


@st.composite
def workload_specs(draw):
    """Valid workload specifications with rebasing-friendly submit times."""
    count = draw(st.integers(min_value=1, max_value=25))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
            min_size=count,
            max_size=count,
        )
    )
    jobs = []
    time = 0.0
    for index, gap in enumerate(gaps):
        if index > 0:
            time += gap
        profile = draw(st.sampled_from(["gadget2", "ft"]))
        maximum = draw(st.integers(min_value=2, max_value=64))
        jobs.append(
            JobSpec(
                submit_time=time,
                profile_name=profile,
                kind=JobKind.MALLEABLE,
                initial_processors=2,
                minimum_processors=2,
                maximum_processors=maximum,
                name=f"job-{index + 1}",
            )
        )
    return WorkloadSpec(name="prop", jobs=jobs)


# -- record-level round trip ---------------------------------------------------


@given(record=swf_records)
def test_swf_record_round_trips_exactly_through_text(record):
    line = record.as_line()
    reparsed = SwfReader().parse_line(line)
    assert reparsed is not None
    assert len(reparsed.fields) == len(record.fields)
    for original, parsed in zip(record.fields, reparsed.fields):
        assert parsed == original  # numeric equality: 45 == 45.0 is fine
    # Round-tripping again is a fixed point: the text form is canonical.
    assert reparsed.as_line() == SwfReader().parse_line(reparsed.as_line()).as_line()


@given(records=st.lists(swf_records, min_size=0, max_size=20))
def test_swf_file_round_trips_exactly_through_writer(records):
    buffer = io.StringIO()
    SwfWriter(header=["property round trip"]).write(records, buffer)
    reparsed = SwfReader().read(io.StringIO(buffer.getvalue()))
    assert len(reparsed) == len(records)
    for original, parsed in zip(records, reparsed):
        assert all(a == b for a, b in zip(original.fields, parsed.fields))


@given(
    mantissa=st.integers(min_value=-9999, max_value=9999),
    exponent=st.integers(min_value=-8, max_value=8),
    upper=st.booleans(),
)
def test_exponent_notation_parses_like_its_float_value(mantissa, exponent, upper):
    # The regression the robust parser fixes: values like 1e3 / 2E-1 used to
    # hit int() and raise.  They must parse to the float they denote.
    marker = "E" if upper else "e"
    text = f"{mantissa}{marker}{exponent}"
    fields = ["1"] * len(SwfField)
    fields[SwfField.RUN_TIME] = text
    record = SwfReader().parse_line(" ".join(fields))
    assert record is not None
    assert record.fields[SwfField.RUN_TIME] == pytest.approx(float(text))


# -- workload-level round trip -------------------------------------------------


@given(spec=workload_specs())
def test_workload_round_trips_order_sizes_and_profiles(spec):
    records = SwfWriter.from_workload(spec, default_runtime=600.0)
    rebuilt = workload_from_swf(
        records,
        name="prop",
        profile_map={1: "gadget2", 2: "ft"},
        malleable=True,
        minimum_processors=2,
    )
    assert len(rebuilt) == len(spec)
    # Arrival order and submit times survive exactly (first submit is 0, so
    # the reader's rebasing is the identity).
    assert [job.submit_time for job in rebuilt] == [job.submit_time for job in spec]
    # Sizes: the SWF "requested processors" field carries the maximum.
    assert [job.maximum_processors for job in rebuilt] == [
        job.maximum_processors for job in spec
    ]
    assert all(job.minimum_processors == 2 for job in rebuilt)
    # Application profiles survive through the executable-field mapping.
    assert [job.profile_name for job in rebuilt] == [job.profile_name for job in spec]
    # Runtimes live in the record layer: every record carries the declared one.
    assert all(record.run_time == 600.0 for record in records)


@given(spec=workload_specs())
def test_workload_round_trip_is_idempotent(spec):
    once = workload_from_swf(
        SwfWriter.from_workload(spec), profile_map={1: "gadget2", 2: "ft"}
    )
    twice = workload_from_swf(
        SwfWriter.from_workload(once), profile_map={1: "gadget2", 2: "ft"}
    )
    assert [(j.submit_time, j.maximum_processors, j.profile_name) for j in twice] == [
        (j.submit_time, j.maximum_processors, j.profile_name) for j in once
    ]
