"""Unit tests of the trace subsystem: transforms, registry, refs, streaming."""

from __future__ import annotations

import io

import pytest

from repro.koala import JobKind
from repro.workloads import (
    HeadLimit,
    LoadFactor,
    ShrinkProcessors,
    StreamingWorkload,
    SwfField,
    SwfReader,
    SwfWriter,
    TimeWindow,
    TraceRef,
    apply_transforms,
    build_named_workload,
    build_trace_workload,
    is_trace_reference,
    iter_jobspecs,
    known_traces,
    open_trace,
    register_trace,
    stream_trace_jobspecs,
    synthetic_das3_trace,
)


def make_records(submits, sizes=None, runtimes=None):
    """Tiny valid SWF records at the given submit times."""
    sizes = sizes or [4] * len(submits)
    runtimes = runtimes or [600] * len(submits)
    records = []
    for index, (submit, size, runtime) in enumerate(zip(submits, sizes, runtimes), 1):
        fields = [0] * len(SwfField)
        fields[SwfField.JOB_NUMBER] = index
        fields[SwfField.SUBMIT_TIME] = submit
        fields[SwfField.RUN_TIME] = runtime
        fields[SwfField.ALLOCATED_PROCESSORS] = size
        fields[SwfField.REQUESTED_PROCESSORS] = size
        fields[SwfField.STATUS] = 1
        fields[SwfField.EXECUTABLE] = 1
        records.append(SwfReader().parse_line(" ".join(str(f) for f in fields)))
    return records


# -- transforms ---------------------------------------------------------------


def test_time_window_slices_on_the_trace_clock():
    records = make_records([0, 100, 200, 300, 400])
    kept = list(TimeWindow(start=100, end=300)(iter(records)))
    assert [r.submit_time for r in kept] == [100, 200]


def test_time_window_stops_reading_after_the_end():
    # The source is a generator; passing the window end must stop consuming it.
    consumed = []

    def source():
        for record in make_records([0, 100, 200, 300]):
            consumed.append(record.submit_time)
            yield record

    list(TimeWindow(end=150)(source()))
    assert consumed == [0, 100, 200]  # 300 never read


def test_time_window_validates_bounds():
    with pytest.raises(ValueError):
        TimeWindow(start=10, end=10)


def test_load_factor_rescales_gaps_not_absolute_times():
    records = make_records([1000, 1100, 1300])
    rescaled = list(LoadFactor(2.0)(iter(records)))
    # First submission keeps its time; gaps of 100 and 200 halve to 50 and 100.
    assert [r.submit_time for r in rescaled] == [1000, 1050, 1150]
    relaxed = list(LoadFactor(0.5)(iter(records)))
    assert [r.submit_time for r in relaxed] == [1000, 1200, 1600]


def test_load_factor_rejects_non_positive():
    with pytest.raises(ValueError):
        LoadFactor(0.0)


def test_shrink_processors_caps_requests():
    records = make_records([0, 10], sizes=[128, 8])
    shrunk = list(ShrinkProcessors(85)(iter(records)))
    assert [r.requested_processors for r in shrunk] == [85, 8]
    assert shrunk[0].fields[SwfField.ALLOCATED_PROCESSORS] == 85


def test_head_limit_truncates_lazily():
    infinite = synthetic_das3_trace(jobs=10_000)
    assert len(list(HeadLimit(7)(infinite))) == 7


def test_transforms_compose_in_order():
    records = make_records([0, 100, 200, 300], sizes=[128, 4, 64, 8])
    out = list(
        apply_transforms(
            iter(records), [TimeWindow(end=250), LoadFactor(2.0), ShrinkProcessors(50)]
        )
    )
    assert [r.submit_time for r in out] == [0, 50, 100]
    assert [r.requested_processors for r in out] == [50, 4, 50]


# -- malleable-fraction tagging ----------------------------------------------


def test_iter_jobspecs_tags_a_deterministic_fraction_malleable():
    records = make_records(list(range(0, 2000, 10)))
    specs_a = list(iter_jobspecs(iter(records), malleable_fraction=0.5, malleable_seed=3))
    specs_b = list(iter_jobspecs(iter(records), malleable_fraction=0.5, malleable_seed=3))
    kinds_a = [spec.kind for spec in specs_a]
    assert kinds_a == [spec.kind for spec in specs_b]
    malleable = sum(1 for kind in kinds_a if kind is JobKind.MALLEABLE)
    assert 0 < malleable < len(specs_a)
    # A different seed re-deals the tags.
    specs_c = list(iter_jobspecs(iter(records), malleable_fraction=0.5, malleable_seed=4))
    assert kinds_a != [spec.kind for spec in specs_c]


def test_iter_jobspecs_tags_are_stable_under_truncation():
    records = make_records(list(range(0, 500, 10)))
    full = list(iter_jobspecs(iter(records), malleable_fraction=0.5, malleable_seed=1))
    truncated = list(
        iter_jobspecs(iter(records), malleable_fraction=0.5, malleable_seed=1, max_jobs=20)
    )
    assert [spec.kind for spec in truncated] == [spec.kind for spec in full[:20]]


def test_iter_jobspecs_rejects_bad_fraction():
    with pytest.raises(ValueError):
        list(iter_jobspecs(iter([]), malleable_fraction=1.5))


# -- synthetic trace and registry ---------------------------------------------


def test_synthetic_trace_is_deterministic_and_streamable():
    first = [r.fields for r in synthetic_das3_trace(jobs=50)]
    second = [r.fields for r in synthetic_das3_trace(jobs=50)]
    assert first == second
    assert all(
        1 <= r.requested_processors <= 85 and r.valid
        for r in synthetic_das3_trace(jobs=50)
    )
    # A different trace seed is a different trace.
    assert first != [r.fields for r in synthetic_das3_trace(jobs=50, trace_seed=1)]


def test_synthetic_trace_round_trips_through_swf_text():
    records = list(synthetic_das3_trace(jobs=20))
    buffer = io.StringIO()
    SwfWriter().write(records, buffer)
    reparsed = SwfReader().read(io.StringIO(buffer.getvalue()))
    assert [r.fields for r in reparsed] == [r.fields for r in records]


def test_registry_lists_and_opens_the_bundled_trace():
    names = [name for name, _ in known_traces()]
    assert "das3-synthetic" in names
    records = list(open_trace("das3-synthetic", jobs=5))
    assert len(records) == 5


def test_register_trace_rejects_duplicates_and_unknown_names():
    with pytest.raises(ValueError):
        register_trace("das3-synthetic", synthetic_das3_trace)
    with pytest.raises(ValueError, match="unknown trace"):
        open_trace("no-such-trace")


def test_swf_files_are_discovered_as_traces(tmp_path, monkeypatch):
    path = tmp_path / "mini.swf"
    SwfWriter().write(make_records([0, 60, 120]), path)
    monkeypatch.setenv("REPRO_TRACES_DIR", str(tmp_path))
    assert ("mini", f"SWF file {path}") in known_traces()
    assert len(list(open_trace("mini"))) == 3
    # File traces accept no opener parameters.
    with pytest.raises(ValueError, match="no opener parameters"):
        open_trace("mini", jobs=5)
    # A direct path also works, registry or not.
    assert len(list(open_trace(str(path)))) == 3


# -- trace references ----------------------------------------------------------


def test_trace_ref_parses_and_canonicalises():
    ref = TraceRef.parse("trace:das3-synthetic?malleable=0.5&load_factor=2&jobs=100")
    assert ref.trace == "das3-synthetic"
    assert ref.params == {"malleable": 0.5, "load_factor": 2, "jobs": 100}
    assert (
        ref.canonical() == "trace:das3-synthetic?jobs=100&load_factor=2&malleable=0.5"
    )
    assert ref.opener_params() == {"jobs": 100}
    assert is_trace_reference("trace:x") and not is_trace_reference("Wm")


def test_trace_ref_rejects_malformed_input():
    with pytest.raises(ValueError):
        TraceRef.parse("trace:")
    with pytest.raises(ValueError):
        TraceRef.parse("trace:x?budget")
    with pytest.raises(ValueError, match="window"):
        TraceRef.parse("trace:das3-synthetic?window=42").transforms()


def test_trace_ref_window_accepts_open_sides():
    transforms = TraceRef.parse("trace:x?window=100:").transforms()
    assert transforms == [TimeWindow(start=100.0, end=None)]
    transforms = TraceRef.parse("trace:x?window=:200").transforms()
    assert transforms == [TimeWindow(start=None, end=200.0)]


def test_build_trace_workload_applies_the_whole_pipeline():
    spec = build_trace_workload(
        "trace:das3-synthetic?jobs=200&load_factor=4&max_procs=16&malleable=0",
        job_count=50,
    )
    assert len(spec) == 50
    assert all(job.kind is JobKind.RIGID for job in spec)
    assert all((job.maximum_processors or 0) <= 16 for job in spec)
    # Factor 4 compresses the horizon to about a quarter.
    plain = build_trace_workload("trace:das3-synthetic?jobs=200&malleable=0", job_count=50)
    assert spec.duration == pytest.approx(plain.duration / 4, rel=0.01)


def test_trace_workloads_resolve_through_the_workload_registry(streams):
    reference = "trace:das3-synthetic?jobs=40&load_factor=2"
    via_registry = build_named_workload(reference, streams["workload"], job_count=15)
    direct = build_trace_workload(reference, job_count=15)
    assert [j.submit_time for j in via_registry] == [j.submit_time for j in direct]
    assert len(via_registry) == 15
    # The experiment rng must not influence trace content (a trace is data).
    other = build_named_workload(reference, streams["another"], job_count=15)
    assert [j.submit_time for j in other] == [j.submit_time for j in direct]


def test_unknown_workload_error_mentions_trace_prefix():
    with pytest.raises(ValueError, match="trace:"):
        build_named_workload("definitely-not-a-workload", None, job_count=1)


def test_trace_ref_validate_fails_fast_without_pulling_records():
    with pytest.raises(ValueError, match="unknown trace"):
        TraceRef.parse("trace:nope").validate()
    with pytest.raises(ValueError, match="rejected parameters"):
        TraceRef.parse("trace:das3-synthetic?bogus_param=1").validate()
    with pytest.raises(ValueError, match="load factor"):
        TraceRef.parse("trace:das3-synthetic?load_factor=-2").validate()
    with pytest.raises(ValueError, match="malleable"):
        TraceRef.parse("trace:das3-synthetic?malleable=1.5").validate()
    with pytest.raises(ValueError, match="jobs"):
        TraceRef.parse("trace:das3-synthetic?jobs=-5").validate()
    ref = TraceRef.parse("trace:das3-synthetic?jobs=10&load_factor=2&malleable=0.5")
    assert ref.validate() is ref


def test_generator_functions_validate_eagerly_not_at_first_next():
    # Both are plain functions returning generators, so bad arguments raise
    # here, not inside a consumer loop three layers away.
    with pytest.raises(ValueError):
        synthetic_das3_trace(jobs=-1)
    with pytest.raises(ValueError):
        iter_jobspecs(iter([]), malleable_fraction=2.0)


def test_trace_fingerprint_tracks_file_content(tmp_path, monkeypatch):
    from repro.workloads import trace_fingerprint

    path = tmp_path / "edit.swf"
    SwfWriter().write(make_records([0, 60]), path)
    monkeypatch.setenv("REPRO_TRACES_DIR", str(tmp_path))
    by_name = trace_fingerprint("trace:edit")
    by_path = trace_fingerprint(f"trace:{path}")
    assert by_name is not None and by_name == by_path
    # Editing the file changes the fingerprint (and thus the cache key).
    SwfWriter().write(make_records([0, 60, 120]), path)
    assert trace_fingerprint("trace:edit") != by_name
    # Registered traces are deterministic code: no fingerprint needed.
    assert trace_fingerprint("trace:das3-synthetic?jobs=5") is None
    assert trace_fingerprint("trace:") is None  # malformed -> fails at build


def test_config_cache_key_includes_file_trace_fingerprint(tmp_path, monkeypatch):
    from repro.experiments.engine import config_key
    from repro.experiments.setup import ExperimentConfig

    path = tmp_path / "keyed.swf"
    SwfWriter().write(make_records([0, 60]), path)
    monkeypatch.setenv("REPRO_TRACES_DIR", str(tmp_path))
    config = ExperimentConfig(workload=f"trace:{path}", job_count=2)
    assert "workload_fingerprint" in config.to_dict()
    before = config_key(config)
    SwfWriter().write(make_records([0, 60, 120]), path)
    assert config_key(config) != before
    # The derived key round-trips away cleanly.
    assert ExperimentConfig.from_dict(config.to_dict()).workload == config.workload


# -- streaming workload --------------------------------------------------------


def test_streaming_workload_matches_materialised_spec():
    reference = "trace:das3-synthetic?jobs=60&malleable=0.5"
    streaming = StreamingWorkload.from_reference(reference, job_count=25)
    materialised = build_trace_workload(reference, job_count=25)
    streamed = list(streaming)
    assert [(s.submit_time, s.name, s.kind) for s in streamed] == [
        (s.submit_time, s.name, s.kind) for s in materialised
    ]
    assert streaming.duration == materialised.duration
    assert streaming.submitted_count == len(materialised)


def test_streaming_workload_is_restartable():
    streaming = StreamingWorkload.from_reference("trace:das3-synthetic?jobs=10")
    first = [s.submit_time for s in streaming]
    second = [s.submit_time for s in streaming]
    assert first == second


def test_stream_trace_jobspecs_is_lazy():
    stream = stream_trace_jobspecs("trace:das3-synthetic?jobs=100000")
    import itertools

    head = list(itertools.islice(stream, 5))
    assert len(head) == 5
