"""Tests of the workload submitter (the simulated client site)."""

from __future__ import annotations


from repro.cluster import Multicluster
from repro.koala import JobKind, KoalaScheduler, SchedulerConfig
from repro.sim import RandomStreams
from repro.workloads import JobSpec, WorkloadSpec, WorkloadSubmitter


def build_scheduler(env, nodes=48):
    streams = RandomStreams(seed=17)
    system = Multicluster(env, streams=streams, gram_submission_latency=1.0)
    system.add_cluster("alpha", nodes)
    scheduler = KoalaScheduler(
        env,
        system,
        SchedulerConfig(poll_interval=10.0, adaptation_point_interval=0.0),
        streams=streams,
    )
    return system, scheduler


def small_workload():
    return WorkloadSpec(
        name="tiny",
        jobs=[
            JobSpec(submit_time=0.0, profile_name="ft", name="a"),
            JobSpec(submit_time=30.0, profile_name="gadget2", name="b"),
            JobSpec(submit_time=60.0, profile_name="ft", kind=JobKind.RIGID, name="c"),
        ],
    )


def test_jobs_are_submitted_at_their_specified_times(env):
    system, scheduler = build_scheduler(env)
    submitter = WorkloadSubmitter(env, scheduler, small_workload())
    env.run(until=29.0)
    assert submitter.submitted_count == 1
    env.run(until=61.0)
    assert submitter.submitted_count == 3
    assert submitter.all_submitted.triggered
    submit_times = [job.submit_time for job in submitter.jobs]
    assert submit_times == [0.0, 30.0, 60.0]
    assert [job.name for job in submitter.jobs] == ["a", "b", "c"]


def test_spec_of_links_jobs_back_to_their_specs(env):
    system, scheduler = build_scheduler(env)
    submitter = WorkloadSubmitter(env, scheduler, small_workload())
    env.run(until=100.0)
    for job in submitter.jobs:
        spec = submitter.spec_of[job.job_id]
        assert spec.name == job.name
        assert (job.kind is JobKind.RIGID) == (spec.kind is JobKind.RIGID)


def test_completion_event_fires_once_everything_finished(env):
    system, scheduler = build_scheduler(env)
    submitter = WorkloadSubmitter(env, scheduler, small_workload())
    done = submitter.completion_event()

    def waiter(env, done):
        count = yield done
        return (env.now, count)

    waiter_proc = env.process(waiter(env, done))
    env.run(until=5000)
    assert scheduler.all_done
    assert waiter_proc.value[1] == 3
    assert waiter_proc.value[0] >= 60.0


def test_empty_workload_submits_nothing(env):
    system, scheduler = build_scheduler(env)
    submitter = WorkloadSubmitter(env, scheduler, WorkloadSpec(name="empty"))
    env.run(until=10.0)
    assert submitter.submitted_count == 0
    assert submitter.all_submitted.triggered
    assert scheduler.all_done
