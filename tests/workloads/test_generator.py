"""Unit tests of the workload specifications and generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.koala import JobKind
from repro.sim import RandomStreams
from repro.workloads import (
    JobSpec,
    WorkloadGenerator,
    WorkloadSpec,
    wm_prime_workload,
    wm_workload,
    wmr_prime_workload,
    wmr_workload,
)


def rng(seed=1):
    return RandomStreams(seed)["workload"]


# ---------------------------------------------------------------------------
# JobSpec / WorkloadSpec
# ---------------------------------------------------------------------------


def test_job_spec_validation():
    with pytest.raises(ValueError):
        JobSpec(submit_time=-1, profile_name="ft")
    with pytest.raises(ValueError):
        JobSpec(submit_time=0, profile_name="ft", initial_processors=0)
    with pytest.raises(ValueError):
        JobSpec(submit_time=0, profile_name="ft", minimum_processors=4, maximum_processors=2)


def test_job_spec_builds_matching_jobs():
    malleable = JobSpec(submit_time=0, profile_name="gadget2", kind=JobKind.MALLEABLE)
    rigid = JobSpec(
        submit_time=0, profile_name="ft", kind=JobKind.RIGID, initial_processors=2
    )
    job_m = malleable.build_job()
    job_r = rigid.build_job()
    assert job_m.is_malleable and job_m.maximum_processors == 46
    assert not job_r.is_malleable and job_r.total_processors == 2
    assert not job_r.profile.malleable


def test_workload_spec_sorts_and_summarises():
    spec = WorkloadSpec(
        name="test",
        jobs=[
            JobSpec(submit_time=100, profile_name="ft"),
            JobSpec(submit_time=0, profile_name="gadget2"),
            JobSpec(submit_time=50, profile_name="ft", kind=JobKind.RIGID),
        ],
    )
    assert [job.submit_time for job in spec] == [0, 50, 100]
    assert len(spec) == 3
    assert spec.duration == 100
    assert spec.malleable_fraction == pytest.approx(2 / 3)
    assert spec.profile_counts() == {"ft": 2, "gadget2": 1}
    assert spec[0].profile_name == "gadget2"


def test_workload_subset_and_scaling():
    spec = wm_workload(rng(), job_count=10)
    subset = spec.subset(4)
    assert len(subset) == 4
    assert subset.jobs == spec.jobs[:4]
    compressed = spec.scaled_arrivals(0.25)
    assert compressed.duration == pytest.approx(spec.duration * 0.25)
    assert len(compressed) == len(spec)
    with pytest.raises(ValueError):
        spec.scaled_arrivals(0)


# ---------------------------------------------------------------------------
# Paper workloads
# ---------------------------------------------------------------------------


def test_wm_is_all_malleable_with_two_minute_arrivals():
    spec = wm_workload(rng(), job_count=50)
    assert len(spec) == 50
    assert spec.malleable_fraction == 1.0
    gaps = [b.submit_time - a.submit_time for a, b in zip(spec.jobs, spec.jobs[1:])]
    assert all(gap == pytest.approx(120.0) for gap in gaps)
    # Initial and minimum sizes are 2; maxima follow the paper (32 FT, 46 GADGET).
    assert all(job.initial_processors == 2 for job in spec)
    for job in spec:
        expected_max = 32 if job.profile_name == "ft" else 46
        assert job.maximum_processors == expected_max


def test_wmr_is_half_rigid_with_size_two():
    spec = wmr_workload(rng(), job_count=200)
    rigid = [job for job in spec if job.kind is JobKind.RIGID]
    assert 0.35 < len(rigid) / len(spec) < 0.65
    assert all(job.initial_processors == 2 for job in rigid)
    assert all(job.maximum_processors == job.initial_processors for job in rigid)


def test_prime_workloads_use_thirty_second_arrivals():
    spec = wm_prime_workload(rng(), job_count=20)
    gaps = [b.submit_time - a.submit_time for a, b in zip(spec.jobs, spec.jobs[1:])]
    assert all(gap == pytest.approx(30.0) for gap in gaps)
    spec_mixed = wmr_prime_workload(rng(), job_count=20)
    assert spec_mixed.duration == pytest.approx(19 * 30.0)


def test_workloads_mix_both_applications_roughly_uniformly():
    spec = wm_workload(rng(), job_count=300)
    counts = spec.profile_counts()
    assert set(counts) == {"ft", "gadget2"}
    assert 0.35 < counts["ft"] / 300 < 0.65


def test_generator_is_reproducible_and_seed_sensitive():
    a = wm_workload(rng(seed=5), job_count=30)
    b = wm_workload(rng(seed=5), job_count=30)
    c = wm_workload(rng(seed=6), job_count=30)
    assert [j.profile_name for j in a] == [j.profile_name for j in b]
    assert [j.profile_name for j in a] != [j.profile_name for j in c]


def test_generator_validation():
    with pytest.raises(ValueError):
        WorkloadGenerator(job_count=-1)
    with pytest.raises(ValueError):
        WorkloadGenerator(interarrival=0)
    with pytest.raises(ValueError):
        WorkloadGenerator(malleable_fraction=1.5)
    with pytest.raises(ValueError):
        WorkloadGenerator(profiles=())


def test_poisson_arrivals_vary_but_keep_the_mean():
    generator = WorkloadGenerator(job_count=200, interarrival=60.0, poisson_arrivals=True)
    spec = generator.generate(rng(7), name="poisson")
    gaps = [b.submit_time - a.submit_time for a, b in zip(spec.jobs, spec.jobs[1:])]
    assert len(set(round(g, 3) for g in gaps)) > 10
    assert 40.0 < sum(gaps) / len(gaps) < 80.0


@given(
    job_count=st.integers(min_value=0, max_value=60),
    malleable_fraction=st.floats(min_value=0.0, max_value=1.0),
    interarrival=st.floats(min_value=1.0, max_value=600.0),
)
@settings(max_examples=40, deadline=None)
def test_generated_workloads_are_well_formed(job_count, malleable_fraction, interarrival):
    """Every generated workload is sorted, has the requested size and only
    contains jobs with consistent size bounds."""
    generator = WorkloadGenerator(
        job_count=job_count,
        interarrival=interarrival,
        malleable_fraction=malleable_fraction,
    )
    spec = generator.generate(rng(3), name="prop")
    assert len(spec) == job_count
    times = [job.submit_time for job in spec]
    assert times == sorted(times)
    for job in spec:
        assert job.minimum_processors <= (job.maximum_processors or job.minimum_processors)
        assert job.initial_processors >= 1
