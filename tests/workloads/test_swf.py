"""Unit tests of the Standard Workload Format reader/writer and conversion."""

from __future__ import annotations

import io

import pytest

from repro.koala import JobKind
from repro.sim import RandomStreams
from repro.workloads import (
    SwfJob,
    SwfReader,
    SwfWriter,
    wm_workload,
    workload_from_swf,
)

SAMPLE_SWF = """\
; Version: 2.2
; Computer: DAS-3 (synthetic sample)
; MaxNodes: 272
1 0 10 300 4 -1 -1 4 600 -1 1 5 1 1 0 1 -1 -1
2 120 -1 0 0 -1 -1 8 600 -1 0 5 1 2 0 1 -1 -1
3 240 30 900 16 -1 -1 16 1200 -1 1 6 1 1 0 2 -1 -1
4 360 5 45.5 2 -1 -1 2 100 -1 1 6 1 2 0 2 -1 -1
"""


def test_reader_parses_records_and_header():
    reader = SwfReader()
    jobs = reader.read(io.StringIO(SAMPLE_SWF))
    assert len(jobs) == 4
    assert len(reader.header) == 3
    first = jobs[0]
    assert first.job_number == 1
    assert first.submit_time == 0
    assert first.run_time == 300
    assert first.requested_processors == 4
    assert first.status == 1
    assert first.valid
    # Job 2 never ran (zero runtime): invalid.
    assert not jobs[1].valid
    # Fractional runtimes parse as floats.
    assert jobs[3].run_time == pytest.approx(45.5)


def test_reader_rejects_malformed_lines():
    reader = SwfReader()
    with pytest.raises(ValueError):
        reader.parse_line("1 2 3")
    assert reader.parse_line("") is None
    assert reader.parse_line("; comment") is None


def test_reader_parses_exponent_notation():
    # Regression: "1e3" / "2E-1" have no "." so they used to hit int() and
    # raise; any spelling float() accepts must parse.
    line = "1 1e3 -1 2E-1 4 -1 -1 4 6.5e2 -1 1 5 1 1 0 1 -1 -1"
    record = SwfReader().parse_line(line)
    assert record is not None
    assert record.submit_time == 1000.0
    assert record.run_time == pytest.approx(0.2)
    assert record.fields[8] == 650.0
    # Plain integers still come back as exact ints, not floats.
    assert record.fields[0] == 1 and isinstance(record.fields[0], int)


def test_reader_rejects_non_numeric_fields():
    reader = SwfReader()
    with pytest.raises(ValueError, match="not a number"):
        reader.parse_line("1 abc -1 300 4 -1 -1 4 600 -1 1 5 1 1 0 1 -1 -1")


def test_exponent_records_survive_a_write_read_cycle():
    line = "7 1e3 -1 2E-1 4 -1 -1 4 600 -1 1 5 1 1 0 1 -1 -1"
    record = SwfReader().parse_line(line)
    reparsed = SwfReader().parse_line(record.as_line())
    assert reparsed.fields == record.fields


def test_iter_records_streams_lazily():
    lines = iter(SAMPLE_SWF.splitlines())
    stream = SwfReader().iter_records(lines)
    first = next(stream)
    assert first.job_number == 1
    # Only the consumed prefix of the source has been read.
    assert next(lines).startswith("2 ")


def test_swf_record_validation():
    with pytest.raises(ValueError):
        SwfJob(fields=(1, 2, 3))


def test_round_trip_through_writer():
    reader = SwfReader()
    jobs = reader.read(io.StringIO(SAMPLE_SWF))
    buffer = io.StringIO()
    SwfWriter(header=["Version: 2.2"]).write(jobs, buffer)
    reparsed = SwfReader().read(io.StringIO(buffer.getvalue()))
    assert [j.fields for j in reparsed] == [j.fields for j in jobs]
    assert buffer.getvalue().startswith("; Version: 2.2")


def test_workload_from_swf_skips_invalid_and_rebases_time():
    reader = SwfReader()
    jobs = reader.read(io.StringIO(SAMPLE_SWF))
    spec = workload_from_swf(jobs, name="sample", malleable=True, minimum_processors=2)
    # Job 2 is invalid, so three jobs remain; times are rebased to the first.
    assert len(spec) == 3
    assert spec[0].submit_time == 0.0
    assert spec[1].submit_time == 240.0
    assert all(job.kind is JobKind.MALLEABLE for job in spec)
    # Maximum sizes come from the requested processor counts.
    assert [job.maximum_processors for job in spec] == [4, 16, 2]
    assert all(job.minimum_processors == 2 for job in spec)


def test_workload_from_swf_rigid_mode_and_profile_map():
    jobs = SwfReader().read(io.StringIO(SAMPLE_SWF))
    spec = workload_from_swf(
        jobs,
        malleable=False,
        profile_map={1: "ft", 2: "gadget2"},
        max_jobs=2,
    )
    assert len(spec) == 2
    assert all(job.kind is JobKind.RIGID for job in spec)
    assert spec[0].profile_name == "ft"
    assert spec[1].profile_name == "ft"
    assert spec[0].initial_processors == 4


def test_generated_workload_exports_to_swf_and_back():
    original = wm_workload(RandomStreams(4)["workload"], job_count=25)
    records = SwfWriter.from_workload(original)
    assert len(records) == 25
    spec = workload_from_swf(records, name="round-trip")
    assert len(spec) == 25
    assert [job.submit_time for job in spec] == [job.submit_time for job in original]
    assert [job.maximum_processors for job in spec] == [
        job.maximum_processors for job in original
    ]


def test_swf_file_io(tmp_path):
    path = tmp_path / "trace.swf"
    path.write_text(SAMPLE_SWF, encoding="utf-8")
    jobs = SwfReader().read(path)
    assert len(jobs) == 4
    out_path = tmp_path / "out.swf"
    SwfWriter().write(jobs, out_path)
    assert len(SwfReader().read(out_path)) == 4
