"""Tests of the statistics primitives: bootstrap CIs and metric aggregates."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import MetricStats, bootstrap_ci


def test_bootstrap_ci_is_deterministic():
    samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
    assert bootstrap_ci(samples) == bootstrap_ci(samples)
    assert bootstrap_ci(samples) == bootstrap_ci(tuple(samples))


def test_bootstrap_ci_brackets_the_mean():
    samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
    lower, upper = bootstrap_ci(samples)
    mean = sum(samples) / len(samples)
    assert lower <= mean <= upper
    assert lower < upper


def test_bootstrap_ci_degenerate_sample_counts():
    assert all(math.isnan(bound) for bound in bootstrap_ci([]))
    assert bootstrap_ci([7.5]) == (7.5, 7.5)
    # A constant sample has a zero-width interval wherever it is resampled.
    assert bootstrap_ci([2.0, 2.0, 2.0]) == (2.0, 2.0)


def test_bootstrap_ci_rejects_bad_parameters():
    with pytest.raises(ValueError):
        bootstrap_ci([1.0, 2.0], confidence=0.0)
    with pytest.raises(ValueError):
        bootstrap_ci([1.0, 2.0], confidence=1.0)
    with pytest.raises(ValueError):
        bootstrap_ci([1.0, 2.0], resamples=0)


def test_wider_confidence_means_wider_interval():
    samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
    lo90, hi90 = bootstrap_ci(samples, confidence=0.90)
    lo99, hi99 = bootstrap_ci(samples, confidence=0.99)
    assert lo99 <= lo90 and hi90 <= hi99
    assert (hi99 - lo99) > (hi90 - lo90)


def test_metric_stats_from_samples():
    stats = MetricStats.from_samples("mean_response_time", [10.0, 12.0, 14.0])
    assert stats.metric == "mean_response_time"
    assert stats.count == 3
    assert stats.mean == pytest.approx(12.0)
    assert stats.stddev == pytest.approx(2.0)  # ddof=1
    assert stats.ci_lower <= stats.mean <= stats.ci_upper
    assert stats.ci_width == pytest.approx(stats.ci_upper - stats.ci_lower)
    payload = stats.to_dict()
    assert payload["mean"] == pytest.approx(12.0)
    assert payload["confidence"] == pytest.approx(0.95)


def test_metric_stats_degenerate_counts():
    empty = MetricStats.from_samples("m", [])
    assert empty.count == 0
    assert math.isnan(empty.mean) and math.isnan(empty.stddev)
    single = MetricStats.from_samples("m", [4.0])
    assert single.count == 1
    assert single.mean == 4.0
    assert single.stddev == 0.0
    assert (single.ci_lower, single.ci_upper) == (4.0, 4.0)


# ---------------------------------------------------------------------------
# Property: more replicas => tighter intervals, in expectation
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    scale=st.floats(min_value=0.5, max_value=50.0),
    offset=st.floats(min_value=-100.0, max_value=100.0),
    draw_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_ci_width_shrinks_in_expectation_with_more_samples(scale, offset, draw_seed):
    """The 1/sqrt(n) law: averaged over draws, the bootstrap interval of a
    sample four times as large is decisively narrower."""
    rng = np.random.default_rng(draw_seed)

    def mean_width(n: int, draws: int = 12) -> float:
        widths = []
        for _ in range(draws):
            samples = offset + scale * rng.standard_normal(n)
            lower, upper = bootstrap_ci(samples.tolist())
            widths.append(upper - lower)
        return sum(widths) / len(widths)

    assert mean_width(32) < mean_width(8)
