"""Tests of tournament ranking, Pareto frontiers and report determinism."""

from __future__ import annotations

from math import inf, nan

import pytest

import repro.experiments.engine as engine
from repro.experiments.scenarios import ScenarioSpec, ScenarioVariant, get_scenario
from repro.stats import (
    MetricStats,
    TournamentEntry,
    pareto_frontier,
    rank_replicas,
    run_tournament,
    tournament_report,
    tournament_report_from_results,
)


def tiny_spec() -> ScenarioSpec:
    return ScenarioSpec(
        name="tournament-test",
        title="tournament test grid",
        variants=(
            ScenarioVariant("EGS/Wm", {"malleability_policy": "EGS"}),
            ScenarioVariant("FPSMA/Wm", {"malleability_policy": "FPSMA"}),
        ),
        base={"workload": "Wm", "approach": "PRA", "placement_policy": "WF"},
        default_job_count=3,
    )


def entry(label: str, **means: float) -> TournamentEntry:
    stats = {
        metric: MetricStats(
            metric=metric,
            count=3,
            mean=mean,
            stddev=0.0,
            ci_lower=mean,
            ci_upper=mean,
            confidence=0.95,
        )
        for metric, mean in means.items()
    }
    return TournamentEntry(label=label, seeds=(0, 1, 2), stats=stats, truncated=False)


# ---------------------------------------------------------------------------
# Pareto frontier
# ---------------------------------------------------------------------------


def test_pareto_frontier_keeps_only_non_dominated_entrants():
    a = entry("a", mean_response_time=1.0, wasted_processor_seconds=5.0, jobs_lost=0.0)
    b = entry("b", mean_response_time=2.0, wasted_processor_seconds=1.0, jobs_lost=0.0)
    c = entry("c", mean_response_time=3.0, wasted_processor_seconds=5.0, jobs_lost=0.0)
    assert pareto_frontier([a, b, c]) == ("a", "b")  # c dominated by a


def test_pareto_frontier_keeps_ties():
    a = entry("a", mean_response_time=1.0, wasted_processor_seconds=1.0, jobs_lost=0.0)
    b = entry("b", mean_response_time=1.0, wasted_processor_seconds=1.0, jobs_lost=0.0)
    assert pareto_frontier([a, b]) == ("a", "b")


def test_nan_means_rank_last_and_never_dominate():
    finished = entry(
        "finished", mean_response_time=9.0, wasted_processor_seconds=9.0, jobs_lost=9.0
    )
    empty = entry(
        "empty", mean_response_time=nan, wasted_processor_seconds=nan, jobs_lost=nan
    )
    assert empty.objective("mean_response_time") == inf
    assert pareto_frontier([finished, empty]) == ("finished",)


def test_rank_replicas_requires_entrants():
    with pytest.raises(ValueError, match="at least one entrant"):
        rank_replicas({})


# ---------------------------------------------------------------------------
# End-to-end tournaments
# ---------------------------------------------------------------------------


def test_tournament_report_renders_ranks_cis_and_frontier():
    result = run_tournament(tiny_spec(), seeds=(0, 1, 2))
    assert result.ranking and set(result.pareto) <= set(result.ranking)
    report = tournament_report(result)
    assert "Tournament: tournament-test" in report
    assert "3 seeds" in report and "95% CI" in report
    assert "rank" in report and "pareto" in report
    assert "[" in report and "]" in report  # interval column rendered
    assert "Pareto frontier over (mean_response_time" in report


def test_rankings_are_byte_identical_serial_parallel_and_warm(tmp_path, monkeypatch):
    """The acceptance check: the report must not depend on the execution
    schedule, and a repeat tournament must be served from the cache alone."""
    spec = tiny_spec()
    serial = tournament_report(
        run_tournament(spec, seeds=(0, 1), cache=str(tmp_path / "a"))
    )
    parallel = tournament_report(
        run_tournament(spec, seeds=(0, 1), jobs=2, cache=str(tmp_path / "b"))
    )
    assert serial == parallel

    def explode(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("run_experiment called on the warm cache path")

    monkeypatch.setattr(engine, "run_experiment", explode)
    warm = tournament_report(
        run_tournament(spec, seeds=(0, 1), cache=str(tmp_path / "a"))
    )
    assert warm == serial


def test_registered_tournament_scenario_reports_a_ranked_table():
    spec = get_scenario("tournament")
    assert not spec.is_static
    labels = [label for label, _ in spec.expand(job_count=2)]
    # The full grid: 2 policies x 2 load factors x 2 fault models x 3 seeds.
    assert len(labels) == 24
    assert len(set(labels)) == 24  # seed suffixes keep replica labels distinct


def test_tournament_report_from_results_groups_replicas():
    from repro.stats import replicate

    spec = tiny_spec()
    results = {}
    for seed in (0, 1):
        for label, replica in replicate(spec, seeds=(seed,)).items():
            results[f"{label}@seed{seed}"] = replica.results[0]
    report = tournament_report_from_results(results, title="grouped")
    assert "Tournament: grouped (2 entrants, 2 seeds" in report


def test_truncated_replicas_are_flagged_in_the_report():
    result = run_tournament(
        tiny_spec(), seeds=(0,), overrides={"time_limit": 50.0}
    )
    report = tournament_report(result)
    assert result.truncated_entrants
    assert "WARNING: truncated replicas" in report
