"""Tests of multi-seed replication and replica grouping."""

from __future__ import annotations

import pytest

from repro.experiments.scenarios import ScenarioSpec, ScenarioVariant
from repro.stats import ReplicaSet, base_label, group_replicas, replicate


def tiny_spec(**kwargs) -> ScenarioSpec:
    defaults = dict(
        name="stats-test",
        title="statistics layer test grid",
        variants=(
            ScenarioVariant("EGS/Wm", {"malleability_policy": "EGS"}),
            ScenarioVariant("FPSMA/Wm", {"malleability_policy": "FPSMA"}),
        ),
        base={"workload": "Wm", "approach": "PRA", "placement_policy": "WF"},
        default_job_count=3,
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


def test_base_label_strips_replica_suffixes():
    assert base_label("EGS/Wm") == "EGS/Wm"
    assert base_label("EGS/Wm@seed3") == "EGS/Wm"
    assert base_label("EGS/Wm@seed3#rep1") == "EGS/Wm"
    assert base_label("EGS/Wm#rep2") == "EGS/Wm"


def test_replicate_groups_by_variant_across_the_seed_grid():
    replicas = replicate(tiny_spec(), seeds=(0, 1, 2))
    assert list(replicas) == ["EGS/Wm", "FPSMA/Wm"]
    for replica in replicas.values():
        assert replica.count == 3
        assert replica.seeds == (0, 1, 2)
        samples = replica.samples("mean_response_time")
        assert len(samples) == 3
        assert all(value >= 0.0 for value in samples)


def test_resilience_metrics_default_to_zero_without_faults():
    replicas = replicate(tiny_spec(), seeds=(0,))
    replica = replicas["EGS/Wm"]
    assert replica.samples("jobs_lost") == [0.0]
    assert replica.samples("wasted_processor_seconds") == [0.0]


def test_unknown_metric_raises_with_the_known_keys_listed():
    replicas = replicate(tiny_spec(), seeds=(0,))
    with pytest.raises(KeyError, match="mean_response_time"):
        replicas["EGS/Wm"].samples("mean_responze_time")


def test_replicate_validates_the_seed_grid():
    with pytest.raises(ValueError, match="at least one seed"):
        replicate(tiny_spec(), seeds=())
    with pytest.raises(ValueError, match="non-negative"):
        replicate(tiny_spec(), seeds=(0, -1))
    with pytest.raises(ValueError, match="distinct"):
        replicate(tiny_spec(), seeds=(1, 1))


def test_replicate_rejects_static_scenarios():
    static = ScenarioSpec(name="static-test", title="static", builder=lambda: "text")
    with pytest.raises(ValueError, match="static"):
        replicate(static, seeds=(0,))


def test_daemon_backed_replication_rejects_local_execution_knobs():
    with pytest.raises(ValueError, match="daemon-backed"):
        replicate(tiny_spec(), seeds=(0,), client=object(), jobs=2)


def test_group_replicas_merges_seed_suffixed_labels():
    results = {}
    for seed in (0, 1):
        per_seed = replicate(tiny_spec(), seeds=(seed,))
        for label, replica in per_seed.items():
            results[f"{label}@seed{seed}"] = replica.results[0]
    grouped = group_replicas(results)
    assert list(grouped) == ["EGS/Wm", "FPSMA/Wm"]
    assert all(isinstance(r, ReplicaSet) and r.count == 2 for r in grouped.values())
    assert grouped["EGS/Wm"].seeds == (0, 1)
