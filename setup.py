"""Setuptools shim.

The execution environment ships setuptools 65 without the ``wheel`` package,
so PEP 660 editable installs (which require ``bdist_wheel``) are unavailable.
This ``setup.py`` enables the legacy editable-install code path::

    pip install -e . --no-build-isolation --no-use-pep517

All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
