#!/usr/bin/env python
"""Replay a workload-archive trace (Standard Workload Format) through KOALA.

Grid and parallel workload archives distribute job traces in the Standard
Workload Format (SWF).  This example shows the "what if these jobs had been
malleable?" experiment: it takes an SWF trace (a bundled synthetic sample by
default, or any real archive file you point it at), replays it twice through
the simulated KOALA scheduler — once with the jobs rigid as recorded, once
with the same jobs made malleable between 2 processors and their recorded
request — and compares the outcomes.

Run it with::

    python examples/trace_replay.py                      # bundled sample
    python examples/trace_replay.py --trace path/to.swf --max-jobs 200
"""

from __future__ import annotations

import argparse
import io

from repro.experiments.setup import ExperimentConfig, build_system
from repro.metrics import ExperimentMetrics, format_table
from repro.sim import Environment, RandomStreams
from repro.workloads import SwfReader, WorkloadSubmitter, workload_from_swf

#: A small synthetic SWF sample (job number, submit, wait, runtime, allocated
#: processors, ..., requested processors, ...) used when no trace is given.
SAMPLE_TRACE = """\
; Synthetic sample in Standard Workload Format
; MaxNodes: 272
"""
# Generate a plausible little trace programmatically: 40 jobs, irregular
# arrivals, sizes 2-24, runtimes 3-20 minutes.
_sample_lines = []
_time = 0
for i in range(1, 41):
    _time += 60 + (i * 37) % 120
    size = 2 + (i * 7) % 23
    runtime = 180 + (i * 53) % 1020
    _sample_lines.append(
        f"{i} {_time} -1 {runtime} {size} -1 -1 {size} {runtime} -1 1 1 1 "
        f"{1 + i % 2} 0 1 -1 -1"
    )
SAMPLE_TRACE += "\n".join(_sample_lines) + "\n"


def replay(workload, *, label: str, seed: int) -> ExperimentMetrics:
    """Replay one workload specification through a freshly built system.

    The DAS-3 carries a substantial background load (75% of each cluster), so
    large rigid jobs often have to wait for enough free processors, while
    malleable jobs can start right away on 2 and grow ("idle" offer mode)
    towards their recorded request whenever capacity frees up.
    """
    config = ExperimentConfig(
        name=label,
        malleability_policy="EGS",
        approach="PRA",
        seed=seed,
        background_fraction=0.75,
        grow_offer_mode="idle",
    )
    env = Environment()
    streams = RandomStreams(seed=seed)
    multicluster, scheduler = build_system(config, env, streams)
    WorkloadSubmitter(env, scheduler, workload)
    horizon = workload.duration + 100_000
    env.run(until=horizon)
    return ExperimentMetrics.from_run(scheduler, multicluster, label=label)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="path to an SWF trace (default: bundled sample)")
    parser.add_argument("--max-jobs", type=int, default=100, help="cap on replayed jobs")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    reader = SwfReader()
    if args.trace:
        records = reader.read(args.trace)
        source = args.trace
    else:
        records = reader.read(io.StringIO(SAMPLE_TRACE))
        source = "bundled synthetic sample"
    print(f"Read {len(records)} SWF records from {source}")

    rigid_workload = workload_from_swf(
        records, name="swf-rigid", malleable=False, max_jobs=args.max_jobs
    )
    malleable_workload = workload_from_swf(
        records, name="swf-malleable", malleable=True, minimum_processors=2,
        max_jobs=args.max_jobs,
    )

    rigid = replay(rigid_workload, label="rigid", seed=args.seed)
    malleable = replay(malleable_workload, label="malleable", seed=args.seed)

    def row(metrics: ExperimentMetrics):
        summary = metrics.summary()
        waits = [job.wait_time for job in metrics.jobs]
        mean_wait = sum(waits) / len(waits) if waits else 0.0
        return (
            metrics.label,
            metrics.job_count,
            f"{mean_wait:.0f}",
            f"{summary['mean_execution_time']:.0f}",
            f"{summary['mean_response_time']:.0f}",
            f"{summary['mean_average_allocation']:.1f}",
            int(summary["grow_messages"]),
        )

    print()
    print(
        format_table(
            [
                "replay",
                "jobs",
                "mean wait (s)",
                "mean exec (s)",
                "mean response (s)",
                "avg procs",
                "grow msgs",
            ],
            [row(rigid), row(malleable)],
            title="Rigid replay vs malleable replay of the same trace (busy DAS-3)",
        )
    )
    print()
    print("The rigid replay must find each job's full recorded processor count")
    print("before it can start, so large jobs queue behind the background load;")
    print("the malleable replay starts every job on 2 processors immediately and")
    print("grows it towards the recorded request as capacity frees up — shorter")
    print("waits, at the price of running below the requested size some of the time.")


if __name__ == "__main__":
    main()
