#!/usr/bin/env python
"""Replay a workload-archive trace (Standard Workload Format) through KOALA.

Grid and parallel workload archives distribute job traces in the Standard
Workload Format (SWF).  This example shows the "what if these jobs had been
malleable?" experiment using the trace subsystem end-to-end: it takes a
named trace (the bundled deterministic ``das3-synthetic`` generator by
default, or any real archive file you point it at), replays it twice through
the simulated KOALA scheduler — once rigid as recorded, once with the same
jobs made malleable between 2 processors and their recorded request — and
compares the outcomes.

The replays run through :class:`repro.workloads.StreamingWorkload`, the
flat-memory streaming path: job specifications are generated while the
simulation consumes them, so the same script replays a 100k-job archive
trace without materialising it.

Run it with::

    python examples/trace_replay.py                          # bundled trace
    python examples/trace_replay.py --trace path/to.swf --max-jobs 200
    python examples/trace_replay.py --load-factor 2          # double the load

(The same comparison is available declaratively: ``repro-cli run
trace-replay`` sweeps malleability policies over a trace, and ``repro-cli
list-traces`` shows what can be replayed.)
"""

from __future__ import annotations

import argparse

from repro.experiments.setup import ExperimentConfig, build_system
from repro.metrics import ExperimentMetrics, format_table
from repro.sim import Environment, RandomStreams
from repro.workloads import StreamingWorkload, TraceRef, WorkloadSubmitter


def replay(workload, *, label: str, seed: int) -> ExperimentMetrics:
    """Replay one workload through a freshly built system.

    The DAS-3 carries a substantial background load (75% of each cluster), so
    large rigid jobs often have to wait for enough free processors, while
    malleable jobs can start right away on 2 and grow ("idle" offer mode)
    towards their recorded request whenever capacity frees up.
    """
    config = ExperimentConfig(
        name=label,
        malleability_policy="EGS",
        approach="PRA",
        seed=seed,
        background_fraction=0.75,
        grow_offer_mode="idle",
    )
    env = Environment()
    streams = RandomStreams(seed=seed)
    multicluster, scheduler = build_system(config, env, streams)
    WorkloadSubmitter(env, scheduler, workload)
    # The workload streams, so its duration is unknown upfront: run in
    # chunks until the horizon stops moving and the scheduler drains.
    while True:
        env.run(until=env.now + 50_000)
        if env.now >= workload.duration + 100_000:
            break
    return ExperimentMetrics.from_run(scheduler, multicluster, label=label)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace",
        default="das3-synthetic",
        help="trace name or .swf path (see repro-cli list-traces)",
    )
    parser.add_argument("--max-jobs", type=int, default=100, help="cap on replayed jobs")
    parser.add_argument(
        "--load-factor", type=float, default=None, help="compress arrivals by this factor"
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    params = {"max_procs": 85}
    if args.load_factor is not None:
        params["load_factor"] = args.load_factor

    def reference(malleable: float) -> str:
        return TraceRef(args.trace, {**params, "malleable": malleable}).canonical()

    rigid = replay(
        StreamingWorkload.from_reference(reference(0.0), job_count=args.max_jobs),
        label="rigid",
        seed=args.seed,
    )
    malleable = replay(
        StreamingWorkload.from_reference(reference(1.0), job_count=args.max_jobs),
        label="malleable",
        seed=args.seed,
    )
    print(f"Replayed {rigid.job_count} jobs of trace {args.trace!r} (streaming)")

    def row(metrics: ExperimentMetrics):
        summary = metrics.summary()
        waits = [job.wait_time for job in metrics.jobs]
        mean_wait = sum(waits) / len(waits) if waits else 0.0
        return (
            metrics.label,
            metrics.job_count,
            f"{mean_wait:.0f}",
            f"{summary['mean_execution_time']:.0f}",
            f"{summary['mean_response_time']:.0f}",
            f"{summary['mean_average_allocation']:.1f}",
            int(summary["grow_messages"]),
        )

    print()
    print(
        format_table(
            [
                "replay",
                "jobs",
                "mean wait (s)",
                "mean exec (s)",
                "mean response (s)",
                "avg procs",
                "grow msgs",
            ],
            [row(rigid), row(malleable)],
            title="Rigid replay vs malleable replay of the same trace (busy DAS-3)",
        )
    )
    print()
    print("The rigid replay must find each job's full recorded processor count")
    print("before it can start, so large jobs queue behind the background load;")
    print("the malleable replay starts every job on 2 processors immediately and")
    print("grows it towards the recorded request as capacity frees up — shorter")
    print("waits, at the price of running below the requested size some of the time.")


if __name__ == "__main__":
    main()
