#!/usr/bin/env python
"""Compare the PRA and PWA job-management approaches under increasing load.

The paper's two approaches differ in *when* malleability is exercised:

* **PRA** grows running malleable jobs whenever processors become available
  and never shrinks them — great for the jobs already running, but newly
  arriving jobs must wait for a running job to finish;
* **PWA** mandatorily shrinks running jobs to make room for waiting ones —
  queue waits stay short at the price of smaller (hence slower) running jobs.

To make the trade-off visible this example uses a single dedicated 48-node
cluster (so the two approaches actually compete for the same processors,
without the DAS-3's background users muddying the picture) and sweeps the
workload inter-arrival time.  At low load the two approaches coincide — the
paper notes that "if the system load is low, no job is shrunk and PWA behaves
like PRA" — and as the load grows PWA starts shrinking, its queue waits stay
near zero while PRA's grow.

Run it with::

    python examples/pra_vs_pwa.py           # quick sweep (default sizes)
    python examples/pra_vs_pwa.py --jobs 40
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.cluster import Multicluster
from repro.koala import KoalaScheduler, SchedulerConfig
from repro.metrics import ExperimentMetrics, format_table
from repro.sim import Environment, RandomStreams
from repro.workloads import WorkloadGenerator, WorkloadSubmitter


def run_point(approach: str, interarrival: float, jobs: int, seed: int) -> dict:
    """Run one (approach, load) combination on a dedicated 48-node cluster."""
    env = Environment()
    streams = RandomStreams(seed=seed)
    system = Multicluster(env, streams=streams, gram_submission_latency=2.0, gram_concurrency=2)
    system.add_cluster("dedicated", 48)

    scheduler = KoalaScheduler(
        env,
        system,
        SchedulerConfig(
            placement_policy="WF",
            malleability_policy="EGS",
            approach=approach,
            grow_offer_mode="idle",  # grow eagerly so PWA has something to reclaim
            poll_interval=15.0,
        ),
        streams=streams,
    )

    generator = WorkloadGenerator(
        job_count=jobs, interarrival=interarrival, malleable_fraction=1.0
    )
    workload = generator.generate(streams["workload"], name=f"load-{interarrival:g}")
    WorkloadSubmitter(env, scheduler, workload)

    env.run(until=workload.duration + 100_000)
    metrics = ExperimentMetrics.from_run(scheduler, system, label=f"{approach}@{interarrival:g}s")
    waits = [job.wait_time for job in metrics.jobs]
    summary = metrics.summary()
    return {
        "exec": summary["mean_execution_time"],
        "wait": float(np.mean(waits)) if waits else 0.0,
        "max_wait": float(np.max(waits)) if waits else 0.0,
        "avg_procs": summary["mean_average_allocation"],
        "grow": int(summary["grow_messages"]),
        "shrink": int(summary["shrink_messages"]),
        "unfinished": metrics.unfinished_jobs,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=30, help="jobs per run (default 30)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    interarrivals = (240.0, 120.0, 60.0, 30.0)
    rows = []
    for interarrival in interarrivals:
        for approach in ("PRA", "PWA"):
            point = run_point(approach, interarrival, args.jobs, args.seed)
            rows.append(
                (
                    f"{interarrival:.0f}",
                    approach,
                    f"{point['exec']:.0f}",
                    f"{point['wait']:.0f}",
                    f"{point['max_wait']:.0f}",
                    f"{point['avg_procs']:.1f}",
                    point["grow"],
                    point["shrink"],
                )
            )

    print(
        format_table(
            [
                "inter-arrival (s)",
                "approach",
                "mean exec (s)",
                "mean wait (s)",
                "max wait (s)",
                "avg procs",
                "grow msgs",
                "shrink msgs",
            ],
            rows,
            title=(
                f"PRA vs PWA on a dedicated 48-node cluster "
                f"({args.jobs} all-malleable jobs, EGS policy)"
            ),
        )
    )
    print()
    print("Reading the table: at the longest inter-arrival the two approaches")
    print("coincide (nothing ever waits).  As the load grows, PWA issues shrink")
    print("messages and keeps the queue waits low, while PRA keeps the running")
    print("jobs bigger (larger average processor counts, shorter executions)")
    print("at the price of longer waits for newly arriving jobs.")


if __name__ == "__main__":
    main()
