#!/usr/bin/env python
"""Quickstart: schedule a small malleable workload on the simulated DAS-3.

This example walks through the whole public API once:

1. build the DAS-3 multicluster of Table I,
2. create a KOALA scheduler configured with the paper's defaults
   (Worst-Fit placement, FPSMA malleability management, PRA approach),
3. submit a handful of malleable FT and GADGET-2 jobs,
4. run the simulation and print per-job results plus scheduler statistics.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.apps import ft_profile, gadget2_profile
from repro.cluster import das3_multicluster
from repro.koala import Job, KoalaScheduler, SchedulerConfig
from repro.metrics import ExperimentMetrics, format_table
from repro.sim import Environment, RandomStreams


def main() -> None:
    # 1. The simulation environment and the DAS-3 testbed (Table I).
    env = Environment()
    streams = RandomStreams(seed=42)
    das3 = das3_multicluster(env, streams=streams)
    print(f"Built the DAS-3: {len(das3)} clusters, {das3.total_processors} nodes total")

    # 2. The KOALA scheduler with malleability support.
    scheduler = KoalaScheduler(
        env,
        das3,
        SchedulerConfig(
            placement_policy="WF",
            malleability_policy="FPSMA",
            approach="PRA",
            grow_offer_mode="idle",  # grow eagerly: nothing else competes here
        ),
        streams=streams,
    )

    # 3. Submit a small workload: alternating GADGET-2 and FT malleable jobs,
    #    two minutes apart, all starting at their minimum size of 2 nodes.
    profiles = [gadget2_profile(), ft_profile()]

    def submit_jobs(env):
        for index in range(8):
            profile = profiles[index % 2]
            job = Job.malleable(profile, name=f"{profile.name}-{index + 1}")
            scheduler.submit(job)
            yield env.timeout(120.0)

    env.process(submit_jobs(env))

    # 4. Run until everything finished and report.
    env.run(until=20_000)
    assert scheduler.all_done, "some jobs did not finish within the horizon"

    metrics = ExperimentMetrics.from_run(scheduler, das3, label="quickstart")
    rows = [
        (
            job.name,
            job.profile,
            f"{job.execution_time:.0f}",
            f"{job.response_time:.0f}",
            f"{job.average_allocation:.1f}",
            job.maximum_allocation,
            job.grow_count,
        )
        for job in metrics.jobs
    ]
    print()
    print(
        format_table(
            ["job", "application", "exec (s)", "response (s)", "avg procs", "max procs", "grows"],
            rows,
            title="Per-job results",
        )
    )
    print()
    summary = metrics.summary()
    print(f"Mean execution time : {summary['mean_execution_time']:.0f} s")
    print(f"Mean response time  : {summary['mean_response_time']:.0f} s")
    print(f"Grow messages sent  : {summary['grow_messages']:.0f}")
    print(f"Peak KOALA usage    : {summary['peak_utilization']:.0f} processors")
    print()
    print("Compare with a rigid run: every job stays on 2 nodes, so a GADGET-2")
    print(f"job would take {gadget2_profile().execution_time(2):.0f} s instead of "
          f"{metrics.select(profile='gadget2')[0].execution_time:.0f} s here.")


if __name__ == "__main__":
    main()
