"""Write your own scheduling policy in ~30 lines.

One ``@register`` decorator plugs a policy into every surface of the system:
``ExperimentConfig``/``SchedulerConfig`` fields, scenario sweeps, the result
cache and ``repro-cli`` (run this file's directory with
``repro-cli --policy-module examples/custom_policy.py list-policies``).

Run directly::

    PYTHONPATH=src python examples/custom_policy.py
"""

from repro.koala.placement import PlacementDecision, PlacementPolicy
from repro.policies import register


# -- the policy: ~30 lines ---------------------------------------------------
@register("placement", "BESTFIT")
class BestFit(PlacementPolicy):
    """Place each component on the *fullest* cluster that still fits it.

    The opposite of the paper's Worst-Fit: instead of balancing load, it
    packs jobs tightly, keeping whole clusters free for large arrivals.
    ``headroom`` processors are kept free on every cluster.
    """

    name = "BESTFIT"

    def __init__(self, headroom: int = 0) -> None:
        if headroom < 0:
            raise ValueError("headroom must be non-negative")
        self.headroom = int(headroom)

    def place(self, job, idle_processors, multicluster):
        remaining = dict(idle_processors)
        decision = PlacementDecision(job=job)
        for index, component in self._component_requests(job):
            fits = [
                (idle, name)
                for name, idle in remaining.items()
                if idle - self.headroom >= component.processors
            ]
            if not fits:
                return PlacementDecision.failure(
                    job, f"no cluster fits component {index}"
                )
            fits.sort(key=lambda pair: (pair[0], pair[1]))  # fullest first
            _, chosen = fits[0]
            decision.placements[index] = (chosen, component.processors)
            remaining[chosen] -= component.processors
        return decision


# -- using it ----------------------------------------------------------------
def main() -> None:
    from repro.experiments.setup import ExperimentConfig, run_experiment

    # The registered name works everywhere, parameterised or not; unknown
    # names or parameters would fail right here, listing what is registered.
    config = ExperimentConfig(
        name="custom-policy-demo",
        workload="Wm",
        job_count=12,
        placement_policy="BESTFIT?headroom=2",
        malleability_policy="EGS",
        approach="PRA",
        seed=0,
    )
    result = run_experiment(config)
    print(f"placement={config.placement_policy}  jobs={result.metrics.job_count}")
    mean_response = sum(j.response_time for j in result.metrics.jobs) / max(
        1, len(result.metrics.jobs)
    )
    print(f"mean response time: {mean_response:.1f}s  all done: {result.all_done}")


if __name__ == "__main__":
    main()
