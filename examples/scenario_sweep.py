#!/usr/bin/env python
"""Declare a custom scenario, sweep it in parallel, reuse cached results.

This example shows the three pieces the experiments layer is built on:

1. a **scenario** declared as data — base config, variants, seed grid —
   instead of a hand-written loop over ``run_experiment``;
2. the **sweep engine** fanning the runs out over worker processes while
   keeping results keyed and ordered exactly like the declaration;
3. the **result cache**: the second ``run_scenario`` call below does not
   simulate anything, it is served from disk.

Run it with::

    PYTHONPATH=src python examples/scenario_sweep.py
"""

from __future__ import annotations

import tempfile
import time

from repro.experiments import ScenarioSpec, ScenarioVariant, run_scenario
from repro.metrics import summary_table

# Compare the two malleability policies across all four paper workloads at a
# reduced size: an 8-run grid, declared in a dozen lines.
SCENARIO = ScenarioSpec(
    name="policy-grid",
    title="FPSMA vs EGS across every paper workload",
    base={"approach": "PRA", "placement_policy": "WF"},
    variants=tuple(
        ScenarioVariant(
            f"{policy}/{workload}",
            {"malleability_policy": policy, "workload": workload},
        )
        for policy in ("FPSMA", "EGS")
        for workload in ("Wm", "Wmr", "W'm", "W'mr")
    ),
    default_job_count=40,
)


def main() -> None:
    with tempfile.TemporaryDirectory() as cache_dir:
        started = time.perf_counter()
        results = run_scenario(SCENARIO, jobs=4, cache=cache_dir, seed=0)
        cold = time.perf_counter() - started

        started = time.perf_counter()
        run_scenario(SCENARIO, jobs=4, cache=cache_dir, seed=0)
        warm = time.perf_counter() - started

    print(
        summary_table(
            {label: result.metrics for label, result in results.items()},
            title=SCENARIO.title,
        )
    )
    print()
    print(f"cold sweep (4 workers): {cold:6.2f}s")
    print(f"warm sweep (cache hit): {warm:6.2f}s")


if __name__ == "__main__":
    main()
