#!/usr/bin/env python
"""Malleability as resilience: the same workload under node churn.

The paper's premise is a multicluster whose availability changes while jobs
run.  This example makes the consequence concrete with the fault-injection
subsystem: it runs the same mixed malleable/rigid workload three times —

* on a reliable machine (no faults),
* under exponential per-node churn with a malleability policy (malleable
  jobs *shrink through* failures whose remainder still fits their minimum),
* under the identical churn with malleability disabled (every struck job is
  killed and resubmitted),

and compares the resilience metrics: job kills, shrink-rescues,
resubmissions, processor-seconds of wasted work and the utilization
normalised by the capacity that was actually up.

Run it with::

    python examples/fault_injection.py
    python examples/fault_injection.py --mtbf 3600 --mttr 300 --jobs 60
    python examples/fault_injection.py --fault 'fault:outage?cluster=delft&at=1800&duration=1800'

(The same comparison is available declaratively: ``repro-cli run
fault-sweep`` sweeps MTBF x policy, ``repro-cli run churn-replay`` replays a
trace malleable-vs-rigid, and ``repro-cli list-faults`` shows every model.)
"""

from __future__ import annotations

import argparse

from repro.experiments.setup import ExperimentConfig, run_experiment


def run(label: str, *, fault: str | None, policy: str | None, args) -> dict:
    """One experiment run; returns the summary row for the final table."""
    config = ExperimentConfig(
        name=label,
        workload="Wmr",
        job_count=args.jobs,
        malleability_policy=policy,
        approach="PRA",
        placement_policy="WF",
        seed=args.seed,
        fault_model=fault,
    )
    result = run_experiment(config)
    summary = result.metrics.summary()
    return {
        "run": label,
        "finished jobs": int(summary["jobs"]),
        "kills": int(summary.get("jobs_killed", 0)),
        "rescues": int(summary.get("shrink_rescues", 0)),
        "resubmits": int(summary.get("resubmissions", 0)),
        "wasted proc-s": f"{summary.get('wasted_processor_seconds', 0.0):.0f}",
        "mean resp (s)": f"{summary['mean_response_time']:.0f}",
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=40, help="jobs per run (default 40)")
    parser.add_argument("--seed", type=int, default=0, help="root random seed")
    parser.add_argument(
        "--mtbf", type=float, default=10800.0, help="per-node mean time between failures (s)"
    )
    parser.add_argument(
        "--mttr", type=float, default=900.0, help="per-node mean time to repair (s)"
    )
    parser.add_argument(
        "--fault",
        default=None,
        help="full fault reference overriding the --mtbf/--mttr churn "
        "(e.g. 'fault:outage?cluster=delft&at=1800&duration=900')",
    )
    args = parser.parse_args()
    fault = args.fault or f"fault:exp?mtbf={args.mtbf:g}&mttr={args.mttr:g}"

    rows = [
        run("reliable", fault=None, policy="EGS", args=args),
        run("churn + EGS", fault=fault, policy="EGS", args=args),
        run("churn, no malleability", fault=fault, policy=None, args=args),
    ]

    columns = list(rows[0])
    widths = {
        column: max(len(column), *(len(str(row[column])) for row in rows))
        for column in columns
    }
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    print(f"\nFault model: {fault}\n")
    print(header)
    print("  ".join("-" * widths[column] for column in columns))
    for row in rows:
        print("  ".join(str(row[column]).ljust(widths[column]) for column in columns))
    print(
        "\nMalleable jobs shrink through failures their minimum survives; with "
        "malleability off,\nthe same failures kill the jobs outright and their "
        "work is paid again on resubmission."
    )


if __name__ == "__main__":
    main()
