#!/usr/bin/env python
"""Application-initiated adaptation: the paper's future-work extension.

Section VIII of the paper leaves *application-initiated* grow requests as
future work ("this feature is mainly useful in case the parallelism pattern
is irregular").  The building blocks exist in this reproduction: DYNACO's
observe component accepts events from any monitor, not just the scheduler
frontend, so an application whose own computation needs more processors can
publish a grow request through a :class:`~repro.dynaco.CallbackMonitor`.

This example runs a single irregular application whose parallelism doubles
halfway through (think of an adaptive-mesh refinement step): at that point
the *application itself* asks for more processors; the runner-side DYNACO
instance decides how many it can actually use and the allocation changes
accordingly, while a scheduler-side grow offer later in the run shows the two
initiation paths coexisting.

Run it with::

    python examples/application_initiated_growth.py
"""

from __future__ import annotations

from repro.apps import (
    ApplicationProfile,
    PerProcessorReconfigurationCost,
    PowerLawSpeedup,
    RunningApplication,
)
from repro.dynaco import (
    AfpacExecutor,
    CallbackMonitor,
    Dynaco,
    GrowOffer,
    MalleabilityDecision,
    MalleabilityPlanner,
)
from repro.sim import Environment


def main() -> None:
    env = Environment()

    # An irregular application: scales well, pays a small per-processor
    # reconfiguration cost, and knows that its second phase needs many more
    # processors than its first.
    profile = ApplicationProfile(
        name="adaptive-mesh",
        speedup=PowerLawSpeedup(sequential_time=1200.0, alpha=0.95),
        reconfiguration=PerProcessorReconfigurationCost(base=2.0, per_processor=0.25),
        default_minimum=2,
        default_maximum=64,
    )
    application = RunningApplication(env, profile, initial_allocation=4, job_id="amr-1")

    # The DYNACO instance for this application: the frontend monitor is the
    # usual scheduler-facing one; we add a second, application-facing monitor.
    application_monitor = CallbackMonitor("application-monitor")
    dynaco = Dynaco(
        env,
        decision=MalleabilityDecision(minimum=2, maximum=64, constraint=profile.constraint),
        planner=MalleabilityPlanner(),
        executor=AfpacExecutor(env, application),
        monitor=application_monitor,
    )

    log: list[str] = []

    def application_logic(env):
        """The application's own progress loop: it requests growth itself."""
        application.start()
        log.append(f"[{env.now:7.1f}s] started on {application.allocation} processors")
        # Phase 1: run until ~40% of the work is done.
        while application.remaining_fraction > 0.6:
            yield env.timeout(10.0)
        # The refinement step arrives: the application asks for 16 more
        # processors through its own monitor (application-initiated growth).
        event = GrowOffer(
            time=env.now,
            offered=16,
            current_allocation=application.allocation,
            source="application",
        )
        log.append(f"[{env.now:7.1f}s] application requests 16 more processors")
        result = yield dynaco.adapt(event, application.allocation)
        log.append(
            f"[{env.now:7.1f}s] adaptation executed: +{result.accepted_change} "
            f"processors -> {result.new_allocation}"
        )

    def scheduler_logic(env):
        """Independently, the scheduler also offers processors (the usual path)."""
        yield env.timeout(60.0)
        if application.is_finished:
            return
        event = GrowOffer(
            time=env.now, offered=8, current_allocation=application.allocation,
            source="scheduler",
        )
        log.append(f"[{env.now:7.1f}s] scheduler offers 8 more processors")
        result = yield dynaco.adapt(event, application.allocation)
        log.append(
            f"[{env.now:7.1f}s] scheduler-initiated adaptation: "
            f"+{result.accepted_change} -> {result.new_allocation} processors"
        )

    env.process(application_logic(env))
    env.process(scheduler_logic(env))
    env.run(application.completed)

    log.append(
        f"[{env.now:7.1f}s] finished; execution time "
        f"{application.record.execution_time:.1f}s, "
        f"{len(application.record.reconfigurations)} reconfigurations"
    )
    print("\n".join(log))
    print()
    fixed = profile.execution_time(4)
    print(f"Staying on 4 processors would have taken {fixed:.0f} s; "
          f"with the two growth paths it took {application.record.execution_time:.0f} s.")


if __name__ == "__main__":
    main()
