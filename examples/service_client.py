#!/usr/bin/env python
"""Drive the experiment daemon: submit, coalesce, wait, read the store.

This example starts a daemon in-process (so it is self-contained and leaves
nothing behind), then exercises the client workflow a notebook or dashboard
would use:

1. ``batch``-submit a small policy sweep without waiting;
2. ``run_and_wait`` one config — and submit it a *second* time to show the
   submission coalescing onto the already-finished run (``via: session``);
3. read concise results (digest + headline metrics) off the daemon, and
   show the store serving a restarted daemon without re-simulating.

Run it with::

    PYTHONPATH=src python examples/service_client.py
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

from repro.service import ExperimentService, ResultStore, ServiceClient


def start_daemon(store: ResultStore, socket_path: Path) -> threading.Thread:
    """Run an ExperimentService in a background thread; returns when ready."""
    ready = threading.Event()
    thread = threading.Thread(
        target=lambda: ExperimentService(store, workers=2).run(
            socket_path=socket_path, on_ready=lambda _address: ready.set()
        ),
        daemon=True,
    )
    thread.start()
    ready.wait(30)
    return thread


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        store_dir = Path(scratch) / "store"
        socket_path = Path(scratch) / "repro.sock"
        daemon = start_daemon(ResultStore(store_dir), socket_path)

        sweep = [
            {
                "name": "service-demo",
                "workload": workload,
                "malleability_policy": policy,
                "job_count": 12,
                "seed": 0,
            }
            for policy in ("FPSMA", "EGS")
            for workload in ("Wm", "Wmr")
        ]

        with ServiceClient(socket_path=socket_path) as client:
            # 1. Fire-and-forget a 4-config sweep in one round-trip.
            batch = client.batch(sweep)
            print(f"submitted {batch['count']} configs:")
            for job in batch["jobs"]:
                print(f"  {job['key'][:12]}…  {job['state']:8s} via {job['via']}")

            # 2. run_and_wait blocks for one of them; resubmitting the same
            #    config afterwards is answered without a second simulation.
            first = client.run_and_wait(sweep[0], timeout=300)
            again = client.submit(sweep[0])
            print(f"\nrun_and_wait: digest {first['digest'][:12]}… via {first['via']}")
            print(f"resubmit:     digest {again['digest'][:12]}… via {again['via']}")

            # 3. Concise results for the whole sweep (every run has finished
            #    or will finish; run_and_wait attaches rather than re-runs).
            print("\nsweep results (concise):")
            for config in sweep:
                response = client.run_and_wait(config, timeout=300)
                metrics = response["metrics"]
                print(
                    f"  {config['malleability_policy']:5s}/{config['workload']:4s}"
                    f"  mean_response={metrics['mean_response_time']:8.2f}"
                    f"  grows={metrics['grow_messages']:.0f}"
                )

            status = client.status()
            print(
                f"\ndaemon ran {status['executions']} simulations for "
                f"{status['requests']} requests "
                f"({status['store']['entries']} records in the store)"
            )
            client.shutdown()
        daemon.join(30)

        # A fresh daemon over the same store needs zero executions: results
        # are content-addressed on disk, not tied to a daemon lifetime.
        daemon = start_daemon(ResultStore(store_dir), socket_path)
        with ServiceClient(socket_path=socket_path) as client:
            response = client.run_and_wait(sweep[0], timeout=30)
            status = client.status()
            print(
                f"after restart: via {response['via']}, "
                f"executions={status['executions']}"
            )
            client.shutdown()
        daemon.join(30)


if __name__ == "__main__":
    main()
