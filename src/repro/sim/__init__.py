"""Discrete-event simulation engine.

This package provides the discrete-event simulation (DES) substrate on which
the whole reproduction runs.  The published experiments were executed on the
physical DAS-3 multicluster; this reproduction re-creates the same scheduling
behaviour in simulated time, so a small but complete process-based DES kernel
is required.  The design follows the classic coroutine/process-interaction
style (comparable to SimPy, which is not available in this environment):

* :class:`~repro.sim.core.Environment` owns the simulation clock and the
  event heap and drives execution;
* :class:`~repro.sim.events.Event` and its subclasses are one-shot
  synchronisation primitives;
* :class:`~repro.sim.process.Process` wraps a Python generator; the generator
  yields events and is resumed when the yielded event is processed;
* :mod:`repro.sim.resources` provides shared-resource primitives
  (:class:`~repro.sim.resources.Resource`,
  :class:`~repro.sim.resources.Container`,
  :class:`~repro.sim.resources.Store`);
* :mod:`repro.sim.rng` provides named, independently seeded random streams so
  that experiments are reproducible and individual stochastic components can
  be varied independently;
* :mod:`repro.sim.monitor` provides time-weighted series and counters used by
  the metrics layer.

The public API of the engine is re-exported here so downstream packages can
simply ``from repro.sim import Environment, Timeout``.
"""

from repro.sim.calqueue import CalendarQueue, HeapQueue, resolve_queue_name
from repro.sim.core import Environment, EmptySchedule, StopSimulation
from repro.sim.events import (
    AllOf,
    AnyOf,
    Condition,
    Event,
    Interrupt,
    Timeout,
)
from repro.sim.process import Process, ProcessGenerator
from repro.sim.resources import (
    Container,
    FilterStore,
    PreemptedError,
    PriorityResource,
    Release,
    Request,
    Resource,
    Store,
)
from repro.sim.rng import RandomStreams
from repro.sim.monitor import Counter, TimeSeries, TimeWeightedStat

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Condition",
    "Container",
    "Counter",
    "EmptySchedule",
    "Environment",
    "Event",
    "FilterStore",
    "HeapQueue",
    "Interrupt",
    "PreemptedError",
    "PriorityResource",
    "Process",
    "ProcessGenerator",
    "RandomStreams",
    "Release",
    "Request",
    "Resource",
    "resolve_queue_name",
    "StopSimulation",
    "Store",
    "TimeSeries",
    "TimeWeightedStat",
    "Timeout",
]
