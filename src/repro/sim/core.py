"""Simulation environment: clock, event queue and execution loop.

The :class:`Environment` is the only stateful object a simulation needs to
share: it keeps the current simulated time, a queue of scheduled events and
the currently active process.  Everything else (clusters, schedulers,
applications) is expressed in terms of processes and events bound to an
environment.

Fast path
---------
The run loop is the hottest code of the whole project (a full-size figure run
processes hundreds of thousands of events), so :meth:`Environment.run` inlines
the work of :meth:`Environment.step` with every lookup hoisted into a local,
and the environment recycles :class:`~repro.sim.events.Timeout` instances
through a free list (see :meth:`timeout`).  A timeout is recycled — object
*and* callback list — only when its sole executed callback was a process
resumption, i.e. it was produced by the ubiquitous ``yield env.timeout(d)``
pattern, in which no reference to the event survives the resumption.
Timeouts waited on by conditions, interrupted sleeps or ``run(until=...)``
stop events are never recycled.

The event queue itself is pluggable (see :mod:`repro.sim.calqueue`): a
calendar/bucket queue by default, the classic binary heap via
``REPRO_SIM_QUEUE=heap``.  Both produce the identical ``(time, priority,
insertion_id)`` total order, so simulations are byte-identical across
implementations.
"""

from __future__ import annotations

from math import inf
from typing import Any, Iterable, Optional, Union

from repro.sim.calqueue import make_queue

from repro.sim.events import (
    NORMAL,
    PENDING,
    URGENT,
    AllOf,
    AnyOf,
    Event,
    Timeout,
)
from repro.sim.process import Process, ProcessGenerator

#: The underlying function of ``Process._resume`` bound methods; used to
#: recognise "plain process sleep" timeouts that are safe to recycle.
_PROCESS_RESUME = Process._resume


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no more events are scheduled."""


class StopSimulation(Exception):
    """Internal exception used to stop :meth:`Environment.run` at an event.

    The exception value carries the value of the event the run stopped at.
    """

    @classmethod
    def callback(cls, event: Event) -> None:
        """Event callback that aborts the run loop when *event* is processed."""
        if event.ok:
            raise cls(event.value)
        # Propagate failures of the "until" event.
        raise event.value


class Environment:
    """Execution environment of a discrete-event simulation.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock.  Time is measured in seconds
        throughout this project.

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(10)
    ...     return env.now
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> p.value
    10
    """

    def __init__(self, initial_time: float = 0.0, queue: Optional[str] = None) -> None:
        self._now: float = float(initial_time)
        #: Pluggable event queue; ``queue`` overrides ``$REPRO_SIM_QUEUE``.
        self._queue = make_queue(queue)
        #: Bound ``push`` of the queue, hoisted for the scheduling hot path.
        self._push = self._queue.push
        self._eid: int = 0
        self._active_process: Optional[Process] = None
        #: Free list of recycled plain-sleep timeouts (see module docstring).
        self._timeout_pool: list[Timeout] = []
        self._events_processed: int = 0
        #: Optional :class:`repro.obs.trace.Tracer`.  ``None`` (the default)
        #: costs exactly one attribute check per :meth:`run` call — the
        #: untraced loop below is byte-identical to the pre-tracing one.
        self._tracer = None

    # -- basic accessors -------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def queue_name(self) -> str:
        """Name of the event-queue implementation this environment uses."""
        return self._queue.name

    @property
    def active_process(self) -> Optional[Process]:
        """The process whose generator is currently executing (if any)."""
        return self._active_process

    @property
    def processed_events(self) -> int:
        """Total number of events this environment has processed so far.

        Maintained by the run loop; the benchmark subsystem divides it by
        wall-clock time to report events/second.
        """
        return self._events_processed

    # -- event factories -------------------------------------------------

    def process(self, generator: ProcessGenerator) -> Process:
        """Create a new :class:`~repro.sim.process.Process` from *generator*."""
        return Process(self, generator)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Return an event that triggers after *delay* time units.

        Served from the environment's timeout free list when possible, so the
        dominant ``yield env.timeout(d)`` pattern allocates no event object
        and no callback list in steady state.  The flip side of recycling:
        do not retain a reference to a plain-sleep timeout past the yield
        that waits on it — once it has resumed its process, the object may be
        reused for a later timeout.  (Timeouts waited on by conditions,
        ``run(until=...)`` or interrupted sleeps are never recycled.)
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            event = pool.pop()
            event._delay = delay
            event._ok = True
            event._value = value
            event.defused = False
            self._eid = eid = self._eid + 1
            self._push((self._now + delay, NORMAL, eid, event))
            return event
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Return a new, untriggered :class:`~repro.sim.events.Event`."""
        return Event(self)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Return a condition event that succeeds when all *events* have."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Return a condition event that succeeds when any of *events* has."""
        return AnyOf(self, events)

    # -- scheduling and execution -----------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Schedule *event* for processing after *delay* time units.

        Events scheduled for the same time are processed in priority order
        (lower first), then in insertion order.
        """
        self._eid = eid = self._eid + 1
        self._push((self._now + delay, priority, eid, event))

    def schedule_at(self, event: Event, at: float, priority: int = NORMAL) -> None:
        """Schedule *event* for processing at the absolute time *at*.

        The restore path's scheduling primitive: a checkpoint records
        absolute event times, and ``now + (at - now)`` does not round-trip
        in IEEE floating point, so rehydrated events must be pushed at *at*
        itself to land back on the exact original drain order.
        """
        if at < self._now:
            raise ValueError(
                f"cannot schedule at {at}, earlier than the current time {self._now}"
            )
        self._eid = eid = self._eid + 1
        self._push((at, priority, eid, event))

    def timeout_at(self, at: float, value: Any = None) -> Timeout:
        """An event that triggers at the absolute time *at* (``>= now``).

        The absolute-time counterpart of :meth:`timeout`, sharing its free
        list.  Used when restoring checkpointed state: in-flight work whose
        completion time was recorded absolutely must finish at that exact
        float, not at ``now + delta``.
        """
        if at < self._now:
            raise ValueError(
                f"timeout_at({at}) lies before the current time {self._now}"
            )
        pool = self._timeout_pool
        if pool:
            event = pool.pop()
        else:
            # Build an unscheduled Timeout by hand: the constructor always
            # pushes at ``now + delay``, which is exactly the rounding this
            # method exists to avoid.
            event = Timeout.__new__(Timeout)
            event.env = self
            event.callbacks = []
        event._delay = at - self._now
        event._ok = True
        event._value = value
        event.defused = False
        self._eid = eid = self._eid + 1
        self._push((at, NORMAL, eid, event))
        return event

    def peek(self) -> float:
        """Return the time of the next scheduled event, or ``inf`` if none."""
        return self._queue.peek_time()

    def pending_entries(self):
        """Sorted snapshot of every pending ``(time, priority, id, event)``.

        Checkpoint introspection (both queue backends): the drain order the
        simulation would continue with.  A snapshot — mutating the returned
        list does not touch the queue.
        """
        return self._queue.entries()

    def kernel_state(self) -> dict:
        """JSON-able fingerprint of the kernel: clock, counters, queue shape.

        Captured into checkpoint envelopes so a restore can verify it
        re-created (or re-reached) exactly the state that was saved.
        """
        return {
            "now": self._now,
            "event_id": self._eid,
            "events_processed": self._events_processed,
            "queue": self._queue.name,
            "pending": len(self._queue),
            "timeout_pool": len(self._timeout_pool),
        }

    def set_tracer(self, tracer) -> None:
        """Attach (or with ``None`` detach) a structured-event tracer.

        With a tracer attached, every schedule emits a ``sched`` record
        (via a wrapped ``_push``, so the disabled path keeps the plain
        bound method) and :meth:`run` switches to the traced loop, which
        emits an ``ev`` record per fired event and periodic ``queue``
        snapshots.  Trace records carry simulated time only — never
        wall-clock — so same-seed runs produce byte-identical traces.
        """
        self._tracer = tracer
        if tracer is None:
            self._push = self._queue.push
            return
        write = tracer.write
        push = self._queue.push

        def traced_push(item) -> None:
            write(
                {
                    "k": "sched",
                    "t": item[0],
                    "pr": item[1],
                    "id": item[2],
                    "e": type(item[3]).__name__,
                }
            )
            push(item)

        self._push = traced_push

    def step(self) -> None:
        """Process the next scheduled event.

        Raises
        ------
        EmptySchedule
            If no events are scheduled.
        """
        try:
            self._now, _, _, event = self._queue.pop()
        except IndexError:
            raise EmptySchedule() from None

        callbacks = event.callbacks
        if callbacks is None:  # pragma: no cover - defensive
            return
        event.callbacks = None
        self._events_processed += 1
        for callback in callbacks:
            callback(event)

        if event._ok:
            self._maybe_recycle(event, callbacks)
        elif not event.defused:
            # An event failed and nobody handled it: surface the error so the
            # simulation does not silently swallow programming mistakes.
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise RuntimeError(f"event {event!r} failed with non-exception {exc!r}")

    def _maybe_recycle(self, event: Event, callbacks: list) -> None:
        """Recycle a processed plain-sleep timeout (see module docstring)."""
        if (
            type(event) is Timeout
            and len(callbacks) == 1
            and getattr(callbacks[0], "__func__", None) is _PROCESS_RESUME
        ):
            callbacks.clear()
            event.callbacks = callbacks  # reuse the emptied list next time
            event._value = PENDING
            self._timeout_pool.append(event)

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until the event queue is exhausted;
            * a number — run until the clock reaches that time (a value equal
              to the current time is tolerated as a no-op, so drivers may
              compute ``until=min(limit, ...)`` without guarding the moment
              the clock reaches the limit);
            * an :class:`~repro.sim.events.Event` — run until that event is
              processed and return its value.

        Returns
        -------
        The value of the *until* event if one was given, otherwise ``None``.
        """
        if self._tracer is not None:
            return self._run_traced(until)
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    # Already processed: nothing to run.
                    return stop_event.value
                stop_event.callbacks.append(StopSimulation.callback)
            else:
                at = float(until)
                if at == self._now:
                    # Nothing can happen between now and now.
                    return None
                if at < self._now:
                    raise ValueError(
                        f"until ({at}) must not be earlier than the current time ({self._now})"
                    )
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                stop_event.callbacks.append(StopSimulation.callback)
                self.schedule(stop_event, priority=URGENT, delay=at - self._now)

        # Inlined event loop: identical semantics to repeated ``step()``
        # calls, with every per-event lookup hoisted into a local.
        pool = self._timeout_pool
        pop = self._queue.pop
        pending = PENDING
        timeout_cls = Timeout
        resume_func = _PROCESS_RESUME
        processed = 0
        try:
            while True:
                try:
                    item = pop()
                except IndexError:
                    if stop_event is not None and not stop_event.triggered:
                        raise RuntimeError(
                            f"no scheduled events left but the until event "
                            f"{stop_event!r} was never triggered"
                        ) from None
                    return None
                self._now = item[0]
                event = item[3]
                callbacks = event.callbacks
                if callbacks is None:  # pragma: no cover - defensive
                    continue
                event.callbacks = None
                processed += 1
                for callback in callbacks:
                    callback(event)

                if event._ok:
                    # Recycle plain process sleeps: one executed callback,
                    # and that callback was a ``Process._resume``.
                    if (
                        type(event) is timeout_cls
                        and len(callbacks) == 1
                        and getattr(callbacks[0], "__func__", None) is resume_func
                    ):
                        callbacks.clear()
                        event.callbacks = callbacks
                        event._value = pending
                        pool.append(event)
                elif not event.defused:
                    exc = event._value
                    if isinstance(exc, BaseException):
                        raise exc
                    raise RuntimeError(
                        f"event {event!r} failed with non-exception {exc!r}"
                    )
        except StopSimulation as stop:
            return stop.args[0] if stop.args else None
        finally:
            self._events_processed += processed

    #: Traced loop: a ``queue`` snapshot record every this many events.
    TRACE_QUEUE_SNAPSHOT_EVERY = 4096

    def _run_traced(self, until: Union[None, float, Event] = None) -> Any:
        """The instrumented twin of :meth:`run` (tracer attached).

        Same semantics, plus one ``ev`` record per fired event and a
        ``queue`` snapshot every :data:`TRACE_QUEUE_SNAPSHOT_EVERY` events.
        Kept as a separate copy of the loop so the untraced hot path pays
        nothing — not even dead branches — for the instrumentation.
        """
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    return stop_event.value
                stop_event.callbacks.append(StopSimulation.callback)
            else:
                at = float(until)
                if at == self._now:
                    return None
                if at < self._now:
                    raise ValueError(
                        f"until ({at}) must not be earlier than the current time ({self._now})"
                    )
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                stop_event.callbacks.append(StopSimulation.callback)
                self.schedule(stop_event, priority=URGENT, delay=at - self._now)

        pool = self._timeout_pool
        queue = self._queue
        pop = queue.pop
        pending = PENDING
        timeout_cls = Timeout
        resume_func = _PROCESS_RESUME
        write = self._tracer.write
        snapshot_every = self.TRACE_QUEUE_SNAPSHOT_EVERY
        processed = 0
        try:
            while True:
                try:
                    item = pop()
                except IndexError:
                    if stop_event is not None and not stop_event.triggered:
                        raise RuntimeError(
                            f"no scheduled events left but the until event "
                            f"{stop_event!r} was never triggered"
                        ) from None
                    return None
                self._now = now = item[0]
                event = item[3]
                write({"k": "ev", "t": now, "pr": item[1], "e": type(event).__name__})
                callbacks = event.callbacks
                if callbacks is None:  # pragma: no cover - defensive
                    continue
                event.callbacks = None
                processed += 1
                if not processed % snapshot_every:
                    write(
                        {
                            "k": "queue",
                            "t": now,
                            "pending": len(queue),
                            "processed": self._events_processed + processed,
                        }
                    )
                for callback in callbacks:
                    callback(event)

                if event._ok:
                    if (
                        type(event) is timeout_cls
                        and len(callbacks) == 1
                        and getattr(callbacks[0], "__func__", None) is resume_func
                    ):
                        callbacks.clear()
                        event.callbacks = callbacks
                        event._value = pending
                        pool.append(event)
                elif not event.defused:
                    exc = event._value
                    if isinstance(exc, BaseException):
                        raise exc
                    raise RuntimeError(
                        f"event {event!r} failed with non-exception {exc!r}"
                    )
        except StopSimulation as stop:
            return stop.args[0] if stop.args else None
        finally:
            self._events_processed += processed
