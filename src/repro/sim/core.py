"""Simulation environment: clock, event heap and execution loop.

The :class:`Environment` is the only stateful object a simulation needs to
share: it keeps the current simulated time, a heap of scheduled events and
the currently active process.  Everything else (clusters, schedulers,
applications) is expressed in terms of processes and events bound to an
environment.
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from math import inf
from typing import Any, Iterable, Optional, Union

from repro.sim.events import (
    NORMAL,
    URGENT,
    AllOf,
    AnyOf,
    Event,
    Timeout,
)
from repro.sim.process import Process, ProcessGenerator


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no more events are scheduled."""


class StopSimulation(Exception):
    """Internal exception used to stop :meth:`Environment.run` at an event.

    The exception value carries the value of the event the run stopped at.
    """

    @classmethod
    def callback(cls, event: Event) -> None:
        """Event callback that aborts the run loop when *event* is processed."""
        if event.ok:
            raise cls(event.value)
        # Propagate failures of the "until" event.
        raise event.value


class Environment:
    """Execution environment of a discrete-event simulation.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock.  Time is measured in seconds
        throughout this project.

    Examples
    --------
    >>> env = Environment()
    >>> def proc(env):
    ...     yield env.timeout(10)
    ...     return env.now
    >>> p = env.process(proc(env))
    >>> env.run()
    >>> p.value
    10
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now: float = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None

    # -- basic accessors -------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process whose generator is currently executing (if any)."""
        return self._active_process

    # -- event factories -------------------------------------------------

    def process(self, generator: ProcessGenerator) -> Process:
        """Create a new :class:`~repro.sim.process.Process` from *generator*."""
        return Process(self, generator)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Return an event that triggers after *delay* time units."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Return a new, untriggered :class:`~repro.sim.events.Event`."""
        return Event(self)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Return a condition event that succeeds when all *events* have."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Return a condition event that succeeds when any of *events* has."""
        return AnyOf(self, events)

    # -- scheduling and execution -----------------------------------------

    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Schedule *event* for processing after *delay* time units.

        Events scheduled for the same time are processed in priority order
        (lower first), then in insertion order.
        """
        heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def peek(self) -> float:
        """Return the time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else inf

    def step(self) -> None:
        """Process the next scheduled event.

        Raises
        ------
        EmptySchedule
            If no events are scheduled.
        """
        try:
            self._now, _, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive
            return
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            # An event failed and nobody handled it: surface the error so the
            # simulation does not silently swallow programming mistakes.
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise RuntimeError(f"event {event!r} failed with non-exception {exc!r}")

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until the event queue is exhausted;
            * a number — run until the clock reaches that time (a value equal
              to the current time is tolerated as a no-op, so drivers may
              compute ``until=min(limit, ...)`` without guarding the moment
              the clock reaches the limit);
            * an :class:`~repro.sim.events.Event` — run until that event is
              processed and return its value.

        Returns
        -------
        The value of the *until* event if one was given, otherwise ``None``.
        """
        stop_event: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop_event = until
                if stop_event.callbacks is None:
                    # Already processed: nothing to run.
                    return stop_event.value
                stop_event.callbacks.append(StopSimulation.callback)
            else:
                at = float(until)
                if at == self._now:
                    # Nothing can happen between now and now.
                    return None
                if at < self._now:
                    raise ValueError(
                        f"until ({at}) must not be earlier than the current time ({self._now})"
                    )
                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                stop_event.callbacks.append(StopSimulation.callback)
                self.schedule(stop_event, priority=URGENT, delay=at - self._now)

        try:
            while True:
                self.step()
        except StopSimulation as stop:
            return stop.args[0] if stop.args else None
        except EmptySchedule:
            if stop_event is not None and not stop_event.triggered:
                raise RuntimeError(
                    f"no scheduled events left but the until event {stop_event!r} "
                    "was never triggered"
                ) from None
            return None
