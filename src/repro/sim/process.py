"""Process abstraction for the discrete-event simulation kernel.

A :class:`Process` wraps a Python generator.  The generator *yields* events;
every time the yielded event is processed by the environment, the generator
is resumed with the event's value (or the event's exception is thrown into
it).  When the generator returns, the process event itself succeeds with the
generator's return value, so processes can wait on each other simply by
yielding another process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import NORMAL, PENDING, Event, Initialize, Interrupt

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment

#: Type alias for the generators accepted by :meth:`Environment.process`.
ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A simulation process driven by a generator of events.

    Parameters
    ----------
    env:
        The owning environment.
    generator:
        A generator yielding :class:`~repro.sim.events.Event` instances.

    Notes
    -----
    The process itself is an event that triggers when the generator
    terminates: it succeeds with the generator's return value, or fails with
    the exception that escaped the generator.  A process can be interrupted
    with :meth:`interrupt`, which throws :class:`~repro.sim.events.Interrupt`
    into the generator at its current yield point.
    """

    __slots__ = ("_generator", "_target", "_resume_cb")

    def __init__(self, env: "Environment", generator: ProcessGenerator) -> None:
        if not hasattr(generator, "throw"):
            raise ValueError(f"{generator!r} is not a generator")
        # Inlined ``Event.__init__``: one process is created per simulated
        # activity, which adds up to thousands of constructions per run.
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self.defused = False
        self._generator = generator
        #: Cached bound method: ``_resume`` is registered as a callback once
        #: per event the process waits on, so creating the bound method once
        #: here avoids an allocation per scheduling round-trip.
        self._resume_cb = self._resume
        #: The event this process is currently waiting for (initially the
        #: internal :class:`Initialize` event, ``None`` after termination).
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for."""
        return self._target

    @property
    def name(self) -> str:
        """Name of the wrapped generator function (for diagnostics)."""
        return getattr(self._generator, "__name__", repr(self._generator))

    @property
    def is_alive(self) -> bool:
        """``True`` while the wrapped generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` with *cause* into the process.

        Interrupting a terminated process or a process that is interrupting
        itself is an error.  The interrupt is delivered asynchronously via an
        urgent event so that the caller's own execution is not pre-empted.
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self.name} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True
        # Deliver before any other event scheduled at the current time.
        self.env.schedule(interrupt_event, priority=0)

        # Swap the process' resume callback onto the interrupt event.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:  # pragma: no cover - defensive
                pass
        interrupt_event.callbacks = [self._resume_cb]

    def _resume(self, event: Event) -> None:
        """Resume the generator with the value (or exception) of *event*."""
        env = self.env
        env._active_process = self
        generator = self._generator
        send = generator.send

        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    # The event failed: mark it as handled and throw the
                    # exception into the generator.
                    event.defused = True
                    exc = event._value
                    next_event = generator.throw(exc)
            except StopIteration as stop:
                # Process finished successfully.
                event = None  # type: ignore[assignment]
                self._ok = True
                self._value = stop.value
                env._eid = eid = env._eid + 1
                env._push((env._now, NORMAL, eid, self))
                break
            except BaseException as exc:
                # Process failed; the environment will re-raise unless a
                # waiter defuses the failure.
                event = None  # type: ignore[assignment]
                self._ok = False
                self._value = exc
                env._eid = eid = env._eid + 1
                env._push((env._now, NORMAL, eid, self))
                break

            # The generator yielded a new event to wait for.
            if not isinstance(next_event, Event):
                generator.throw(
                    TypeError(
                        f"process {self.name} yielded {next_event!r}, "
                        "which is not an Event"
                    )
                )
                continue

            callbacks = next_event.callbacks
            if callbacks is not None:
                # Event not yet processed: register and suspend.
                callbacks.append(self._resume_cb)
                self._target = next_event
                break

            # The event has already been processed: resume immediately with
            # its value in the next loop iteration.
            event = next_event

        self._target = None if event is None else self._target
        env._active_process = None
