"""Shared-resource primitives for the simulation kernel.

Three families of resources are provided:

* :class:`Resource` / :class:`PriorityResource` — a counted resource with a
  fixed integer capacity; processes *request* a unit and *release* it later.
  Requests may be used as context managers.
* :class:`Container` — a continuous or discrete quantity (e.g. a pool of
  processors modelled as an amount) with ``put``/``get`` operations.
* :class:`Store` / :class:`FilterStore` — a queue of arbitrary Python
  objects with ``put``/``get`` operations; the filtered variant lets getters
  wait for items satisfying a predicate.

These primitives are intentionally close to the classic process-interaction
APIs so the higher-level cluster and scheduler code reads naturally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment


class PreemptedError(Exception):
    """Raised (as an interrupt cause) when a pre-emptive request evicts a user."""

    def __init__(self, by: Any, usage_since: float) -> None:
        super().__init__(by, usage_since)
        #: The request that caused the pre-emption.
        self.by = by
        #: Simulation time at which the evicted user acquired the resource.
        self.usage_since = usage_since


class Put(Event):
    """Base class for put-style resource events (request/put)."""

    __slots__ = ("resource", "proc")

    def __init__(self, resource: "BaseResource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.proc = resource.env.active_process
        resource.put_queue.append(self)
        self.callbacks.append(resource._trigger_get)
        resource._trigger_put(None)

    def __enter__(self) -> "Put":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Withdraw the pending operation (or undo it, for requests)."""
        if not self.triggered:
            self.resource.put_queue.remove(self)


class Get(Event):
    """Base class for get-style resource events (release/get)."""

    __slots__ = ("resource", "proc")

    def __init__(self, resource: "BaseResource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.proc = resource.env.active_process
        resource.get_queue.append(self)
        self.callbacks.append(resource._trigger_put)
        resource._trigger_get(None)

    def __enter__(self) -> "Get":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Withdraw the pending operation."""
        if not self.triggered:
            self.resource.get_queue.remove(self)


class BaseResource:
    """Shared machinery for all resource types (queues and trigger logic)."""

    PutQueue = list
    GetQueue = list

    def __init__(self, env: "Environment", capacity: float) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self._capacity = capacity
        self.put_queue: list[Put] = self.PutQueue()
        self.get_queue: list[Get] = self.GetQueue()

    @property
    def capacity(self) -> float:
        """Maximum capacity of the resource."""
        return self._capacity

    # The following two methods walk the waiting queues and trigger any
    # operation that can now be satisfied.

    def _do_put(self, event: Put) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _do_get(self, event: Get) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _trigger_put(self, get_event: Optional[Get]) -> None:
        idx = 0
        while idx < len(self.put_queue):
            put_event = self.put_queue[idx]
            proceed = self._do_put(put_event)
            if put_event.triggered:
                self.put_queue.pop(idx)
            else:
                idx += 1
            if not proceed:
                break

    def _trigger_get(self, put_event: Optional[Put]) -> None:
        idx = 0
        while idx < len(self.get_queue):
            get_event = self.get_queue[idx]
            proceed = self._do_get(get_event)
            if get_event.triggered:
                self.get_queue.pop(idx)
            else:
                idx += 1
            if not proceed:
                break


# ---------------------------------------------------------------------------
# Counted resource
# ---------------------------------------------------------------------------


class Request(Put):
    """Request one usage slot of a :class:`Resource`.

    The event succeeds once a slot is granted.  Exiting the ``with`` block (or
    calling :meth:`cancel` after the grant) releases the slot again.
    """

    __slots__ = ()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self.triggered:
            self.resource.release(self)
        else:
            super().__exit__(exc_type, exc_value, traceback)


class Release(Get):
    """Release a previously granted :class:`Request` of a :class:`Resource`."""

    __slots__ = ("request",)

    def __init__(self, resource: "Resource", request: Request) -> None:
        self.request = request
        super().__init__(resource)


class PriorityRequest(Request):
    """A :class:`Request` with a priority (lower value = more important).

    Ties are broken by request time, then insertion order.
    """

    __slots__ = ("priority", "preempt", "time", "usage_since", "key")

    def __init__(self, resource: "Resource", priority: int = 0, preempt: bool = False) -> None:
        self.priority = priority
        self.preempt = preempt
        self.time = resource.env.now
        self.usage_since: Optional[float] = None
        self.key = (priority, self.time, not preempt)
        super().__init__(resource)


class SortedQueue(list):
    """A list kept sorted by each item's ``key`` attribute."""

    def append(self, item: Any) -> None:  # type: ignore[override]
        super().append(item)
        super().sort(key=lambda e: e.key)


class Resource(BaseResource):
    """A counted resource with *capacity* usage slots.

    Examples
    --------
    >>> env = Environment(); res = Resource(env, capacity=2)
    >>> def user(env, res):
    ...     with res.request() as req:
    ...         yield req
    ...         yield env.timeout(5)
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        super().__init__(env, capacity)
        #: Requests currently holding a slot.
        self.users: list[Request] = []
        #: Requests waiting for a slot (alias of ``put_queue``).
        self.queue = self.put_queue

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self) -> Request:
        """Request a usage slot."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Release the slot held by *request*."""
        return Release(self, request)

    def _do_put(self, event: Request) -> bool:
        if len(self.users) < self.capacity:
            self.users.append(event)
            event.succeed()
        return True

    def _do_get(self, event: Release) -> bool:
        try:
            self.users.remove(event.request)
        except ValueError:
            pass
        event.succeed()
        return True


class PriorityResource(Resource):
    """A :class:`Resource` whose waiting queue is ordered by priority."""

    PutQueue = SortedQueue

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        """Request a slot with the given *priority* (lower = sooner)."""
        return PriorityRequest(self, priority=priority)


# ---------------------------------------------------------------------------
# Container
# ---------------------------------------------------------------------------


class ContainerPut(Put):
    """Put *amount* units into a :class:`Container`."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount ({amount}) must be positive")
        self.amount = amount
        super().__init__(container)


class ContainerGet(Get):
    """Take *amount* units out of a :class:`Container`."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount ({amount}) must be positive")
        self.amount = amount
        super().__init__(container)


class Container(BaseResource):
    """A resource holding a divisible amount between 0 and *capacity*.

    Useful for modelling pools of identical processors where only the count
    matters.
    """

    def __init__(
        self, env: "Environment", capacity: float = float("inf"), init: float = 0.0
    ) -> None:
        super().__init__(env, capacity)
        if init < 0 or init > capacity:
            raise ValueError("init must lie within [0, capacity]")
        self._level = init

    @property
    def level(self) -> float:
        """Current amount stored in the container."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Put *amount* units into the container (waits if it would overflow)."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Get *amount* units out of the container (waits until available)."""
        return ContainerGet(self, amount)

    def _do_put(self, event: ContainerPut) -> bool:
        if self._capacity - self._level >= event.amount:
            self._level += event.amount
            event.succeed()
            return True
        return False

    def _do_get(self, event: ContainerGet) -> bool:
        if self._level >= event.amount:
            self._level -= event.amount
            event.succeed()
            return True
        return False


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


class StorePut(Put):
    """Put *item* into a :class:`Store`."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        self.item = item
        super().__init__(store)


class StoreGet(Get):
    """Get an item out of a :class:`Store`."""

    __slots__ = ()


class FilterStoreGet(StoreGet):
    """Get the first item matching *filter_fn* out of a :class:`FilterStore`."""

    __slots__ = ("filter",)

    def __init__(
        self, store: "FilterStore", filter_fn: Callable[[Any], bool] = lambda item: True
    ) -> None:
        self.filter = filter_fn
        super().__init__(store)


class Store(BaseResource):
    """A FIFO store of arbitrary Python objects with bounded capacity."""

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        self.items: list[Any] = []

    def put(self, item: Any) -> StorePut:
        """Put *item* into the store (waits while the store is full)."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Get the oldest item out of the store (waits while it is empty)."""
        return StoreGet(self)

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self._capacity:
            self.items.append(event.item)
            event.succeed()
        return True

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self.items.pop(0))
        return True


class FilterStore(Store):
    """A :class:`Store` whose getters may wait for items matching a predicate."""

    def get(self, filter_fn: Callable[[Any], bool] = lambda item: True) -> FilterStoreGet:  # type: ignore[override]
        """Get the first item for which ``filter_fn(item)`` is true."""
        return FilterStoreGet(self, filter_fn)

    def _do_get(self, event: FilterStoreGet) -> bool:  # type: ignore[override]
        for item in self.items:
            if event.filter(item):
                self.items.remove(item)
                event.succeed(item)
                break
        return True
