"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot synchronisation object.  It starts *pending*,
may later be *triggered* (scheduled with a value or an exception), and is
finally *processed* when the :class:`~repro.sim.core.Environment` pops it from
the event heap and invokes its callbacks.  Processes (see
:mod:`repro.sim.process`) wait on events by yielding them from their
generator.

The module also defines :class:`Timeout` (an event that triggers after a
simulated delay), :class:`Condition` with the :class:`AllOf`/:class:`AnyOf`
helpers (composite events), and :class:`Interrupt` (the exception thrown into
a process when it is interrupted).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment


class _Pending:
    """Sentinel type for the value of an event that has not been triggered."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


#: Unique sentinel used as the value of untriggered events.
PENDING = _Pending()

#: Scheduling priority for urgent events (processed before normal events at
#: the same simulation time).
URGENT = 0

#: Default scheduling priority.
NORMAL = 1


class Interrupt(Exception):
    """Exception thrown into a process when :meth:`Process.interrupt` is called.

    The optional *cause* (accessible via :attr:`cause`) carries arbitrary
    user data describing why the interruption happened, e.g. a shrink request
    from the malleability manager.
    """

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`, or ``None``."""
        return self.args[0] if self.args else None


class Event:
    """A one-shot event that may succeed with a value or fail with an exception.

    Parameters
    ----------
    env:
        The environment the event lives in.

    Notes
    -----
    The lifecycle is ``pending -> triggered -> processed``.  Callbacks (added
    by appending callables to :attr:`callbacks`) are invoked with the event as
    their sole argument when the event is processed.  After processing,
    :attr:`callbacks` is ``None`` and adding further callbacks is an error.

    Events are the single most allocated object of a simulation run, so the
    whole hierarchy declares ``__slots__``; subclasses outside the kernel may
    still add a ``__dict__`` by simply not declaring slots of their own.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: Set to ``True`` by a handler to indicate that a failure has been
        #: dealt with and must not be re-raised by the environment.
        self.defused = False

    # -- state inspection ------------------------------------------------

    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled (has a value or exception)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded; only valid once triggered."""
        if self._ok is None:
            raise RuntimeError(f"{self!r} has not yet been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The value of the event (or its exception if it failed)."""
        if self._value is PENDING:
            raise RuntimeError(f"{self!r} has not yet been triggered")
        return self._value

    # -- triggering ------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value* and schedule it."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined ``env.schedule(self)``: triggering is one of the hottest
        # call sites of a run, and the scheduling body is three lines.
        env = self.env
        env._eid = eid = env._eid + 1
        env._push((env._now, NORMAL, eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with *exception* and schedule it."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        env = self.env
        env._eid = eid = env._eid + 1
        env._push((env._now, NORMAL, eid, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state (ok/value) of another *event*.

        Used as a callback to chain events together.
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        env = self.env
        env._eid = eid = env._eid + 1
        env._push((env._now, NORMAL, eid, self))

    # -- composition -----------------------------------------------------

    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} ({state}) at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically after a simulated *delay*.

    Parameters
    ----------
    env:
        The owning environment.
    delay:
        Non-negative delay in simulated time units (seconds throughout this
        project).
    value:
        Optional value the timeout succeeds with.
    """

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Timeouts are the most allocated event of a simulation run: the
        # fields are set inline (no ``super().__init__`` / ``env.schedule``
        # call chain), and already-fired plain sleeps are recycled through
        # ``Environment.timeout`` without re-entering this constructor.
        self.env = env
        self.callbacks = []
        self._delay = delay
        self._ok = True
        self._value = value
        self.defused = False
        env._eid = eid = env._eid + 1
        env._push((env._now + delay, NORMAL, eid, self))

    @property
    def delay(self) -> float:
        """The delay this timeout was created with."""
        return self._delay


class Initialize(Event):
    """Internal event used to start a newly created process immediately."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: Any) -> None:
        self.env = env
        self._ok = True
        self._value = None
        self.callbacks = [process._resume_cb]
        self.defused = False
        env._eid = eid = env._eid + 1
        env._push((env._now, URGENT, eid, self))


class ConditionValue:
    """Ordered mapping of events to values produced by a :class:`Condition`.

    Behaves like a read-only dictionary keyed by the original events, in
    trigger order.  Supports ``in``, ``len``, iteration over events and
    ``todict()``.
    """

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(str(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def keys(self):
        return iter(self.events)

    def values(self):
        return (event._value for event in self.events)

    def items(self):
        return ((event, event._value) for event in self.events)

    def todict(self) -> dict[Event, Any]:
        """Return a plain ``dict`` mapping events to their values."""
        return {event: event._value for event in self.events}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Composite event combining several events with an evaluation function.

    The condition triggers as soon as ``evaluate(events, count)`` returns
    ``True``, where *count* is the number of already-triggered sub-events, or
    immediately fails if any sub-event fails.  Use the :class:`AllOf` and
    :class:`AnyOf` convenience subclasses (or the ``&``/``|`` operators on
    events).
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        self.env = env
        self.callbacks = []
        self._value = PENDING
        self._ok = None
        self.defused = False
        self._evaluate = evaluate
        self._events = events = list(events)
        self._count = 0

        for event in events:
            if event.env is not env:
                raise ValueError("all events of a condition must share an environment")

        # Batched evaluation of the initial state: already-processed
        # sub-events are counted in a single in-order pass (one evaluation
        # per counted event, exactly as the callback path would have done),
        # and a single cached bound method is registered on each pending
        # sub-event.  Once the condition has triggered, the remaining
        # sub-events need no callbacks at all — a late ``_check`` would be a
        # no-op anyway.
        check = self._check
        count = 0
        for event in events:
            if event.callbacks is None:
                count += 1
                self._count = count
                if not event._ok:
                    event.defused = True
                    self._ok = False
                    self._value = event._value
                    env._eid = eid = env._eid + 1
                    env._push((env._now, NORMAL, eid, self))
                    break
                if evaluate(events, count):
                    self._ok = True
                    condition_value = ConditionValue()
                    self._populate_value(condition_value)
                    self._value = condition_value
                    env._eid = eid = env._eid + 1
                    env._push((env._now, NORMAL, eid, self))
                    break
            else:
                event.callbacks.append(check)

        if not events and self._value is PENDING:
            # An empty condition is trivially satisfied.
            self.succeed(ConditionValue())

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition):
                event._populate_value(value)
            elif event.callbacks is None:
                value.events.append(event)

    def _build_value(self, event: Event) -> None:
        if event._ok:
            condition_value = ConditionValue()
            self._populate_value(condition_value)
            self._value = condition_value
        else:
            self._value = event._value

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            # A failing sub-event fails the whole condition.
            event.defused = True
            self._ok = False
            self._value = event._value
            env = self.env
            env._eid = eid = env._eid + 1
            env._push((env._now, NORMAL, eid, self))
        elif self._evaluate(self._events, self._count):
            self._ok = True
            condition_value = ConditionValue()
            self._populate_value(condition_value)
            self._value = condition_value
            env = self.env
            env._eid = eid = env._eid + 1
            env._push((env._now, NORMAL, eid, self))

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        """Evaluation function: all sub-events triggered."""
        return len(events) == count

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        """Evaluation function: at least one sub-event triggered."""
        return count > 0 or len(events) == 0


class AllOf(Condition):
    """Condition satisfied when *all* given events have succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)

    def _check(self, event: Event) -> None:
        # Specialised dispatch: compare the trigger count against the event
        # count directly instead of going through the ``_evaluate`` callable.
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self._ok = False
            self._value = event._value
            env = self.env
            env._eid = eid = env._eid + 1
            env._push((env._now, NORMAL, eid, self))
        elif self._count == len(self._events):
            self._ok = True
            condition_value = ConditionValue()
            self._populate_value(condition_value)
            self._value = condition_value
            env = self.env
            env._eid = eid = env._eid + 1
            env._push((env._now, NORMAL, eid, self))


class AnyOf(Condition):
    """Condition satisfied when *any* of the given events has succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)

    def _check(self, event: Event) -> None:
        # Specialised dispatch: the first triggered sub-event decides.
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            event.defused = True
            self._ok = False
            self._value = event._value
        else:
            self._ok = True
            condition_value = ConditionValue()
            self._populate_value(condition_value)
            self._value = condition_value
        env = self.env
        env._eid = eid = env._eid + 1
        env._push((env._now, NORMAL, eid, self))
