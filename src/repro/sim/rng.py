"""Named, independently seeded random streams.

Reproducibility is essential for a simulation-based reproduction: the paper
reports four runs of each experiment configuration; we instead run seeded
repetitions.  :class:`RandomStreams` derives an independent
:class:`numpy.random.Generator` per *named* component (e.g. ``"arrivals"``,
``"background:delft"``, ``"workload-mix"``) from a single root seed using
``numpy``'s ``SeedSequence.spawn`` machinery, so that:

* the same root seed always produces the same experiment, and
* adding a new stochastic component does not perturb the draws of existing
  components (streams are keyed by name, not by creation order).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np


class RandomStreams:
    """A factory of named, independent random number generators.

    Parameters
    ----------
    seed:
        Root seed for the whole experiment.  ``None`` draws entropy from the
        OS (not recommended for experiments, fine for exploration).

    Examples
    --------
    >>> streams = RandomStreams(seed=42)
    >>> arrivals = streams["arrivals"]
    >>> again = RandomStreams(seed=42)
    >>> float(arrivals.random()) == float(again["arrivals"].random())
    True
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed = seed
        self._root = np.random.SeedSequence(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> Optional[int]:
        """The root seed this collection was created with."""
        return self._seed

    def __getitem__(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for stream *name*."""
        if not isinstance(name, str) or not name:
            raise KeyError("stream names must be non-empty strings")
        if name not in self._streams:
            # Derive a child seed deterministically from the root seed and the
            # stream name, independent of creation order.
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=tuple(int(b) for b in digest),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def stream(self, name: str) -> np.random.Generator:
        """Alias of ``self[name]`` for readability at call sites."""
        return self[name]

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __iter__(self) -> Iterator[str]:
        return iter(self._streams)

    def __len__(self) -> int:
        return len(self._streams)

    def lane_states(self) -> Dict[str, dict]:
        """JSON-able state of every *instantiated* lane, keyed by name.

        The checkpoint layer's capture hook: a lane's
        ``Generator.bit_generator.state`` is a plain dict of ints/strings,
        so the whole mapping serialises losslessly.  Lanes that were never
        drawn from are absent — re-deriving them from the root seed on
        demand is already deterministic.
        """
        return {
            name: _jsonable_state(generator.bit_generator.state)
            for name, generator in sorted(self._streams.items())
        }

    def restore_lane_states(self, states: Dict[str, dict]) -> None:
        """Restore lanes captured by :meth:`lane_states`.

        Each named lane is (re-)instantiated from the root seed and then
        fast-forwarded to its captured state, so subsequent draws continue
        exactly where the checkpointed run left off.
        """
        for name, state in states.items():
            self[name].bit_generator.state = state

    def spawn(self, label: str, index: int) -> "RandomStreams":
        """Derive a child collection (e.g. one per repetition of an experiment).

        The child's streams are independent of the parent's and of siblings
        with different ``(label, index)``.
        """
        base = 0 if self._seed is None else int(self._seed)
        mixed = hash((base, label, index)) & 0x7FFFFFFF
        return RandomStreams(seed=mixed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomStreams(seed={self._seed!r}, streams={sorted(self._streams)})"


def _jsonable_state(state: object) -> object:
    """Recursively convert a bit-generator state dict to JSON-able types.

    PCG64 states carry 128-bit Python ints (JSON-safe) and plain strings;
    other bit generators may nest numpy scalars or arrays, which are folded
    to ints and lists so every supported generator round-trips.
    """
    if isinstance(state, dict):
        return {key: _jsonable_state(value) for key, value in state.items()}
    if isinstance(state, np.ndarray):
        return [int(value) for value in state.tolist()]
    if isinstance(state, np.integer):
        return int(state)
    return state
