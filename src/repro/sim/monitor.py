"""Measurement primitives used by the metrics layer.

The experimental section of the paper reports cumulative distributions,
utilization-over-time curves and cumulative counts of malleability messages.
These are all derived from two kinds of raw observations:

* *time series* — step functions of simulated time (e.g. number of busy
  processors), captured with :class:`TimeSeries`;
* *counters* — monotonically increasing event counts with timestamps,
  captured with :class:`Counter`.

:class:`TimeWeightedStat` computes time-weighted means/extremes of a step
function incrementally, which is what the per-job "average number of
processors over the execution time" metric needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np


class TimeSeries:
    """A right-continuous step function sampled at change points.

    ``record(t, v)`` appends an observation meaning "from time *t* onwards the
    value is *v* (until the next observation)".

    ``record`` sits on the accumulation fast path (three series per cluster
    are updated on every allocate/release), so the class is slotted and the
    method touches each list once.
    """

    __slots__ = ("name", "times", "values")

    def __init__(
        self,
        name: str = "",
        times: Optional[List[float]] = None,
        values: Optional[List[float]] = None,
    ) -> None:
        self.name = name
        self.times: List[float] = [] if times is None else list(times)
        self.values: List[float] = [] if values is None else list(values)

    def record(self, time: float, value: float) -> None:
        """Record that the series takes *value* from *time* onwards."""
        times = self.times
        if times:
            last = times[-1]
            if time < last:
                raise ValueError(
                    f"observations must be recorded in time order "
                    f"(got {time} after {last})"
                )
            if time == last:
                # Same-instant update: keep the latest value only.
                self.values[-1] = value
                return
        times.append(float(time))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def value_at(self, time: float) -> float:
        """Value of the step function at *time* (0.0 before the first sample)."""
        if not self.times or time < self.times[0]:
            return 0.0
        idx = int(np.searchsorted(np.asarray(self.times), time, side="right")) - 1
        return self.values[idx]

    def sample(self, times: Sequence[float]) -> np.ndarray:
        """Sample the step function at each of *times* (vectorised)."""
        probe = np.asarray(times, dtype=float)
        if not self.times:
            return np.zeros_like(probe)
        own_times = np.asarray(self.times, dtype=float)
        own_values = np.asarray(self.values, dtype=float)
        indices = np.searchsorted(own_times, probe, side="right") - 1
        result = np.where(indices >= 0, own_values[np.clip(indices, 0, len(own_values) - 1)], 0.0)
        return result

    def time_average(self, start: Optional[float] = None, end: Optional[float] = None) -> float:
        """Time-weighted average of the series over ``[start, end]``."""
        if not self.times:
            return 0.0
        start = self.times[0] if start is None else start
        end = self.times[-1] if end is None else end
        if end <= start:
            return self.value_at(start)
        stat = TimeWeightedStat(start_time=start, value=self.value_at(start))
        for t, v in zip(self.times, self.values):
            if t <= start:
                continue
            if t >= end:
                break
            stat.update(t, v)
        return stat.finalize(end).mean

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` as numpy arrays."""
        return np.asarray(self.times, dtype=float), np.asarray(self.values, dtype=float)


class Counter:
    """A monotonically increasing event counter with per-event timestamps."""

    __slots__ = ("name", "times", "increments")

    def __init__(
        self,
        name: str = "",
        times: Optional[List[float]] = None,
        increments: Optional[List[float]] = None,
    ) -> None:
        self.name = name
        self.times: List[float] = [] if times is None else list(times)
        self.increments: List[float] = [] if increments is None else list(increments)

    def increment(self, time: float, amount: float = 1.0) -> None:
        """Record *amount* new occurrences at *time*."""
        if amount < 0:
            raise ValueError("counter increments must be non-negative")
        times = self.times
        if times and time < times[-1]:
            raise ValueError("counter increments must be recorded in time order")
        times.append(float(time))
        self.increments.append(float(amount))

    @property
    def total(self) -> float:
        """Total count so far."""
        return float(sum(self.increments))

    def __len__(self) -> int:
        return len(self.times)

    def cumulative(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(times, cumulative counts)`` suitable for plotting."""
        times = np.asarray(self.times, dtype=float)
        counts = np.cumsum(np.asarray(self.increments, dtype=float))
        return times, counts

    def count_before(self, time: float) -> float:
        """Cumulative count of occurrences recorded at or before *time*."""
        total = 0.0
        for t, inc in zip(self.times, self.increments):
            if t > time:
                break
            total += inc
        return total


@dataclass
class TimeWeightedStat:
    """Incremental time-weighted statistics of a step function.

    Feed it the change points of the function with :meth:`update`, then call
    :meth:`finalize` with the end of the observation window.  The object is
    returned by :meth:`finalize` so results can be read fluently::

        mean = TimeWeightedStat(t0, v0).update(t1, v1).finalize(t_end).mean
    """

    start_time: float
    value: float
    _last_time: float = field(init=False)
    _weighted_sum: float = field(default=0.0, init=False)
    _duration: float = field(default=0.0, init=False)
    _minimum: float = field(init=False)
    _maximum: float = field(init=False)
    _finalized: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        self._last_time = self.start_time
        self._minimum = self.value
        self._maximum = self.value

    def update(self, time: float, value: float) -> "TimeWeightedStat":
        """Record that the function changes to *value* at *time*."""
        if self._finalized:
            raise RuntimeError("cannot update a finalized statistic")
        if time < self._last_time:
            raise ValueError("updates must be fed in time order")
        dt = time - self._last_time
        self._weighted_sum += self.value * dt
        self._duration += dt
        self._last_time = time
        self.value = value
        self._minimum = min(self._minimum, value)
        self._maximum = max(self._maximum, value)
        return self

    def finalize(self, end_time: float) -> "TimeWeightedStat":
        """Close the observation window at *end_time*."""
        if self._finalized:
            return self
        if end_time < self._last_time:
            raise ValueError("end_time precedes the last update")
        dt = end_time - self._last_time
        self._weighted_sum += self.value * dt
        self._duration += dt
        self._finalized = True
        return self

    @property
    def mean(self) -> float:
        """Time-weighted mean of the function over the observed window."""
        if self._duration <= 0:
            return self.value
        return self._weighted_sum / self._duration

    @property
    def minimum(self) -> float:
        """Smallest value observed."""
        return self._minimum

    @property
    def maximum(self) -> float:
        """Largest value observed."""
        return self._maximum

    @property
    def duration(self) -> float:
        """Length of the observed window."""
        return self._duration


def merge_step_functions(
    series: Iterable[TimeSeries],
) -> Tuple[np.ndarray, np.ndarray]:
    """Sum several step functions into one (e.g. per-cluster usage into total).

    Returns ``(times, values)`` of the summed step function evaluated at the
    union of all change points.
    """
    series = list(series)
    if not series:
        return np.asarray([]), np.asarray([])
    all_times = sorted({t for s in series for t in s.times})
    times = np.asarray(all_times, dtype=float)
    total = np.zeros_like(times)
    for s in series:
        total += s.sample(times)
    return times, total
