"""Event-queue implementations for the simulation kernel.

The :class:`~repro.sim.core.Environment` orders its events by the triple
``(time, priority, insertion_id)``.  Two interchangeable queue
implementations provide that total order:

* :class:`HeapQueue` — the classic binary heap (``heapq``), the kernel's
  original scheduler.  Robust for any event-time distribution, O(log n)
  per operation with C-implemented primitives.
* :class:`CalendarQueue` — a self-resizing bucketed queue (R. Brown,
  *Calendar Queues: A Fast O(1) Priority Queue Implementation for the
  Simulation Event Set Problem*, CACM 1988).  Events hash into
  fixed-width time buckets ("days"); dequeueing scans from the current
  bucket, wrapping around the bucket array (a "year") and falling back
  to a direct minimum search when a whole year is empty.  The queue
  re-sizes itself — doubling or halving the bucket count and
  re-estimating the bucket width from the observed event-time spread —
  so churn-heavy timeout traffic (the dominant pattern of this
  project's simulations) stays O(1) per operation.

Both implementations pop events in the **identical** total order: ties on
time are broken by priority, then by insertion id, which is unique — so a
simulation produces byte-identical results regardless of the queue
(enforced by the golden-metrics snapshots and a hypothesis property test).

The implementation is selected per :class:`~repro.sim.core.Environment`
through the ``REPRO_SIM_QUEUE`` environment variable (``calendar`` is the
default, ``heap`` the escape hatch).
"""

from __future__ import annotations

import os
from functools import partial
from heapq import heapify, heappop, heappush
from math import inf
from typing import Any, Dict, List, Tuple

#: Environment variable selecting the event-queue implementation.
QUEUE_ENV = "REPRO_SIM_QUEUE"

#: Recognised queue names.
QUEUE_HEAP = "heap"
QUEUE_CALENDAR = "calendar"

#: A scheduled entry: ``(time, priority, insertion_id, event)``.
Entry = Tuple[float, int, int, Any]


def resolve_queue_name(name: "str | None" = None) -> str:
    """Resolve the queue implementation name (argument > env var > default)."""
    if name is None:
        name = os.environ.get(QUEUE_ENV) or QUEUE_CALENDAR
    name = name.strip().lower()
    if name not in (QUEUE_HEAP, QUEUE_CALENDAR):
        raise ValueError(
            f"unknown event-queue implementation {name!r} "
            f"(${QUEUE_ENV} accepts '{QUEUE_CALENDAR}' or '{QUEUE_HEAP}')"
        )
    return name


def make_queue(name: "str | None" = None) -> "HeapQueue | CalendarQueue":
    """Instantiate the queue implementation selected by *name* / ``$REPRO_SIM_QUEUE``."""
    resolved = resolve_queue_name(name)
    if resolved == QUEUE_HEAP:
        return HeapQueue()
    return CalendarQueue()


class HeapQueue:
    """The classic ``heapq``-backed event queue.

    ``push`` and ``pop`` are :func:`functools.partial` bindings of the C
    heap primitives to the backing list, so the hot path pays no Python
    frame on top of ``heappush``/``heappop``.
    """

    __slots__ = ("name", "items", "push", "pop")

    def __init__(self) -> None:
        self.name = QUEUE_HEAP
        self.items: List[Entry] = []
        #: ``push(entry)`` — schedule one entry.
        self.push = partial(heappush, self.items)
        #: ``pop()`` — remove and return the minimal entry (IndexError if empty).
        self.pop = partial(heappop, self.items)

    def __len__(self) -> int:
        return len(self.items)

    def peek_time(self) -> float:
        """Time of the next entry, or ``inf`` when empty."""
        items = self.items
        return items[0][0] if items else inf

    def entries(self) -> List[Entry]:
        """Sorted snapshot of every pending entry (no mutation).

        Checkpoint introspection: the drain order the queue would produce
        from here, identical across both implementations.
        """
        return sorted(self.items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<HeapQueue {len(self.items)} entries>"


class CalendarQueue:
    """Self-resizing calendar (bucket) queue over ``(time, priority, id)`` entries.

    Parameters
    ----------
    bucket_count:
        Initial number of buckets (kept a power of two; doubled/halved as
        the queue grows and shrinks).
    bucket_width:
        Initial width, in simulated time, of one bucket ("day").  Re-estimated
        from the live event-time spread at every resize.

    Notes
    -----
    Buckets hold their entries as small binary heaps (``heapq``'s C
    primitives, so within-bucket ordering costs no Python bytecode and no
    list shifting).  Entries at the same time always land in the same
    bucket, so within-bucket tuple ordering *is* the queue's total order —
    identical to the global heap's.

    The dequeue scan tracks the current bucket and the end of its current
    "day" (``_bucket_top`` in the closure state).  An entry is only taken
    from the current bucket if it belongs to the current year; otherwise the
    scan advances, wrapping at most once around the calendar before falling
    back to a direct search for the global minimum (rare: it means a whole
    year was empty).

    ``push``/``pop``/``peek_time`` are compiled as closures over the queue
    state rather than methods over ``self``: every hot-path state access is
    a cell-variable load instead of an attribute lookup, which is what lets
    a pure-Python bucket queue keep pace with the C-implemented heap at
    simulation sizes.  Inspect the state through :attr:`stats` (a snapshot
    dict), ``len()`` and ``repr()``.
    """

    __slots__ = ("name", "push", "pop", "peek_time", "stats", "entries")

    #: Smallest bucket-array size the queue shrinks down to.
    MIN_BUCKETS = 16

    def __init__(self, bucket_count: int = 16, bucket_width: float = 1.0) -> None:
        if bucket_count < 1:
            raise ValueError("bucket_count must be positive")
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self.name = QUEUE_CALENDAR
        min_buckets = self.MIN_BUCKETS
        count = 1
        while count < max(bucket_count, min_buckets):
            count *= 2

        # -- closure state ---------------------------------------------------
        buckets: List[List[Entry]] = [[] for _ in range(count)]
        mask = count - 1
        width = float(bucket_width)
        size = 0
        #: Index of the bucket the dequeue scan currently points at.
        current = 0
        #: Exclusive upper time bound of the current bucket's current day.
        bucket_top = width
        #: ``bucket_top - width``: pushes earlier than this rewind the scan.
        rewind_below = 0.0
        grow_at = count * 2
        shrink_at = count // 2 if count > min_buckets else -1

        def push(entry: Entry) -> None:
            """Insert *entry*, keeping its bucket sorted."""
            nonlocal size, current, bucket_top, rewind_below
            time = entry[0]
            day = int(time // width)
            heappush(buckets[day & mask], entry)
            size += 1
            if time < rewind_below:
                # Earlier than the dequeue scan position: rewind the scan to
                # the new entry's bucket so it cannot be skipped.  (The
                # simulation kernel never schedules into the past, but the
                # queue stays correct for arbitrary push orders.)
                current = day & mask
                bucket_top = (day + 1) * width
                rewind_below = bucket_top - width
            if size > grow_at:
                resize((mask + 1) * 2)

        def pop() -> Entry:
            """Remove and return the minimal entry (IndexError when empty).

            The common case — the next event lives in the bucket the scan
            already points at — is handled without entering the scan loop.
            """
            nonlocal size
            bucket = buckets[current]
            if bucket and bucket[0][0] < bucket_top:
                size -= 1
                entry = heappop(bucket)
                if size < shrink_at:
                    resize((mask + 1) // 2)
                return entry
            return pop_scan()

        def pop_scan() -> Entry:
            """Slow path of ``pop``: advance the year scan (or search directly)."""
            nonlocal size, current, bucket_top, rewind_below
            if not size:
                raise IndexError("pop from an empty CalendarQueue")
            i = current
            top = bucket_top
            for _ in range(mask + 1):
                bucket = buckets[i]
                if bucket and bucket[0][0] < top:
                    entry = heappop(bucket)
                    current = i
                    bucket_top = top
                    rewind_below = top - width
                    size -= 1
                    if size < shrink_at:
                        resize((mask + 1) // 2)
                    return entry
                i = (i + 1) & mask
                top += width
            # A whole year was empty: find the global minimum directly.
            # Entries at equal times share a bucket, so comparing bucket
            # heads by their full tuples never reaches the (incomparable)
            # event objects.
            entry = min(bucket[0] for bucket in buckets if bucket)
            day = int(entry[0] // width)
            i = day & mask
            buckets[i].remove(entry)
            heapify(buckets[i])
            current = i
            bucket_top = (day + 1) * width
            rewind_below = bucket_top - width
            size -= 1
            if size < shrink_at:
                resize((mask + 1) // 2)
            return entry

        def peek_time() -> float:
            """Time of the next entry, or ``inf`` when empty (no mutation)."""
            if not size:
                return inf
            i = current
            top = bucket_top
            for _ in range(mask + 1):
                bucket = buckets[i]
                if bucket and bucket[0][0] < top:
                    return bucket[0][0]
                i = (i + 1) & mask
                top += width
            return min(bucket[0][0] for bucket in buckets if bucket)

        def resize(new_count: int) -> None:
            nonlocal buckets, mask, width, grow_at, shrink_at
            nonlocal current, bucket_top, rewind_below
            if new_count < min_buckets:
                return
            entries: List[Entry] = []
            for bucket in buckets:
                entries.extend(bucket)
            width = estimate_width(entries)
            buckets = [[] for _ in range(new_count)]
            mask = new_count - 1
            for entry in entries:
                buckets[int(entry[0] // width) & mask].append(entry)
            for bucket in buckets:
                bucket.sort()  # a sorted list is a valid binary heap
            grow_at = new_count * 2
            shrink_at = new_count // 2 if new_count > min_buckets else -1
            # Re-anchor the dequeue scan at the earliest remaining entry.
            start = min(entry[0] for entry in entries) if entries else 0.0
            day = int(start // width)
            current = day & mask
            bucket_top = (day + 1) * width
            rewind_below = bucket_top - width

        def estimate_width(entries: List[Entry]) -> float:
            """Bucket width targeting a few entries per bucket near the head.

            Deterministic function of the queue contents: three times the
            *median* gap between adjacent distinct event times.  The median
            is what makes the estimate robust — simulation schedules mix
            dense near-future traffic (message latencies, poll ticks) with
            a long tail of far-future completions, and a span-based
            estimate would let the tail inflate the width until every
            pending event aliased into one bucket.  Degenerate spreads
            (all events at one time) keep the previous width.
            """
            if len(entries) < 2:
                return width
            times = sorted({entry[0] for entry in entries})
            if len(times) < 2:
                return width
            gaps = sorted(times[k + 1] - times[k] for k in range(len(times) - 1))
            new_width = 3.0 * gaps[len(gaps) // 2]
            # Guard against pathological tiny widths that would alias every
            # bucket to the same few slots through float rounding.
            return new_width if new_width > 1e-9 else 1e-9

        def stats() -> Dict[str, Any]:
            """Snapshot of the queue geometry (size, bucket count, width)."""
            return {"size": size, "buckets": mask + 1, "width": width}

        def entries() -> List[Entry]:
            """Sorted snapshot of every pending entry (no mutation).

            Checkpoint introspection: the drain order the queue would
            produce from here, identical across both implementations.
            """
            out: List[Entry] = []
            for bucket in buckets:
                out.extend(bucket)
            out.sort()
            return out

        self.push = push
        self.pop = pop
        self.peek_time = peek_time
        self.stats = stats
        self.entries = entries

    def __len__(self) -> int:
        return self.stats()["size"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = self.stats()
        return (
            f"<CalendarQueue {state['size']} entries in {state['buckets']} "
            f"buckets of width {state['width']:g}>"
        )
