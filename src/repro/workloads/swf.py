"""Standard Workload Format (SWF) support.

The Parallel Workloads Archive and the Grid Workloads Archive distribute job
traces in the Standard Workload Format: one job per line, 18
whitespace-separated fields, ``;`` starting header/comment lines.  Replaying
archive traces through the simulated KOALA scheduler is a natural extension
of the paper's synthetic workloads (and is how follow-up studies of the
DAS system were performed), so this module provides a reader, a writer and a
converter into :class:`~repro.workloads.spec.WorkloadSpec`.

Only the fields relevant to this reproduction are interpreted; all 18 are
preserved on round-trips.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, TextIO, Union

from repro.koala.job import JobKind
from repro.workloads.spec import JobSpec, WorkloadSpec


class SwfField(enum.IntEnum):
    """Column indices of the 18 standard SWF fields."""

    JOB_NUMBER = 0
    SUBMIT_TIME = 1
    WAIT_TIME = 2
    RUN_TIME = 3
    ALLOCATED_PROCESSORS = 4
    AVERAGE_CPU_TIME = 5
    USED_MEMORY = 6
    REQUESTED_PROCESSORS = 7
    REQUESTED_TIME = 8
    REQUESTED_MEMORY = 9
    STATUS = 10
    USER_ID = 11
    GROUP_ID = 12
    EXECUTABLE = 13
    QUEUE = 14
    PARTITION = 15
    PRECEDING_JOB = 16
    THINK_TIME = 17


@dataclass(frozen=True)
class SwfJob:
    """One SWF record with typed access to the fields this project uses."""

    fields: tuple

    def __post_init__(self) -> None:
        if len(self.fields) != len(SwfField):
            raise ValueError(
                f"an SWF record has {len(SwfField)} fields, got {len(self.fields)}"
            )

    @property
    def job_number(self) -> int:
        return int(self.fields[SwfField.JOB_NUMBER])

    @property
    def submit_time(self) -> float:
        return float(self.fields[SwfField.SUBMIT_TIME])

    @property
    def run_time(self) -> float:
        return float(self.fields[SwfField.RUN_TIME])

    @property
    def requested_processors(self) -> int:
        requested = int(self.fields[SwfField.REQUESTED_PROCESSORS])
        if requested > 0:
            return requested
        return max(1, int(self.fields[SwfField.ALLOCATED_PROCESSORS]))

    @property
    def status(self) -> int:
        return int(self.fields[SwfField.STATUS])

    @property
    def valid(self) -> bool:
        """Whether the record describes a job that actually ran."""
        return self.run_time > 0 and self.requested_processors > 0

    def as_line(self) -> str:
        """Serialise back to an SWF data line."""
        return " ".join(self._format(value) for value in self.fields)

    @staticmethod
    def _format(value) -> str:
        # float.is_integer() rather than == int(value): the latter raises on
        # non-finite values, which must still serialise (and re-parse).
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)


def _parse_number(text: str) -> Union[int, float]:
    """Parse one SWF field: integer when possible, float otherwise.

    Archive files are not uniform about number formatting — some tools emit
    exponent notation (``1e3``, ``2E-1``) or explicit signs for fields that
    are conceptually integral, so parsing must accept anything :func:`float`
    accepts while keeping exact integers as :class:`int` (round-trips of
    large job numbers must not go through floating point).
    """
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"not a number in SWF field: {text!r}") from None


class SwfReader:
    """Streaming reader of SWF files (header comments preserved)."""

    def __init__(self) -> None:
        self.header: List[str] = []

    def parse_line(self, line: str) -> Optional[SwfJob]:
        """Parse one line; returns ``None`` for comments and blank lines."""
        stripped = line.strip()
        if not stripped:
            return None
        if stripped.startswith(";"):
            self.header.append(stripped)
            return None
        parts = stripped.split()
        if len(parts) < len(SwfField):
            raise ValueError(f"malformed SWF line (only {len(parts)} fields): {line!r}")
        values = tuple(_parse_number(part) for part in parts[: len(SwfField)])
        return SwfJob(fields=values)

    def iter_records(
        self, source: Union[str, Path, TextIO, Iterable[str]]
    ) -> Iterator[SwfJob]:
        """Lazily yield job records from a path, file object or line iterable.

        This is the streaming ingestion path: one record is alive at a time,
        so multi-hundred-thousand-job archive traces can be transformed and
        replayed with flat memory.  Header comment lines encountered while
        streaming accumulate in :attr:`header` as a side effect.
        """
        if isinstance(source, (str, Path)):
            with open(source, "r", encoding="utf-8") as handle:
                yield from self.iter_records(handle)
                return
        for line in source:
            record = self.parse_line(line)
            if record is not None:
                yield record

    def read(self, source: Union[str, Path, TextIO, Iterable[str]]) -> List[SwfJob]:
        """Read all job records from a path, file object or iterable of lines."""
        return list(self.iter_records(source))


class SwfWriter:
    """Writer of SWF files (used to snapshot generated workloads)."""

    def __init__(self, header: Optional[Sequence[str]] = None) -> None:
        self.header = list(header or [])

    def write(self, jobs: Iterable[SwfJob], destination: Union[str, Path, TextIO]) -> None:
        """Write *jobs* (and the header) to *destination*."""
        if isinstance(destination, (str, Path)):
            with open(destination, "w", encoding="utf-8") as handle:
                self.write(jobs, handle)
                return
        for line in self.header:
            if not line.startswith(";"):
                line = "; " + line
            destination.write(line + "\n")
        for job in jobs:
            destination.write(job.as_line() + "\n")

    @staticmethod
    def from_workload(spec: WorkloadSpec, *, default_runtime: float = 600.0) -> List[SwfJob]:
        """Convert a :class:`WorkloadSpec` into SWF records.

        The runtime field is filled with *default_runtime* because the actual
        runtime of a malleable job depends on the scheduler; the requested
        processor field carries the job's maximum size.
        """
        records: List[SwfJob] = []
        for index, job in enumerate(spec.jobs, start=1):
            maximum = job.maximum_processors or job.initial_processors
            fields = [0] * len(SwfField)
            fields[SwfField.JOB_NUMBER] = index
            fields[SwfField.SUBMIT_TIME] = job.submit_time
            fields[SwfField.WAIT_TIME] = -1
            fields[SwfField.RUN_TIME] = default_runtime
            fields[SwfField.ALLOCATED_PROCESSORS] = job.initial_processors
            fields[SwfField.AVERAGE_CPU_TIME] = -1
            fields[SwfField.USED_MEMORY] = -1
            fields[SwfField.REQUESTED_PROCESSORS] = maximum
            fields[SwfField.REQUESTED_TIME] = -1
            fields[SwfField.REQUESTED_MEMORY] = -1
            fields[SwfField.STATUS] = 1
            fields[SwfField.USER_ID] = -1
            fields[SwfField.GROUP_ID] = -1
            fields[SwfField.EXECUTABLE] = 1 if job.profile_name == "gadget2" else 2
            fields[SwfField.QUEUE] = -1
            fields[SwfField.PARTITION] = -1
            fields[SwfField.PRECEDING_JOB] = -1
            fields[SwfField.THINK_TIME] = -1
            records.append(SwfJob(fields=tuple(fields)))
        return records


def iter_jobspecs(
    records: Iterable[SwfJob],
    *,
    name: str = "swf",
    profile_map: Optional[Dict[int, str]] = None,
    default_profile: str = "gadget2",
    malleable_fraction: float = 1.0,
    malleable_seed: int = 0,
    minimum_processors: int = 2,
    max_jobs: Optional[int] = None,
) -> Iterator[JobSpec]:
    """Lazily convert SWF records into :class:`JobSpec` submissions.

    This is the streaming counterpart of :func:`workload_from_swf`: records
    flow through one at a time (invalid ones — zero runtime or processors —
    are skipped, submit times are rebased to the first valid record), so an
    arbitrarily long trace can be converted without materialising either the
    record list or the job list.

    *malleable_fraction* tags that fraction of the converted jobs as
    malleable between *minimum_processors* and their recorded request; the
    rest replay rigid at the recorded size.  The choice is drawn from a
    dedicated generator seeded with *malleable_seed*, so it is deterministic,
    independent of the experiment's other random streams, and stable under
    ``max_jobs`` truncation (job *k* keeps its tag no matter where the
    stream stops).
    """
    # Validate eagerly, not at first next(): a bad fraction must fail where
    # the pipeline is built (e.g. at CLI-argument time), so the body below
    # is delegated to an inner generator.
    if not 0.0 <= malleable_fraction <= 1.0:
        raise ValueError("malleable_fraction must lie in [0, 1]")
    return _iter_jobspecs(
        records,
        name=name,
        profile_map=profile_map,
        default_profile=default_profile,
        malleable_fraction=malleable_fraction,
        malleable_seed=malleable_seed,
        minimum_processors=minimum_processors,
        max_jobs=max_jobs,
    )


def _iter_jobspecs(
    records: Iterable[SwfJob],
    *,
    name: str,
    profile_map: Optional[Dict[int, str]],
    default_profile: str,
    malleable_fraction: float,
    malleable_seed: int,
    minimum_processors: int,
    max_jobs: Optional[int],
) -> Iterator[JobSpec]:
    import numpy as np

    profile_map = profile_map or {}
    rng = (
        np.random.Generator(np.random.PCG64(malleable_seed))
        if 0.0 < malleable_fraction < 1.0
        else None
    )
    produced = 0
    base_time: Optional[float] = None
    for record in records:
        if not record.valid:
            continue
        if max_jobs is not None and produced >= max_jobs:
            break
        if base_time is None:
            base_time = record.submit_time
        executable = int(record.fields[SwfField.EXECUTABLE])
        profile_name = profile_map.get(executable, default_profile)
        requested = record.requested_processors
        malleable = (
            malleable_fraction >= 1.0
            if rng is None
            else bool(rng.random() < malleable_fraction)
        )
        if malleable:
            spec = JobSpec(
                submit_time=record.submit_time - base_time,
                profile_name=profile_name,
                kind=JobKind.MALLEABLE,
                initial_processors=min(minimum_processors, requested),
                minimum_processors=min(minimum_processors, requested),
                maximum_processors=max(requested, minimum_processors),
                name=f"{name}-{record.job_number}",
            )
        else:
            spec = JobSpec(
                submit_time=record.submit_time - base_time,
                profile_name=profile_name,
                kind=JobKind.RIGID,
                initial_processors=requested,
                minimum_processors=requested,
                maximum_processors=requested,
                name=f"{name}-{record.job_number}",
            )
        produced += 1
        yield spec


def workload_from_swf(
    records: Iterable[SwfJob],
    *,
    name: str = "swf",
    profile_map: Optional[Dict[int, str]] = None,
    default_profile: str = "gadget2",
    malleable: bool = True,
    minimum_processors: int = 2,
    max_jobs: Optional[int] = None,
) -> WorkloadSpec:
    """Convert SWF records into a workload specification.

    Parameters
    ----------
    records:
        Parsed SWF records (invalid records — zero runtime or processors —
        are skipped).
    profile_map:
        Optional mapping from the SWF ``executable`` field to application
        profile names; records without a mapping use *default_profile*.
    malleable:
        Whether jobs are submitted as malleable (the archive traces record
        rigid jobs; replaying them as malleable is precisely the "what if
        these were malleable" experiment).
    minimum_processors:
        Minimum size of malleable jobs.
    max_jobs:
        Cap on the number of jobs converted.

    See :func:`iter_jobspecs` for the streaming path (and for tagging only a
    *fraction* of the jobs malleable).
    """
    jobs = list(
        iter_jobspecs(
            records,
            name=name,
            profile_map=profile_map,
            default_profile=default_profile,
            malleable_fraction=1.0 if malleable else 0.0,
            minimum_processors=minimum_processors,
            max_jobs=max_jobs,
        )
    )
    return WorkloadSpec(name=name, jobs=jobs, description="converted from SWF trace")
