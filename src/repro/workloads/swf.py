"""Standard Workload Format (SWF) support.

The Parallel Workloads Archive and the Grid Workloads Archive distribute job
traces in the Standard Workload Format: one job per line, 18
whitespace-separated fields, ``;`` starting header/comment lines.  Replaying
archive traces through the simulated KOALA scheduler is a natural extension
of the paper's synthetic workloads (and is how follow-up studies of the
DAS system were performed), so this module provides a reader, a writer and a
converter into :class:`~repro.workloads.spec.WorkloadSpec`.

Only the fields relevant to this reproduction are interpreted; all 18 are
preserved on round-trips.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Union

from repro.koala.job import JobKind
from repro.workloads.spec import JobSpec, WorkloadSpec


class SwfField(enum.IntEnum):
    """Column indices of the 18 standard SWF fields."""

    JOB_NUMBER = 0
    SUBMIT_TIME = 1
    WAIT_TIME = 2
    RUN_TIME = 3
    ALLOCATED_PROCESSORS = 4
    AVERAGE_CPU_TIME = 5
    USED_MEMORY = 6
    REQUESTED_PROCESSORS = 7
    REQUESTED_TIME = 8
    REQUESTED_MEMORY = 9
    STATUS = 10
    USER_ID = 11
    GROUP_ID = 12
    EXECUTABLE = 13
    QUEUE = 14
    PARTITION = 15
    PRECEDING_JOB = 16
    THINK_TIME = 17


@dataclass(frozen=True)
class SwfJob:
    """One SWF record with typed access to the fields this project uses."""

    fields: tuple

    def __post_init__(self) -> None:
        if len(self.fields) != len(SwfField):
            raise ValueError(
                f"an SWF record has {len(SwfField)} fields, got {len(self.fields)}"
            )

    @property
    def job_number(self) -> int:
        return int(self.fields[SwfField.JOB_NUMBER])

    @property
    def submit_time(self) -> float:
        return float(self.fields[SwfField.SUBMIT_TIME])

    @property
    def run_time(self) -> float:
        return float(self.fields[SwfField.RUN_TIME])

    @property
    def requested_processors(self) -> int:
        requested = int(self.fields[SwfField.REQUESTED_PROCESSORS])
        if requested > 0:
            return requested
        return max(1, int(self.fields[SwfField.ALLOCATED_PROCESSORS]))

    @property
    def status(self) -> int:
        return int(self.fields[SwfField.STATUS])

    @property
    def valid(self) -> bool:
        """Whether the record describes a job that actually ran."""
        return self.run_time > 0 and self.requested_processors > 0

    def as_line(self) -> str:
        """Serialise back to an SWF data line."""
        return " ".join(self._format(value) for value in self.fields)

    @staticmethod
    def _format(value) -> str:
        if isinstance(value, float) and value == int(value):
            return str(int(value))
        return str(value)


class SwfReader:
    """Streaming reader of SWF files (header comments preserved)."""

    def __init__(self) -> None:
        self.header: List[str] = []

    def parse_line(self, line: str) -> Optional[SwfJob]:
        """Parse one line; returns ``None`` for comments and blank lines."""
        stripped = line.strip()
        if not stripped:
            return None
        if stripped.startswith(";"):
            self.header.append(stripped)
            return None
        parts = stripped.split()
        if len(parts) < len(SwfField):
            raise ValueError(f"malformed SWF line (only {len(parts)} fields): {line!r}")
        values = tuple(float(part) if "." in part else int(part) for part in parts[: len(SwfField)])
        return SwfJob(fields=values)

    def read(self, source: Union[str, Path, TextIO, Iterable[str]]) -> List[SwfJob]:
        """Read all job records from a path, file object or iterable of lines."""
        if isinstance(source, (str, Path)):
            with open(source, "r", encoding="utf-8") as handle:
                return self.read(handle)
        jobs: List[SwfJob] = []
        for line in source:
            record = self.parse_line(line)
            if record is not None:
                jobs.append(record)
        return jobs


class SwfWriter:
    """Writer of SWF files (used to snapshot generated workloads)."""

    def __init__(self, header: Optional[Sequence[str]] = None) -> None:
        self.header = list(header or [])

    def write(self, jobs: Iterable[SwfJob], destination: Union[str, Path, TextIO]) -> None:
        """Write *jobs* (and the header) to *destination*."""
        if isinstance(destination, (str, Path)):
            with open(destination, "w", encoding="utf-8") as handle:
                self.write(jobs, handle)
                return
        for line in self.header:
            if not line.startswith(";"):
                line = "; " + line
            destination.write(line + "\n")
        for job in jobs:
            destination.write(job.as_line() + "\n")

    @staticmethod
    def from_workload(spec: WorkloadSpec, *, default_runtime: float = 600.0) -> List[SwfJob]:
        """Convert a :class:`WorkloadSpec` into SWF records.

        The runtime field is filled with *default_runtime* because the actual
        runtime of a malleable job depends on the scheduler; the requested
        processor field carries the job's maximum size.
        """
        records: List[SwfJob] = []
        for index, job in enumerate(spec.jobs, start=1):
            maximum = job.maximum_processors or job.initial_processors
            fields = [0] * len(SwfField)
            fields[SwfField.JOB_NUMBER] = index
            fields[SwfField.SUBMIT_TIME] = job.submit_time
            fields[SwfField.WAIT_TIME] = -1
            fields[SwfField.RUN_TIME] = default_runtime
            fields[SwfField.ALLOCATED_PROCESSORS] = job.initial_processors
            fields[SwfField.AVERAGE_CPU_TIME] = -1
            fields[SwfField.USED_MEMORY] = -1
            fields[SwfField.REQUESTED_PROCESSORS] = maximum
            fields[SwfField.REQUESTED_TIME] = -1
            fields[SwfField.REQUESTED_MEMORY] = -1
            fields[SwfField.STATUS] = 1
            fields[SwfField.USER_ID] = -1
            fields[SwfField.GROUP_ID] = -1
            fields[SwfField.EXECUTABLE] = 1 if job.profile_name == "gadget2" else 2
            fields[SwfField.QUEUE] = -1
            fields[SwfField.PARTITION] = -1
            fields[SwfField.PRECEDING_JOB] = -1
            fields[SwfField.THINK_TIME] = -1
            records.append(SwfJob(fields=tuple(fields)))
        return records


def workload_from_swf(
    records: Iterable[SwfJob],
    *,
    name: str = "swf",
    profile_map: Optional[Dict[int, str]] = None,
    default_profile: str = "gadget2",
    malleable: bool = True,
    minimum_processors: int = 2,
    max_jobs: Optional[int] = None,
) -> WorkloadSpec:
    """Convert SWF records into a workload specification.

    Parameters
    ----------
    records:
        Parsed SWF records (invalid records — zero runtime or processors —
        are skipped).
    profile_map:
        Optional mapping from the SWF ``executable`` field to application
        profile names; records without a mapping use *default_profile*.
    malleable:
        Whether jobs are submitted as malleable (the archive traces record
        rigid jobs; replaying them as malleable is precisely the "what if
        these were malleable" experiment).
    minimum_processors:
        Minimum size of malleable jobs.
    max_jobs:
        Cap on the number of jobs converted.
    """
    profile_map = profile_map or {}
    jobs: List[JobSpec] = []
    base_time: Optional[float] = None
    for record in records:
        if not record.valid:
            continue
        if max_jobs is not None and len(jobs) >= max_jobs:
            break
        if base_time is None:
            base_time = record.submit_time
        executable = int(record.fields[SwfField.EXECUTABLE])
        profile_name = profile_map.get(executable, default_profile)
        requested = record.requested_processors
        if malleable:
            spec = JobSpec(
                submit_time=record.submit_time - base_time,
                profile_name=profile_name,
                kind=JobKind.MALLEABLE,
                initial_processors=min(minimum_processors, requested),
                minimum_processors=min(minimum_processors, requested),
                maximum_processors=max(requested, minimum_processors),
                name=f"{name}-{record.job_number}",
            )
        else:
            spec = JobSpec(
                submit_time=record.submit_time - base_time,
                profile_name=profile_name,
                kind=JobKind.RIGID,
                initial_processors=requested,
                minimum_processors=requested,
                maximum_processors=requested,
                name=f"{name}-{record.job_number}",
            )
        jobs.append(spec)
    return WorkloadSpec(name=name, jobs=jobs, description="converted from SWF trace")
