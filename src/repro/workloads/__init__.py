"""Workload generation and trace handling.

The paper evaluates its policies with synthetic workloads that mix the two
applications of Section VI-A uniformly:

* **Wm** — 300 jobs, all malleable, inter-arrival time 2 minutes;
* **Wmr** — 300 jobs, 50% malleable and 50% rigid (rigid jobs of size 2),
  inter-arrival time 2 minutes;
* **W'm / W'mr** — the same mixes with the inter-arrival time reduced to 30
  seconds to increase the load (used for the PWA experiments).

:mod:`repro.workloads.generator` builds those workloads (and parameterised
variants for the ablation studies); :mod:`repro.workloads.swf` reads and
writes traces in the Standard Workload Format used by the Parallel Workloads
Archive and the Grid Workloads Archive, so real archive traces can be
replayed through the same machinery.
"""

from repro.workloads.spec import JobSpec, WorkloadSpec
from repro.workloads.generator import (
    WorkloadGenerator,
    paper_workload,
    wm_workload,
    wmr_workload,
    wm_prime_workload,
    wmr_prime_workload,
)
from repro.workloads.registry import (
    build_named_workload,
    known_workloads,
    register_workload,
    resolve_workload,
)
from repro.workloads.swf import SwfField, SwfJob, SwfReader, SwfWriter, workload_from_swf
from repro.workloads.submission import WorkloadSubmitter

__all__ = [
    "JobSpec",
    "build_named_workload",
    "known_workloads",
    "register_workload",
    "resolve_workload",
    "SwfField",
    "SwfJob",
    "SwfReader",
    "SwfWriter",
    "WorkloadGenerator",
    "WorkloadSpec",
    "WorkloadSubmitter",
    "paper_workload",
    "wm_prime_workload",
    "wm_workload",
    "wmr_prime_workload",
    "wmr_workload",
    "workload_from_swf",
]
