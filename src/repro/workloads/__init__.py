"""Workload generation and trace handling.

The paper evaluates its policies with synthetic workloads that mix the two
applications of Section VI-A uniformly:

* **Wm** — 300 jobs, all malleable, inter-arrival time 2 minutes;
* **Wmr** — 300 jobs, 50% malleable and 50% rigid (rigid jobs of size 2),
  inter-arrival time 2 minutes;
* **W'm / W'mr** — the same mixes with the inter-arrival time reduced to 30
  seconds to increase the load (used for the PWA experiments).

:mod:`repro.workloads.generator` builds those workloads (and parameterised
variants for the ablation studies); :mod:`repro.workloads.swf` reads and
writes traces in the Standard Workload Format used by the Parallel Workloads
Archive and the Grid Workloads Archive; :mod:`repro.workloads.traces` turns
SWF traces into a full workload axis — a named trace registry (bundled
deterministic DAS-3-style synthetic generator plus user-supplied ``.swf``
files), composable streaming transforms (time windows, load factors,
processor shrinking, malleability tagging) and ``trace:...`` workload
references usable anywhere a workload name is.
"""

from repro.workloads.spec import JobSpec, WorkloadSpec
from repro.workloads.generator import (
    WorkloadGenerator,
    paper_workload,
    wm_workload,
    wmr_workload,
    wm_prime_workload,
    wmr_prime_workload,
)
from repro.workloads.registry import (
    build_named_workload,
    known_workloads,
    register_prefix_resolver,
    register_workload,
    resolve_workload,
)
from repro.workloads.swf import (
    SwfField,
    SwfJob,
    SwfReader,
    SwfWriter,
    iter_jobspecs,
    workload_from_swf,
)
from repro.workloads.traces import (
    HeadLimit,
    LoadFactor,
    ShrinkProcessors,
    StreamingWorkload,
    TimeWindow,
    TraceRef,
    apply_transforms,
    build_trace_workload,
    is_trace_reference,
    known_traces,
    open_trace,
    register_trace,
    stream_trace_jobspecs,
    synthetic_das3_trace,
    trace_fingerprint,
)
from repro.workloads.submission import WorkloadSubmitter
from repro.workloads.bursts import burst_workload

__all__ = [
    "HeadLimit",
    "JobSpec",
    "LoadFactor",
    "ShrinkProcessors",
    "StreamingWorkload",
    "SwfField",
    "SwfJob",
    "SwfReader",
    "SwfWriter",
    "TimeWindow",
    "TraceRef",
    "WorkloadGenerator",
    "WorkloadSpec",
    "WorkloadSubmitter",
    "apply_transforms",
    "build_named_workload",
    "build_trace_workload",
    "burst_workload",
    "is_trace_reference",
    "iter_jobspecs",
    "known_traces",
    "known_workloads",
    "open_trace",
    "paper_workload",
    "register_prefix_resolver",
    "register_trace",
    "register_workload",
    "resolve_workload",
    "stream_trace_jobspecs",
    "synthetic_das3_trace",
    "trace_fingerprint",
    "wm_prime_workload",
    "wm_workload",
    "wmr_prime_workload",
    "wmr_workload",
    "workload_from_swf",
]
