"""Workload submission: replaying a specification against a scheduler.

The :class:`WorkloadSubmitter` is the simulated counterpart of the paper's
single client site: it materialises each :class:`~repro.workloads.spec.JobSpec`
at its submit time and hands it to the scheduler through the runners
framework.  It also keeps the submitted jobs so the metrics layer can join
them with their execution records afterwards.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps.profiles import ProfileRegistry, default_registry
from repro.koala.job import Job
from repro.koala.scheduler import KoalaScheduler
from repro.sim.core import Environment
from repro.sim.events import Event
from repro.workloads.spec import JobSpec, WorkloadSpec


class WorkloadSubmitter:
    """Submits a workload specification to a scheduler at the right times.

    Parameters
    ----------
    env, scheduler:
        Simulation environment and target scheduler.
    workload:
        The workload specification to replay.
    registry:
        Application-profile registry used to materialise job specs.
    """

    def __init__(
        self,
        env: Environment,
        scheduler: KoalaScheduler,
        workload: WorkloadSpec,
        *,
        registry: Optional[ProfileRegistry] = None,
    ) -> None:
        self.env = env
        self.scheduler = scheduler
        self.workload = workload
        self.registry = registry or default_registry()
        #: Jobs submitted so far, in submission order.
        self.jobs: List[Job] = []
        #: Mapping from job to the spec it was built from.
        self.spec_of: Dict[int, JobSpec] = {}
        #: Succeeds when the last job of the workload has been submitted.
        self.all_submitted: Event = env.event()
        self._process = env.process(self._submit_loop())

    @property
    def submitted_count(self) -> int:
        """Number of jobs submitted so far."""
        return len(self.jobs)

    def _submit_loop(self):
        for spec in self.workload:
            delay = spec.submit_time - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            job = spec.build_job(self.registry)
            self.jobs.append(job)
            self.spec_of[job.job_id] = spec
            self.scheduler.submit(job)
        if not self.all_submitted.triggered:
            self.all_submitted.succeed(len(self.jobs))

    def completion_event(self) -> Event:
        """An event that succeeds once every submitted job finished or failed.

        Only meaningful after ``all_submitted``; the experiment driver usually
        runs the simulation with a generous time bound and checks
        :attr:`~repro.koala.scheduler.KoalaScheduler.all_done` instead, but
        small tests find this convenient.
        """
        done = self.env.event()
        self.env.process(self._watch_completion(done))
        return done

    def _watch_completion(self, done: Event):
        yield self.all_submitted
        while not self.scheduler.all_done:
            yield self.env.timeout(30.0)
        if not done.triggered:
            done.succeed(len(self.scheduler.finished))
