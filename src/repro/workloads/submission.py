"""Workload submission: replaying a specification against a scheduler.

The :class:`WorkloadSubmitter` is the simulated counterpart of the paper's
single client site: it materialises each :class:`~repro.workloads.spec.JobSpec`
at its submit time and hands it to the scheduler through the runners
framework.  It also keeps the submitted jobs so the metrics layer can join
them with their execution records afterwards.

Submission happens at each spec's *absolute* submit time
(:meth:`~repro.sim.core.Environment.timeout_at`), not after a relative
delay: relative delays accumulate float rounding, whereas absolute times
make the realised submission instants a pure function of the workload —
which is what lets a run restored from a checkpoint (a submitter created
mid-workload via ``start_index``) land every remaining submission on
exactly the instants of the uninterrupted run.
"""

from __future__ import annotations

from itertools import islice
from typing import Dict, List, Optional

from repro.apps.profiles import ProfileRegistry, default_registry
from repro.koala.job import Job
from repro.koala.scheduler import KoalaScheduler
from repro.sim.core import Environment
from repro.sim.events import Event
from repro.workloads.spec import JobSpec, WorkloadSpec


class WorkloadSubmitter:
    """Submits a workload specification to a scheduler at the right times.

    Parameters
    ----------
    env, scheduler:
        Simulation environment and target scheduler.
    workload:
        The workload specification to replay.
    registry:
        Application-profile registry used to materialise job specs.
    start_index:
        Index of the first spec to submit.  A checkpoint records the
        submitter's :attr:`cursor`; the restored run skips everything
        already submitted before the checkpoint.
    retain_jobs:
        Whether to keep every submitted :class:`Job` (and its spec) in
        :attr:`jobs` / :attr:`spec_of`.  Long streaming runs disable this —
        at half a million jobs the retained objects dominate the resident
        set — and rely on streaming metric collection instead.
    """

    def __init__(
        self,
        env: Environment,
        scheduler: KoalaScheduler,
        workload: WorkloadSpec,
        *,
        registry: Optional[ProfileRegistry] = None,
        start_index: int = 0,
        retain_jobs: bool = True,
    ) -> None:
        if start_index < 0:
            raise ValueError("start_index must be non-negative")
        self.env = env
        self.scheduler = scheduler
        self.workload = workload
        self.registry = registry or default_registry()
        self.start_index = int(start_index)
        self.retain_jobs = bool(retain_jobs)
        #: Jobs submitted so far, in submission order (empty when
        #: ``retain_jobs`` is off).
        self.jobs: List[Job] = []
        #: Mapping from job to the spec it was built from.
        self.spec_of: Dict[int, JobSpec] = {}
        self._submitted = 0
        #: Succeeds when the last job of the workload has been submitted.
        self.all_submitted: Event = env.event()
        self._process = env.process(self._submit_loop())

    @property
    def submitted_count(self) -> int:
        """Number of jobs submitted by this submitter."""
        return self._submitted

    @property
    def cursor(self) -> int:
        """Workload index of the next spec to submit (checkpoint capture)."""
        return self.start_index + self._submitted

    def _submit_loop(self):
        for spec in islice(iter(self.workload), self.start_index, None):
            if spec.submit_time > self.env.now:
                yield self.env.timeout_at(spec.submit_time)
            job = spec.build_job(self.registry)
            self._submitted += 1
            if self.retain_jobs:
                self.jobs.append(job)
                self.spec_of[job.job_id] = spec
            self.scheduler.submit(job)
        if not self.all_submitted.triggered:
            self.all_submitted.succeed(self.cursor)

    def completion_event(self) -> Event:
        """An event that succeeds once every submitted job finished or failed.

        Only meaningful after ``all_submitted``; the experiment driver usually
        runs the simulation with a generous time bound and checks
        :attr:`~repro.koala.scheduler.KoalaScheduler.all_done` instead, but
        small tests find this convenient.
        """
        done = self.env.event()
        self.env.process(self._watch_completion(done))
        return done

    def _watch_completion(self, done: Event):
        yield self.all_submitted
        while not self.scheduler.all_done:
            yield self.env.timeout(30.0)
        if not done.triggered:
            done.succeed(len(self.scheduler.finished))
