"""Workload specifications: declarative descriptions of what to submit.

A :class:`WorkloadSpec` is a plain list of :class:`JobSpec` entries (submit
time, application, kind, sizes).  Keeping the specification separate from the
submission machinery makes workloads serialisable, comparable in tests and
reusable across schedulers/policies — the same spec is replayed for every
policy combination of an experiment, exactly like the paper re-runs the same
workload for FPSMA and EGS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.apps.profiles import ApplicationProfile, ProfileRegistry, default_registry
from repro.koala.job import Job, JobKind


@dataclass(frozen=True)
class JobSpec:
    """Declarative description of one job submission."""

    submit_time: float
    profile_name: str
    kind: JobKind = JobKind.MALLEABLE
    initial_processors: int = 2
    minimum_processors: int = 2
    maximum_processors: Optional[int] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.submit_time < 0:
            raise ValueError("submit_time must be non-negative")
        if self.initial_processors < 1:
            raise ValueError("initial_processors must be >= 1")
        if self.minimum_processors < 1:
            raise ValueError("minimum_processors must be >= 1")
        if self.maximum_processors is not None and self.maximum_processors < self.minimum_processors:
            raise ValueError("maximum_processors must be >= minimum_processors")

    def build_job(self, registry: Optional[ProfileRegistry] = None) -> Job:
        """Materialise this spec into a :class:`~repro.koala.job.Job`."""
        registry = registry or default_registry()
        profile: ApplicationProfile = registry.get(self.profile_name)
        maximum = (
            self.maximum_processors
            if self.maximum_processors is not None
            else profile.default_maximum
        )
        if self.kind is JobKind.MALLEABLE:
            return Job.malleable(
                profile,
                initial_processors=self.initial_processors,
                minimum=self.minimum_processors,
                maximum=maximum,
                name=self.name,
            )
        if self.kind is JobKind.RIGID:
            return Job.rigid(profile.as_rigid(), self.initial_processors, name=self.name)
        return Job.moldable(
            profile, minimum=self.minimum_processors, maximum=maximum, name=self.name
        )


@dataclass
class WorkloadSpec:
    """A named, ordered collection of job specifications."""

    name: str
    jobs: List[JobSpec] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        self.jobs = sorted(self.jobs, key=lambda spec: spec.submit_time)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self.jobs)

    def __getitem__(self, index: int) -> JobSpec:
        return self.jobs[index]

    @property
    def duration(self) -> float:
        """Time of the last submission (0 for an empty workload)."""
        return self.jobs[-1].submit_time if self.jobs else 0.0

    @property
    def malleable_fraction(self) -> float:
        """Fraction of jobs that are malleable."""
        if not self.jobs:
            return 0.0
        malleable = sum(1 for spec in self.jobs if spec.kind is JobKind.MALLEABLE)
        return malleable / len(self.jobs)

    def profile_counts(self) -> dict:
        """Number of jobs per application profile."""
        counts: dict = {}
        for spec in self.jobs:
            counts[spec.profile_name] = counts.get(spec.profile_name, 0) + 1
        return counts

    def subset(self, count: int) -> "WorkloadSpec":
        """The first *count* submissions as a new spec (for quick experiments)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return WorkloadSpec(
            name=f"{self.name}[:{count}]",
            jobs=list(self.jobs[:count]),
            description=self.description,
        )

    def scaled_arrivals(self, factor: float) -> "WorkloadSpec":
        """A copy with all submit times multiplied by *factor*.

        A factor below 1 compresses the arrival process (higher load), which
        is exactly how the paper derives W'm/W'mr from Wm/Wmr (2 minutes down
        to 30 seconds is a factor of 0.25).
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        jobs: Sequence[JobSpec] = [
            JobSpec(
                submit_time=spec.submit_time * factor,
                profile_name=spec.profile_name,
                kind=spec.kind,
                initial_processors=spec.initial_processors,
                minimum_processors=spec.minimum_processors,
                maximum_processors=spec.maximum_processors,
                name=spec.name,
            )
            for spec in self.jobs
        ]
        return WorkloadSpec(
            name=f"{self.name}*{factor:g}", jobs=list(jobs), description=self.description
        )
