"""Named-workload registry.

The paper names its workloads (``Wm``, ``Wmr``, ``W'm``, ``W'mr``) and the
experiment layer refers to them by those names.  This module owns the mapping
from a workload *name* to the generator function that builds it, so new
workloads become available to every scenario by registering one entry instead
of editing the experiment runner.

Names are normalised before lookup: primes may be written ``'`` or ``p`` and
case is ignored, so ``W'm``, ``Wm'``, ``wmp`` and ``WPM`` all resolve to the
same builder.

Besides exact names, *prefix resolvers* handle whole families of workload
names: :mod:`repro.workloads.traces` registers the ``trace:`` prefix, so a
configuration's workload may be ``"trace:das3-synthetic?load_factor=2"`` and
the experiment engine, cache and CLIs need no special casing.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.workloads.generator import (
    wm_prime_workload,
    wm_workload,
    wmr_prime_workload,
    wmr_workload,
)
from repro.workloads.spec import WorkloadSpec

#: Signature of a named-workload builder.
WorkloadBuilder = Callable[..., WorkloadSpec]

#: Canonical name -> builder.  Populated below and via :func:`register_workload`.
_BUILDERS: Dict[str, WorkloadBuilder] = {}

#: Normalised alias -> canonical name.
_ALIASES: Dict[str, str] = {}

#: Prefix -> resolver for families of workload names (e.g. ``trace:``).  A
#: resolver receives the *full* workload name and the ``(rng, job_count)``
#: builder arguments and returns the built spec.
_PREFIX_RESOLVERS: Dict[str, WorkloadBuilder] = {}


def register_prefix_resolver(
    prefix: str, resolver: WorkloadBuilder, *, overwrite: bool = False
) -> None:
    """Route every workload name starting with *prefix* to *resolver*.

    The resolver must accept ``(name, rng, *, job_count)`` and return a
    :class:`~repro.workloads.spec.WorkloadSpec`.
    """
    if not prefix:
        raise ValueError("prefix must be non-empty")
    if not overwrite and prefix in _PREFIX_RESOLVERS:
        raise ValueError(f"workload prefix {prefix!r} already registered")
    _PREFIX_RESOLVERS[prefix] = resolver


def _normalise(name: str) -> str:
    """Normalised lookup key of a workload name."""
    return name.replace("'", "p").lower()


def register_workload(
    name: str,
    builder: WorkloadBuilder,
    *,
    aliases: Tuple[str, ...] = (),
    overwrite: bool = False,
) -> None:
    """Register *builder* under *name* (and optional aliases).

    The builder must accept ``(rng, *, job_count)`` and return a
    :class:`~repro.workloads.spec.WorkloadSpec`.
    """
    keys = [_normalise(name)] + [_normalise(alias) for alias in aliases]
    if not overwrite:
        for key in keys:
            if key in _ALIASES:
                raise ValueError(
                    f"workload alias {key!r} already registered for {_ALIASES[key]!r}; "
                    "pass overwrite=True to replace it"
                )
    _BUILDERS[name] = builder
    for key in keys:
        _ALIASES[key] = name


def known_workloads() -> Tuple[str, ...]:
    """Canonical names of all registered workloads, in registration order."""
    return tuple(_BUILDERS)


def resolve_workload(name: str) -> WorkloadBuilder:
    """The builder registered for *name* (after normalisation).

    Prefixed names (``trace:...``) resolve to a closure over their prefix
    resolver, so callers need not distinguish the two registration styles.

    Raises
    ------
    ValueError
        If no workload is registered under that name.
    """
    for prefix, resolver in _PREFIX_RESOLVERS.items():
        if name.startswith(prefix):
            return lambda rng, *, job_count, _resolver=resolver: _resolver(
                name, rng, job_count=job_count
            )
    try:
        return _BUILDERS[_ALIASES[_normalise(name)]]
    except KeyError:
        known = ", ".join(known_workloads())
        prefixes = ", ".join(f"{prefix}..." for prefix in _PREFIX_RESOLVERS)
        raise ValueError(
            f"unknown workload {name!r}; known: {known}"
            + (f"; prefixes: {prefixes}" if prefixes else "")
        ) from None


def build_named_workload(
    name: str, rng: np.random.Generator, *, job_count: int
) -> WorkloadSpec:
    """Build the workload registered under *name* with *rng* and *job_count*."""
    return resolve_workload(name)(rng, job_count=job_count)


# The paper's four workloads.  ``W'm`` normalises to ``wpm`` while the
# historical spelling ``Wm'`` normalises to ``wmp``; register both.
register_workload("Wm", wm_workload)
register_workload("Wmr", wmr_workload)
register_workload("W'm", wm_prime_workload, aliases=("Wm'",))
register_workload("W'mr", wmr_prime_workload, aliases=("Wmr'",))
