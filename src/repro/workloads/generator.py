"""Synthetic workload generators reproducing the paper's workloads.

Section VI-C of the paper: the workloads combine the two applications with a
uniform distribution; the minimum size is 2 processors, the maximum 46 for
GADGET-2 and 32 for FT; 300 jobs are submitted from a single client site.
Workloads Wm (all malleable) and Wmr (50% malleable, 50% rigid with 2
processors) use a 2-minute inter-arrival time; W'm and W'mr reduce it to 30
seconds to raise the load for the PWA experiments.  Rigid jobs are submitted
with a size of 2 processors and malleable jobs with an initial size of 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.koala.job import JobKind
from repro.workloads.spec import JobSpec, WorkloadSpec

#: The applications the paper's workloads draw from, uniformly.
PAPER_PROFILES: Sequence[str] = ("gadget2", "ft")

#: Maximum sizes per profile used in the paper's workloads.
PAPER_MAXIMUMS = {"gadget2": 46, "ft": 32}

#: Inter-arrival time of workloads Wm and Wmr (seconds).
PAPER_INTERARRIVAL = 120.0

#: Inter-arrival time of workloads W'm and W'mr (seconds).
PAPER_PRIME_INTERARRIVAL = 30.0

#: Number of jobs in each paper workload.
PAPER_JOB_COUNT = 300


@dataclass
class WorkloadGenerator:
    """Parametrised generator of paper-style workloads.

    Parameters
    ----------
    job_count:
        Number of jobs to generate.
    interarrival:
        Mean inter-arrival time in seconds.  With ``poisson_arrivals=False``
        (the default, matching the paper's fixed submission rate) arrivals
        are exactly ``interarrival`` apart; otherwise they follow an
        exponential distribution with that mean.
    malleable_fraction:
        Probability that a job is malleable (1.0 for Wm, 0.5 for Wmr).
    rigid_processors:
        Size of rigid jobs (the paper uses 2).
    initial_processors / minimum_processors:
        Initial and minimum sizes of malleable jobs (both 2 in the paper).
    profiles:
        Application profile names to draw from uniformly.
    maximums:
        Per-profile maximum sizes (defaults to the paper's 46/32).
    poisson_arrivals:
        Draw exponential inter-arrival times instead of fixed ones.
    """

    job_count: int = PAPER_JOB_COUNT
    interarrival: float = PAPER_INTERARRIVAL
    malleable_fraction: float = 1.0
    rigid_processors: int = 2
    initial_processors: int = 2
    minimum_processors: int = 2
    profiles: Sequence[str] = PAPER_PROFILES
    maximums: Optional[dict] = None
    poisson_arrivals: bool = False

    def __post_init__(self) -> None:
        if self.job_count < 0:
            raise ValueError("job_count must be non-negative")
        if self.interarrival <= 0:
            raise ValueError("interarrival must be positive")
        if not 0.0 <= self.malleable_fraction <= 1.0:
            raise ValueError("malleable_fraction must lie in [0, 1]")
        if not self.profiles:
            raise ValueError("at least one profile is required")
        if self.maximums is None:
            self.maximums = dict(PAPER_MAXIMUMS)

    def generate(self, rng: np.random.Generator, *, name: str = "workload") -> WorkloadSpec:
        """Generate a workload specification using random stream *rng*."""
        jobs: List[JobSpec] = []
        time = 0.0
        for index in range(self.job_count):
            if index > 0:
                gap = (
                    float(rng.exponential(self.interarrival))
                    if self.poisson_arrivals
                    else self.interarrival
                )
                time += gap
            profile_name = str(rng.choice(list(self.profiles)))
            malleable = bool(rng.random() < self.malleable_fraction)
            maximum = int(self.maximums.get(profile_name, 32)) if self.maximums else 32
            if malleable:
                spec = JobSpec(
                    submit_time=time,
                    profile_name=profile_name,
                    kind=JobKind.MALLEABLE,
                    initial_processors=self.initial_processors,
                    minimum_processors=self.minimum_processors,
                    maximum_processors=maximum,
                    name=f"{name}-{index + 1}-{profile_name}-m",
                )
            else:
                spec = JobSpec(
                    submit_time=time,
                    profile_name=profile_name,
                    kind=JobKind.RIGID,
                    initial_processors=self.rigid_processors,
                    minimum_processors=self.rigid_processors,
                    maximum_processors=self.rigid_processors,
                    name=f"{name}-{index + 1}-{profile_name}-r",
                )
            jobs.append(spec)
        return WorkloadSpec(name=name, jobs=jobs, description=self.describe())

    def describe(self) -> str:
        """One-line description of the generator's parameters."""
        return (
            f"{self.job_count} jobs, inter-arrival {self.interarrival:g}s, "
            f"{self.malleable_fraction:.0%} malleable, profiles {list(self.profiles)}"
        )


def paper_workload(
    rng: np.random.Generator,
    *,
    malleable_fraction: float,
    interarrival: float,
    job_count: int = PAPER_JOB_COUNT,
    name: str = "workload",
) -> WorkloadSpec:
    """Generate a workload with the paper's structure and custom load knobs."""
    generator = WorkloadGenerator(
        job_count=job_count,
        interarrival=interarrival,
        malleable_fraction=malleable_fraction,
    )
    return generator.generate(rng, name=name)


def wm_workload(rng: np.random.Generator, *, job_count: int = PAPER_JOB_COUNT) -> WorkloadSpec:
    """Workload Wm: all jobs malleable, 2-minute inter-arrival."""
    return paper_workload(
        rng, malleable_fraction=1.0, interarrival=PAPER_INTERARRIVAL, job_count=job_count, name="Wm"
    )


def wmr_workload(rng: np.random.Generator, *, job_count: int = PAPER_JOB_COUNT) -> WorkloadSpec:
    """Workload Wmr: 50% malleable / 50% rigid, 2-minute inter-arrival."""
    return paper_workload(
        rng,
        malleable_fraction=0.5,
        interarrival=PAPER_INTERARRIVAL,
        job_count=job_count,
        name="Wmr",
    )


def wm_prime_workload(
    rng: np.random.Generator, *, job_count: int = PAPER_JOB_COUNT
) -> WorkloadSpec:
    """Workload W'm: all malleable, 30-second inter-arrival (high load)."""
    return paper_workload(
        rng,
        malleable_fraction=1.0,
        interarrival=PAPER_PRIME_INTERARRIVAL,
        job_count=job_count,
        name="W'm",
    )


def wmr_prime_workload(
    rng: np.random.Generator, *, job_count: int = PAPER_JOB_COUNT
) -> WorkloadSpec:
    """Workload W'mr: 50% malleable / 50% rigid, 30-second inter-arrival."""
    return paper_workload(
        rng,
        malleable_fraction=0.5,
        interarrival=PAPER_PRIME_INTERARRIVAL,
        job_count=job_count,
        name="W'mr",
    )
