"""Deterministic bursty workloads for sharded replay and checkpoint tests.

The shard-replay engine (:mod:`repro.checkpoint.shard`) exploits workloads
whose arrivals cluster into bursts separated by long quiet gaps — the regime
of overnight batches and campaign submissions.  ``shard-bursts`` is the
canonical synthetic instance: rigid FT jobs (the paper's Fourier-Transform
application, whose execution times at 2/4/8 processors are the measured
Figure 6 values) arriving in fixed-size bursts at a constant intra-burst
inter-arrival time, with a gap between bursts long enough for the system to
drain.

Everything about the workload is deterministic: job sizes cycle through
(2, 4, 8), names are the zero-padded arrival index, and all times are exact
binary floats (multiples of 2 s and 900 s), so serial and sharded replays
compare bit-for-bit and the workload needs no random stream at all.
"""

from __future__ import annotations

from typing import List

from repro.koala.job import JobKind
from repro.workloads.registry import register_workload
from repro.workloads.spec import JobSpec, WorkloadSpec

#: Processor sizes the jobs cycle through (powers of two: the FT profile's
#: size constraint).
BURST_SIZES = (2, 4, 8)

#: Default jobs per burst.
DEFAULT_BURST_SIZE = 1000

#: Default quiet gap between bursts (seconds).  Far above the longest FT
#: execution time (120 s at 2 processors) plus GRAM latency, so consecutive
#: bursts are independent and the shard planner can cut between them.
DEFAULT_GAP = 900.0

#: Default intra-burst inter-arrival time (seconds).  With sizes cycling
#: (2, 4, 8) and FT runtimes of 120/85/70 s this offers roughly 70% of the
#: 272-processor DAS-3 — loaded enough that placement contention is real,
#: light enough that bursts drain inside the gap.
DEFAULT_INTERARRIVAL = 2.0


def burst_workload(
    job_count: int,
    *,
    burst_size: int = DEFAULT_BURST_SIZE,
    gap: float = DEFAULT_GAP,
    interarrival: float = DEFAULT_INTERARRIVAL,
    name: str = "shard-bursts",
) -> WorkloadSpec:
    """Build a deterministic bursty rigid-FT workload of *job_count* jobs."""
    if job_count < 0:
        raise ValueError("job_count must be non-negative")
    if burst_size < 1:
        raise ValueError("burst_size must be >= 1")
    if gap <= 0 or interarrival <= 0:
        raise ValueError("gap and interarrival must be positive")
    jobs: List[JobSpec] = []
    submit_time = 0.0
    for index in range(job_count):
        if index and index % burst_size == 0:
            submit_time += gap
        processors = BURST_SIZES[index % len(BURST_SIZES)]
        jobs.append(
            JobSpec(
                submit_time=submit_time,
                profile_name="ft",
                kind=JobKind.RIGID,
                initial_processors=processors,
                minimum_processors=processors,
                maximum_processors=processors,
                name=f"j{index:07d}",
            )
        )
        submit_time += interarrival
    return WorkloadSpec(
        name=name,
        jobs=jobs,
        description=(
            f"{job_count} rigid ft jobs in bursts of {burst_size}, "
            f"{interarrival:g}s apart, {gap:g}s between bursts"
        ),
    )


def _shard_bursts_builder(rng, *, job_count: int) -> WorkloadSpec:
    """Registry adapter: the workload is deterministic, *rng* is unused."""
    _ = rng
    return burst_workload(job_count)


register_workload("shard-bursts", _shard_bursts_builder, aliases=("shardbursts",))
