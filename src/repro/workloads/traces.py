"""Trace-driven workloads: named traces, streaming transforms, replay specs.

The paper evaluates its policies on synthetic paper-shaped workloads; the
standard way related schedulers are stressed further is replaying *traces* —
recorded (or trace-shaped synthetic) job streams in the Standard Workload
Format of the Parallel/Grid Workloads Archives.  This module turns the SWF
reader into a full workload axis:

* a **named trace registry** — a bundled deterministic DAS-3-style synthetic
  generator (no large binary in the repository) plus any ``.swf`` files
  dropped into a ``traces/`` directory (or ``$REPRO_TRACES_DIR``);
* **composable streaming transforms** over SWF records — time-window
  slicing, load-factor rescaling of the inter-arrival process,
  processor-count shrinking to fit the modelled clusters — each an
  ``Iterator[SwfJob] -> Iterator[SwfJob]`` so a 100k-job trace flows through
  one record at a time;
* **trace references** — ``"trace:das3-synthetic?load_factor=2&malleable=0.5"``
  strings that name a trace plus its transformation pipeline.  References
  are plain strings, so they travel through
  :class:`~repro.experiments.setup.ExperimentConfig`, scenario variants,
  the result cache and worker subprocesses exactly like the named synthetic
  workloads (``build_named_workload`` resolves the ``trace:`` prefix via the
  workload registry).

The materialising path (:func:`build_trace_workload`) feeds the experiment
engine, which needs an ordered :class:`~repro.workloads.spec.WorkloadSpec`;
the streaming path (:func:`stream_trace_jobspecs`, :class:`StreamingWorkload`)
replays arbitrarily long traces with flat ingestion memory.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.workloads.spec import JobSpec, WorkloadSpec
from repro.workloads.swf import SwfField, SwfJob, iter_jobspecs

#: Prefix of trace-backed workload names (``"trace:<name>?<params>"``).
TRACE_PREFIX = "trace:"

#: Environment variable naming an extra directory of user-supplied ``.swf`` files.
TRACES_DIR_ENV = "REPRO_TRACES_DIR"

#: Signature of a registered trace opener: keyword parameters -> record stream.
TraceOpener = Callable[..., Iterator[SwfJob]]


# ---------------------------------------------------------------------------
# Streaming record transforms
# ---------------------------------------------------------------------------


def _with_field(record: SwfJob, index: int, value) -> SwfJob:
    """A copy of *record* with one SWF field replaced."""
    fields = list(record.fields)
    fields[index] = value
    return SwfJob(fields=tuple(fields))


@dataclass(frozen=True)
class TimeWindow:
    """Keep only the records submitted inside ``[start, end)`` seconds.

    Slicing happens on the trace's own clock (before any rebasing), so a
    window selects e.g. one recorded day out of a month-long archive trace.
    ``None`` leaves that side unbounded.

    The transform assumes the stream is ordered by submit time — the SWF
    standard's guarantee — and stops reading the source at the first record
    past ``end`` (the property that keeps windowed replay of a huge trace
    lazy).  A trace with out-of-order submit times should be sorted before
    windowing, or replayed with an unbounded ``end``.
    """

    start: Optional[float] = None
    end: Optional[float] = None

    def __post_init__(self) -> None:
        if self.start is not None and self.end is not None and self.end <= self.start:
            raise ValueError("window end must be greater than start")

    def __call__(self, records: Iterable[SwfJob]) -> Iterator[SwfJob]:
        for record in records:
            submitted = record.submit_time
            if self.start is not None and submitted < self.start:
                continue
            if self.end is not None and submitted >= self.end:
                # SWF traces are ordered by submit time, so nothing after
                # the window can belong to it: stop reading the source.
                break
            yield record


@dataclass(frozen=True)
class LoadFactor:
    """Rescale the inter-arrival process by a load factor.

    A factor of 2 halves every gap between consecutive submissions (double
    load), 0.5 doubles them (half load); runtimes and sizes are untouched.
    This is the trace counterpart of the paper deriving W'm from Wm by
    compressing arrivals.
    """

    factor: float

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError("load factor must be positive")

    def __call__(self, records: Iterable[SwfJob]) -> Iterator[SwfJob]:
        previous_in: Optional[float] = None
        previous_out = 0.0
        for record in records:
            submitted = record.submit_time
            if previous_in is None:
                rescaled = submitted
            else:
                rescaled = previous_out + (submitted - previous_in) / self.factor
            previous_in, previous_out = submitted, rescaled
            yield _with_field(record, SwfField.SUBMIT_TIME, rescaled)


@dataclass(frozen=True)
class ShrinkProcessors:
    """Clamp per-job processor requests to *maximum*.

    Archive traces come from machines with other cluster sizes; shrinking
    requests to the largest modelled cluster keeps every job placeable on the
    simulated DAS-3 instead of silently never starting.
    """

    maximum: int

    def __post_init__(self) -> None:
        if self.maximum < 1:
            raise ValueError("maximum processors must be at least 1")

    def __call__(self, records: Iterable[SwfJob]) -> Iterator[SwfJob]:
        for record in records:
            requested = record.fields[SwfField.REQUESTED_PROCESSORS]
            allocated = record.fields[SwfField.ALLOCATED_PROCESSORS]
            if isinstance(requested, (int, float)) and requested > self.maximum:
                record = _with_field(record, SwfField.REQUESTED_PROCESSORS, self.maximum)
            if isinstance(allocated, (int, float)) and allocated > self.maximum:
                record = _with_field(record, SwfField.ALLOCATED_PROCESSORS, self.maximum)
            yield record


@dataclass(frozen=True)
class HeadLimit:
    """Pass through only the first *count* records."""

    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be non-negative")

    def __call__(self, records: Iterable[SwfJob]) -> Iterator[SwfJob]:
        produced = 0
        for record in records:
            if produced >= self.count:
                break
            produced += 1
            yield record


#: A streaming record transform.
TraceTransform = Callable[[Iterable[SwfJob]], Iterator[SwfJob]]


def apply_transforms(
    records: Iterable[SwfJob], transforms: Iterable[TraceTransform]
) -> Iterator[SwfJob]:
    """Chain *transforms* over *records*, keeping everything lazy."""
    stream: Iterable[SwfJob] = records
    for transform in transforms:
        stream = transform(stream)
    return iter(stream)


# ---------------------------------------------------------------------------
# Bundled synthetic DAS-3-style trace
# ---------------------------------------------------------------------------

#: Default length of the bundled synthetic trace.
SYNTHETIC_JOB_COUNT = 1000

#: Largest DAS-3 cluster (VU, 85 nodes): the natural request ceiling.
SYNTHETIC_MAX_PROCESSORS = 85


def synthetic_das3_trace(
    *,
    jobs: int = SYNTHETIC_JOB_COUNT,
    trace_seed: int = 2007,
    interarrival: float = 90.0,
    max_processors: int = SYNTHETIC_MAX_PROCESSORS,
) -> Iterator[SwfJob]:
    """A deterministic DAS-3-shaped synthetic trace, streamed record by record.

    The shape follows what DAS grid traces look like in the workload
    archives: Poisson arrivals, mostly power-of-two sizes with a tail of odd
    requests, log-uniform runtimes from minutes to hours, and a small user
    population.  Everything is drawn from one PCG64 stream seeded with
    *trace_seed* only, so the same parameters always produce byte-identical
    records — the trace behaves like committed data without committing a
    large file.
    """
    # Validate eagerly (this is a plain function returning a generator, so
    # bad parameters fail at pipeline-construction time, not at first next()).
    if jobs < 0:
        raise ValueError("jobs must be non-negative")
    if interarrival <= 0:
        raise ValueError("interarrival must be positive")
    if max_processors < 1:
        raise ValueError("max_processors must be at least 1")
    return _synthetic_das3_records(
        jobs=jobs,
        trace_seed=trace_seed,
        interarrival=interarrival,
        max_processors=max_processors,
    )


def _synthetic_das3_records(
    *, jobs: int, trace_seed: int, interarrival: float, max_processors: int
) -> Iterator[SwfJob]:
    import numpy as np

    rng = np.random.Generator(np.random.PCG64(trace_seed))
    sizes = [size for size in (1, 2, 4, 8, 16, 32, 64) if size <= max_processors]
    time = 0.0
    for number in range(1, jobs + 1):
        time += float(rng.exponential(interarrival))
        if rng.random() < 0.8:
            requested = int(sizes[int(rng.integers(0, len(sizes)))])
        else:
            requested = int(rng.integers(1, max_processors + 1))
        # Log-uniform runtimes: 2 minutes to 4 hours.
        runtime = float(np.exp(rng.uniform(np.log(120.0), np.log(14400.0))))
        fields = [0] * len(SwfField)
        fields[SwfField.JOB_NUMBER] = number
        fields[SwfField.SUBMIT_TIME] = round(time, 3)
        fields[SwfField.WAIT_TIME] = -1
        fields[SwfField.RUN_TIME] = round(runtime, 3)
        fields[SwfField.ALLOCATED_PROCESSORS] = requested
        fields[SwfField.AVERAGE_CPU_TIME] = -1
        fields[SwfField.USED_MEMORY] = -1
        fields[SwfField.REQUESTED_PROCESSORS] = requested
        fields[SwfField.REQUESTED_TIME] = round(runtime * float(rng.uniform(1.0, 3.0)), 3)
        fields[SwfField.REQUESTED_MEMORY] = -1
        fields[SwfField.STATUS] = 1
        fields[SwfField.USER_ID] = int(rng.integers(1, 40))
        fields[SwfField.GROUP_ID] = int(rng.integers(1, 6))
        fields[SwfField.EXECUTABLE] = int(rng.integers(1, 3))
        fields[SwfField.QUEUE] = 0
        fields[SwfField.PARTITION] = 1
        fields[SwfField.PRECEDING_JOB] = -1
        fields[SwfField.THINK_TIME] = -1
        yield SwfJob(fields=tuple(fields))


# ---------------------------------------------------------------------------
# Named trace registry (+ .swf files from trace directories)
# ---------------------------------------------------------------------------

_TRACES: Dict[str, Tuple[TraceOpener, str]] = {}


def register_trace(
    name: str,
    opener: TraceOpener,
    *,
    description: str = "",
    overwrite: bool = False,
) -> None:
    """Register *opener* as the named trace *name*.

    The opener receives the non-transform parameters of a trace reference as
    keyword arguments (e.g. ``jobs=50000&trace_seed=1`` for the synthetic
    generator) and returns an iterator of records.
    """
    key = name.lower()
    if not overwrite and key in _TRACES:
        raise ValueError(f"trace {name!r} already registered")
    _TRACES[key] = (opener, description)


def trace_directories() -> List[Path]:
    """The directories searched for user-supplied ``.swf`` files, in order."""
    directories: List[Path] = []
    override = os.environ.get(TRACES_DIR_ENV)
    if override:
        directories.append(Path(override))
    directories.append(Path("traces"))
    return directories


def _file_traces() -> Dict[str, Path]:
    """Discovered ``<stem> -> path`` of the ``.swf`` files in the trace dirs."""
    found: Dict[str, Path] = {}
    for directory in trace_directories():
        if not directory.is_dir():
            continue
        for path in sorted(directory.glob("*.swf")):
            found.setdefault(path.stem.lower(), path)
    return found


def known_traces() -> List[Tuple[str, str]]:
    """``(name, description)`` of every available trace, registry first."""
    entries = [(name, description) for name, (_, description) in sorted(_TRACES.items())]
    for stem, path in sorted(_file_traces().items()):
        if stem not in _TRACES:
            entries.append((stem, f"SWF file {path}"))
    return entries


def open_trace(name: str, **params: Any) -> Iterator[SwfJob]:
    """The record stream of trace *name* (registered, discovered, or a path).

    Resolution order: registered openers, then ``<name>.swf`` in the trace
    directories, then *name* interpreted as a filesystem path (so
    ``trace:./my/run.swf`` replays an arbitrary file).  File traces accept no
    opener parameters.
    """
    from repro.workloads.swf import SwfReader

    key = name.lower()
    if key in _TRACES:
        opener, _ = _TRACES[key]
        return opener(**params)
    path = _file_traces().get(key)
    if path is None:
        candidate = Path(name)
        if candidate.suffix == ".swf" or "/" in name or os.sep in name:
            path = candidate
    if path is not None and Path(path).is_file():
        if params:
            raise ValueError(
                f"trace {name!r} is an SWF file and takes no opener parameters: "
                f"{sorted(params)}"
            )
        return SwfReader().iter_records(path)
    from repro.refs import suggest

    known = ", ".join(entry for entry, _ in known_traces()) or "(none)"
    hint = suggest(name, (entry for entry, _ in known_traces()))
    suffix = f"; did you mean {hint!r}?" if hint else ""
    raise ValueError(f"unknown trace {name!r}; known: {known}{suffix}")


def trace_fingerprint(reference: str) -> Optional[str]:
    """Content digest of a *file-backed* trace reference, ``None`` otherwise.

    Registered traces are deterministic code, already covered by the
    experiment engine's code-version digest; a user-supplied ``.swf`` file
    is data the code digest cannot see, so its content hash must join the
    result-cache key — otherwise editing the file silently serves results
    computed from its old contents.  Malformed references return ``None``
    (they fail later, at build time, with a better error).
    """
    import hashlib

    try:
        ref = TraceRef.parse(reference)
    except ValueError:
        return None
    key = ref.trace.lower()
    if key in _TRACES:
        return None
    path = _file_traces().get(key)
    if path is None:
        candidate = Path(ref.trace)
        path = candidate if candidate.is_file() else None
    if path is None or not Path(path).is_file():
        return None
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


register_trace(
    "das3-synthetic",
    synthetic_das3_trace,
    description=(
        "bundled deterministic DAS-3-style synthetic trace "
        "(params: jobs, trace_seed, interarrival, max_processors)"
    ),
)


# ---------------------------------------------------------------------------
# Trace references: "trace:<name>?<param>=<value>&..."
# ---------------------------------------------------------------------------

#: Transform/conversion parameters a trace reference may carry; everything
#: else is forwarded to the trace opener.
TRANSFORM_PARAMS = (
    "window",
    "load_factor",
    "max_procs",
    "malleable",
    "malleable_seed",
    "max_jobs",
    "profile",
)


def _parse_value(text: str) -> Union[int, float, str]:
    from repro.refs import parse_scalar

    return parse_scalar(text)


@dataclass(frozen=True)
class TraceRef:
    """A parsed trace reference: the trace name plus its pipeline parameters."""

    trace: str
    params: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def parse(cls, reference: str) -> "TraceRef":
        """Parse ``"trace:<name>?k=v&k=v"`` (the prefix is optional here)."""
        from repro.refs import parse_query, split_reference

        name, query = split_reference(reference, prefix=TRACE_PREFIX)
        if not name:
            raise ValueError(f"empty trace name in reference {reference!r}")
        params = parse_query(
            query,
            value_parser=_parse_value,
            malformed=lambda part: (
                f"malformed trace parameter {part!r} in {reference!r} "
                "(expected key=value)"
            ),
        )
        return cls(trace=name, params=params)

    def canonical(self) -> str:
        """The canonical reference string (sorted parameters, with prefix)."""
        from repro.refs import render_reference

        return render_reference(self.trace, self.params, prefix=TRACE_PREFIX)

    def opener_params(self) -> Dict[str, Any]:
        """The parameters forwarded to the trace opener."""
        return {
            key: value
            for key, value in self.params.items()
            if key not in TRANSFORM_PARAMS
        }

    def transforms(self) -> List[TraceTransform]:
        """The record transforms this reference asks for, in pipeline order."""
        transforms: List[TraceTransform] = []
        window = self.params.get("window")
        if window is not None:
            start_text, separator, end_text = str(window).partition(":")
            if not separator:
                raise ValueError(
                    f"window must be 'start:end' (either side optional), got {window!r}"
                )
            transforms.append(
                TimeWindow(
                    start=float(start_text) if start_text else None,
                    end=float(end_text) if end_text else None,
                )
            )
        load_factor = self.params.get("load_factor")
        if load_factor is not None:
            transforms.append(LoadFactor(float(load_factor)))
        max_procs = self.params.get("max_procs")
        if max_procs is not None:
            transforms.append(ShrinkProcessors(int(max_procs)))
        max_jobs = self.params.get("max_jobs")
        if max_jobs is not None:
            transforms.append(HeadLimit(int(max_jobs)))
        return transforms

    def validate(self) -> "TraceRef":
        """Fail fast on anything wrong with this reference.

        Checks that the trace exists, the opener accepts the forwarded
        parameters, every transform parameter is well-formed and the
        malleable fraction lies in ``[0, 1]`` — without pulling a single
        record.  Raises :class:`ValueError` with a pointed message, so CLIs
        can report bad references as argument errors instead of tracebacks.
        """
        try:
            open_trace(self.trace, **self.opener_params())
        except TypeError as error:
            raise ValueError(
                f"trace {self.trace!r} rejected parameters "
                f"{sorted(self.opener_params())}: {error}"
            ) from None
        self.transforms()
        fraction = float(self.params.get("malleable", 1.0))
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"malleable fraction must lie in [0, 1], got {fraction:g}")
        int(self.params.get("malleable_seed", 0))
        return self

    def records(self) -> Iterator[SwfJob]:
        """The transformed record stream of this reference."""
        return apply_transforms(
            open_trace(self.trace, **self.opener_params()), self.transforms()
        )

    def jobspecs(self, *, job_count: Optional[int] = None) -> Iterator[JobSpec]:
        """The transformed stream converted to :class:`JobSpec` submissions.

        *job_count* (the experiment layer's knob) caps the number of replayed
        jobs on top of any ``max_jobs`` parameter of the reference itself.
        """
        return iter_jobspecs(
            self.records(),
            name=self.trace,
            default_profile=str(self.params.get("profile", "gadget2")),
            malleable_fraction=float(self.params.get("malleable", 1.0)),
            malleable_seed=int(self.params.get("malleable_seed", 0)),
            max_jobs=job_count,
        )


def is_trace_reference(name: str) -> bool:
    """Whether a workload name refers to a trace (``trace:`` prefix)."""
    return name.startswith(TRACE_PREFIX)


def build_trace_workload(
    reference: str, *, job_count: Optional[int] = None
) -> WorkloadSpec:
    """Materialise the trace *reference* into a :class:`WorkloadSpec`.

    This is the path the experiment engine takes: a spec is ordered,
    serialisable and has a known duration, which the sweep/cache machinery
    relies on.  For flat-memory replay of very long traces use
    :class:`StreamingWorkload` instead.
    """
    ref = TraceRef.parse(reference)
    jobs = list(ref.jobspecs(job_count=job_count))
    return WorkloadSpec(
        name=ref.canonical(),
        jobs=jobs,
        description=f"trace replay of {ref.trace} ({len(jobs)} jobs)",
    )


def stream_trace_jobspecs(
    reference: str, *, job_count: Optional[int] = None
) -> Iterator[JobSpec]:
    """The lazy :class:`JobSpec` stream of a trace *reference*."""
    return TraceRef.parse(reference).jobspecs(job_count=job_count)


class StreamingWorkload:
    """A workload that generates its job specifications while being replayed.

    Quacks like :class:`~repro.workloads.spec.WorkloadSpec` where the
    submission machinery needs it (iteration, ``name``, ``duration``) without
    ever holding more than one :class:`JobSpec` of its own — the streaming
    replay path for traces far larger than memory.  ``duration`` reports the
    last submit time seen so far (the true horizon once iteration finished),
    and ``submitted_count`` the number of specs yielded.
    """

    def __init__(
        self,
        factory: Callable[[], Iterator[JobSpec]],
        *,
        name: str = "stream",
        description: str = "",
    ) -> None:
        self._factory = factory
        self.name = name
        self.description = description
        self._last_submit = 0.0
        self._count = 0

    @classmethod
    def from_reference(
        cls, reference: str, *, job_count: Optional[int] = None
    ) -> "StreamingWorkload":
        """A streaming workload replaying the trace *reference*."""
        ref = TraceRef.parse(reference)
        return cls(
            lambda: ref.jobspecs(job_count=job_count),
            name=ref.canonical(),
            description=f"streaming trace replay of {ref.trace}",
        )

    def __iter__(self) -> Iterator[JobSpec]:
        self._last_submit = 0.0
        self._count = 0
        for spec in self._factory():
            self._last_submit = spec.submit_time
            self._count += 1
            yield spec

    @property
    def duration(self) -> float:
        """Last submit time streamed so far (the horizon after iteration)."""
        return self._last_submit

    @property
    def submitted_count(self) -> int:
        """Number of job specifications streamed so far."""
        return self._count


# ---------------------------------------------------------------------------
# Workload-registry integration
# ---------------------------------------------------------------------------


def _trace_workload_resolver(name: str, rng, *, job_count: Optional[int] = None):
    """Build a trace-backed workload for the registry's ``trace:`` prefix.

    *rng* is deliberately unused: a trace is data, so the same reference and
    job count produce the same workload regardless of the experiment seed
    (the seed still drives the scheduler/background streams).
    """
    return build_trace_workload(name, job_count=job_count)


def _register_with_workload_registry() -> None:
    from repro.workloads.registry import register_prefix_resolver

    register_prefix_resolver(TRACE_PREFIX, _trace_workload_resolver, overwrite=True)


_register_with_workload_registry()
