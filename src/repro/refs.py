"""The unified reference grammar: ``<prefix>:<name>?key=value&key=value``.

Every pluggable artefact of the system is addressable by a *reference
string* sharing one grammar::

    policy    EGS                      WF         EASY?reserve_depth=2
    trace     trace:das3-synthetic     trace:kth-sp2?window=0:86400&malleable=0
    fault     fault:churn              fault:outage?cluster=vu&at=3600

The grammar is

.. code-block:: text

    reference  = [prefix ":"] name ["?" query]
    query      = pair *("&" pair)
    pair       = key "=" value

and the canonical form sorts the query pairs by key, so equal references
always render equally — the property the result cache's config hashing
relies on.

This module owns parsing (:func:`split_reference`, :func:`parse_query`),
canonical rendering (:func:`render_reference`) and name validation with
registered-name suggestions (:func:`unknown_name_error`).  The historical
entry points — :class:`repro.policies.registry.PolicySpec`,
:class:`repro.workloads.traces.TraceRef` and
:class:`repro.faults.models.FaultRef` — delegate here and keep their exact
error-message contracts; new code should parse through :func:`parse_reference`
and get all three families uniformly.

Value parsing differs by family and is pluggable: policies parse values as
Python literals (``parse_literal``: ``30`` is an int, ``0.5`` a float,
``True`` a bool), traces and faults use the narrower numeric fallback
(``parse_scalar``: int, then float, then string).  Both are exported here so
the families stay individually byte-compatible with their pre-unification
behaviour.
"""

from __future__ import annotations

import ast
import difflib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Tuple, Union

#: The reference prefixes of the built-in families.
POLICY_PREFIX = "policy:"
TRACE_PREFIX = "trace:"
FAULT_PREFIX = "fault:"


def parse_literal(text: str) -> Any:
    """Parse a value as a Python literal, falling back to the string.

    The policy family's value parser: ``30`` is an int, ``0.5`` a float,
    ``True`` a bool and anything else a plain string.
    """
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def parse_scalar(text: str) -> Union[int, float, str]:
    """Parse a value as int, then float, then plain string.

    The trace/fault families' value parser; narrower than
    :func:`parse_literal` (no bools, no quoting) but stable for references
    whose canonical form feeds cache keys.
    """
    for parser in (int, float):
        try:
            return parser(text)
        except ValueError:
            continue
    return text


def split_reference(
    reference: str, *, prefix: Optional[str] = None
) -> Tuple[str, str]:
    """Split *reference* into ``(name, query)``, stripping *prefix* if present.

    The query is returned raw (possibly empty); parse it with
    :func:`parse_query`.  The prefix is optional in the input — both
    ``"fault:churn"`` and ``"churn"`` split to ``("churn", "")``.
    """
    text = reference
    if prefix and text.startswith(prefix):
        text = text[len(prefix):]
    name, _, query = text.partition("?")
    return name, query


def parse_query(
    query: str,
    *,
    value_parser: Callable[[str], Any] = parse_scalar,
    malformed: Optional[Callable[[str], str]] = None,
) -> Dict[str, Any]:
    """Parse ``"k=v&k=v"`` into a dict using *value_parser* per value.

    A pair without ``=`` (or with an empty key) raises :class:`ValueError`;
    *malformed* maps the offending pair text to the message, letting each
    family keep its historical wording.
    """
    params: Dict[str, Any] = {}
    if not query:
        return params
    for part in query.split("&"):
        key, separator, value = part.partition("=")
        if not separator or not key:
            message = (
                malformed(part)
                if malformed is not None
                else f"malformed reference parameter {part!r} (expected key=value)"
            )
            raise ValueError(message)
        params[key.strip()] = value_parser(value.strip())
    return params


def render_reference(
    name: str, params: Mapping[str, Any], *, prefix: str = ""
) -> str:
    """The canonical string form: prefix, name, sorted ``key=value`` pairs."""
    if not params:
        return f"{prefix}{name}"
    query = "&".join(f"{key}={params[key]}" for key in sorted(params))
    return f"{prefix}{name}?{query}"


def suggest(name: str, known: Iterable[str]) -> Optional[str]:
    """The registered name closest to *name*, or ``None`` if nothing is close.

    Case-insensitive; used to turn "unknown X" errors into "unknown X — did
    you mean Y?" across every reference family.
    """
    candidates = list(known)
    by_fold = {candidate.casefold(): candidate for candidate in candidates}
    folded = difflib.get_close_matches(
        name.casefold(), list(by_fold), n=1, cutoff=0.6
    )
    return by_fold[folded[0]] if folded else None


def unknown_name_error(
    family: str, name: str, known: Iterable[str]
) -> ValueError:
    """A uniform unknown-name error listing the registry and a suggestion."""
    candidates = sorted(known)
    listing = ", ".join(candidates) or "(none)"
    hint = suggest(name, candidates)
    suffix = f"; did you mean {hint!r}?" if hint else ""
    return ValueError(
        f"unknown {family} {name!r}; registered: {listing}{suffix}"
    )


@dataclass(frozen=True)
class Ref:
    """A parsed reference of any family: prefix, name and sorted parameters.

    The general-purpose value most callers want from
    :func:`parse_reference`; the families' richer types (``PolicySpec``,
    ``TraceRef``, ``FaultRef``) add validation and construction on top.
    """

    prefix: str
    name: str
    params: Tuple[Tuple[str, Any], ...] = field(default=())

    def canonical(self) -> str:
        """The canonical reference string."""
        return render_reference(self.name, dict(self.params), prefix=self.prefix)

    def param_dict(self) -> Dict[str, Any]:
        """The parameters as a plain dict."""
        return dict(self.params)

    def __str__(self) -> str:
        return self.canonical()


def parse_reference(
    reference: str,
    *,
    prefix: str = "",
    value_parser: Callable[[str], Any] = parse_scalar,
) -> Ref:
    """Parse any ``[prefix:]name?k=v&…`` reference into a :class:`Ref`."""
    name, query = split_reference(reference, prefix=prefix or None)
    if not name:
        raise ValueError(f"empty reference name in {reference!r}")
    params = parse_query(query, value_parser=value_parser)
    return Ref(prefix=prefix, name=name, params=tuple(sorted(params.items())))
