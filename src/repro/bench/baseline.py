"""Baseline storage and regression gating for benchmark records.

Baselines are committed ``BENCH_<scenario>.json`` files under
``benchmarks/baselines/``.  :func:`check_record` diffs a fresh
:class:`~repro.bench.runner.BenchRecord` against the committed baseline of
its scenario:

* no baseline — the record *bootstraps* one (written in place) and passes;
* slower than baseline by more than the threshold — a **regression**, the
  gate fails;
* faster than baseline by more than the threshold — an **improvement**,
  reported (and worth committing as the new baseline via ``--update``);
* within the threshold either way — ok.

Wall-clock time is the gated metric; events/second, peak RSS and the metrics
digest are compared and reported as notes only (the digest changing means
the *simulated outcomes* changed, which a pure perf PR should never do).
A record is only gated against a baseline measured for the same pinned
workload on the same host fingerprint under the same event-queue
implementation — comparing wall-clock across different machines (or
different kernels) says nothing about the code — so gating on CI requires a
baseline committed from a CI run (the workflow uploads every
``BENCH_*.json`` as an artifact for exactly that).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from repro.bench.runner import BenchRecord, load_record

#: Environment variable overriding the default baseline directory.
BASELINE_DIR_ENV = "REPRO_BENCH_BASELINE_DIR"

#: Default regression threshold (fraction of the baseline wall-clock).
DEFAULT_THRESHOLD = 0.15

#: Statuses a comparison can end in.
STATUS_OK = "ok"
STATUS_REGRESSION = "regression"
STATUS_IMPROVEMENT = "improvement"
STATUS_BOOTSTRAPPED = "bootstrapped"


def default_baseline_dir() -> Path:
    """``$REPRO_BENCH_BASELINE_DIR`` or ``benchmarks/baselines`` (cwd-relative)."""
    override = os.environ.get(BASELINE_DIR_ENV)
    if override:
        return Path(override)
    return Path("benchmarks") / "baselines"


def parse_threshold(text: Union[str, float]) -> float:
    """Parse a threshold given as a fraction (``0.15``) or percentage (``15%``).

    Bare numbers above 1 are ambiguous (is ``15`` a 15% threshold or a
    1500% one?) and rejected with guidance rather than silently guessed.
    """
    explicit_percent = False
    if isinstance(text, (int, float)):
        value = float(text)
    else:
        stripped = text.strip()
        if stripped.endswith("%"):
            explicit_percent = True
            value = float(stripped[:-1]) / 100.0
        else:
            value = float(stripped)
    if value > 1.0 and not explicit_percent:
        raise ValueError(
            f"ambiguous threshold {text!r}: write a percentage ('15%') or a "
            "fraction ('0.15')"
        )
    if value <= 0:
        raise ValueError(f"threshold must be positive, got {text!r}")
    return value


@dataclass
class Comparison:
    """Outcome of diffing one benchmark record against its baseline."""

    scenario: str
    status: str
    threshold: float
    current_wall: float
    baseline_wall: Optional[float] = None
    #: Relative wall-clock change vs the baseline (positive = slower).
    delta: Optional[float] = None
    notes: List[str] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        """Whether this comparison should fail the gate."""
        return self.status == STATUS_REGRESSION

    def describe(self) -> str:
        """One line suitable for CI logs."""
        if self.status == STATUS_BOOTSTRAPPED:
            return (
                f"{self.scenario}: no baseline found — bootstrapped one at "
                f"{self.current_wall:.3f}s"
            )
        assert self.baseline_wall is not None and self.delta is not None
        direction = "slower" if self.delta >= 0 else "faster"
        line = (
            f"{self.scenario}: {self.status} — {self.current_wall:.3f}s vs "
            f"baseline {self.baseline_wall:.3f}s "
            f"({abs(self.delta) * 100.0:.1f}% {direction}, "
            f"threshold {self.threshold * 100.0:.0f}%)"
        )
        for note in self.notes:
            line += f"\n  note: {note}"
        return line


def baseline_path(directory: Union[str, Path], scenario: str) -> Path:
    """The baseline file of *scenario* under *directory*."""
    return Path(directory) / f"BENCH_{scenario}.json"


def load_baseline(directory: Union[str, Path], scenario: str) -> Optional[BenchRecord]:
    """The committed baseline for *scenario*, or ``None`` if there is none."""
    path = baseline_path(directory, scenario)
    if not path.is_file():
        return None
    return load_record(path)


def save_baseline(directory: Union[str, Path], record: BenchRecord) -> Path:
    """Write *record* as the committed baseline of its scenario."""
    return record.write(Path(directory))


def compare_records(
    current: BenchRecord,
    baseline: BenchRecord,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> Comparison:
    """Diff *current* against *baseline* and classify the outcome."""
    baseline_wall = baseline.wall_clock_seconds
    delta = (
        (current.wall_clock_seconds - baseline_wall) / baseline_wall
        if baseline_wall > 0
        else 0.0
    )
    same_workload = (current.job_count, current.seed) == (
        baseline.job_count,
        baseline.seed,
    )
    # Same coarse machine fingerprint *and* same interpreter feature release:
    # "Linux-x86_64" alone would equate a dev box with every CI runner, and
    # interpreter feature releases (3.11 vs 3.12) differ measurably in
    # speed.  Micro releases do not, and comparing them exactly would
    # disarm the gate every time the runner image bumps a patch version.
    def _feature_release(version: str) -> str:
        return ".".join(version.split(".")[:2])

    same_host = (current.host, _feature_release(current.python_version)) == (
        baseline.host,
        _feature_release(baseline.python_version),
    )
    # The event-queue implementation is part of the comparability
    # fingerprint: a heap-measured record and a calendar-measured record
    # time different kernels, so neither gates against the other.
    same_queue = current.queue == baseline.queue
    comparable = same_workload and same_host and same_queue
    if not comparable:
        # Different pinned workloads time different work, and different
        # machines time the same work differently; neither a regression nor
        # an improvement can be concluded.
        status = STATUS_OK
    elif delta > threshold:
        status = STATUS_REGRESSION
    elif delta < -threshold:
        status = STATUS_IMPROVEMENT
    else:
        status = STATUS_OK

    notes: List[str] = []
    if current.cache_hits:
        notes.append(
            f"{current.cache_hits}/{current.runs} runs served from the result "
            "cache; timings measure the cache, not the simulator"
        )
    if not same_workload:
        notes.append(
            f"workload mismatch: current jobs={current.job_count} seed={current.seed}, "
            f"baseline jobs={baseline.job_count} seed={baseline.seed} — "
            "not gated; re-baseline with --update"
        )
    else:
        if not same_host:
            notes.append(
                f"host mismatch: current {current.host!r}/py{current.python_version}, "
                f"baseline {baseline.host!r}/py{baseline.python_version} — "
                "wall-clock not gated; commit a baseline measured on this host "
                "(e.g. the BENCH_*.json artifact from a CI run) to enable gating"
            )
        if not same_queue:
            notes.append(
                f"queue mismatch: current {current.queue!r}, baseline "
                f"{baseline.queue!r} — wall-clock not gated; re-baseline with "
                "--update under the queue being measured"
            )
        if current.metrics_digest != baseline.metrics_digest:
            notes.append(
                "metrics digest changed: the simulated outcomes differ from the "
                "baseline (expected for feature PRs, suspicious for pure perf PRs)"
            )
    if baseline.events_per_second > 0:
        eps_delta = (
            current.events_per_second - baseline.events_per_second
        ) / baseline.events_per_second
        notes.append(f"events/second: {eps_delta * 100.0:+.1f}% vs baseline")
    return Comparison(
        scenario=current.scenario,
        status=status,
        threshold=threshold,
        current_wall=current.wall_clock_seconds,
        baseline_wall=baseline_wall,
        delta=delta,
        notes=notes,
    )


def check_record(
    current: BenchRecord,
    *,
    directory: Union[str, Path, None] = None,
    threshold: float = DEFAULT_THRESHOLD,
    bootstrap: bool = True,
) -> Comparison:
    """Gate *current* against the committed baseline of its scenario.

    With no baseline on disk and ``bootstrap=True`` (the default), the record
    becomes the baseline — first runs pass cleanly instead of erroring — and
    the comparison reports ``bootstrapped``.  Records with cache hits are
    never written as baselines.
    """
    directory = Path(directory) if directory is not None else default_baseline_dir()
    baseline = load_baseline(directory, current.scenario)
    if baseline is None:
        comparison = Comparison(
            scenario=current.scenario,
            status=STATUS_BOOTSTRAPPED,
            threshold=threshold,
            current_wall=current.wall_clock_seconds,
        )
        if current.cache_hits:
            comparison.notes.append(
                "record has cache hits; not writing it as a baseline"
            )
        elif bootstrap:
            save_baseline(directory, current)
        else:
            comparison.notes.append("bootstrap disabled; no baseline written")
        return comparison
    return compare_records(current, baseline, threshold=threshold)
