"""Continuous benchmarking: measured scenario runs, baselines, CI gating.

The ``repro.bench`` package makes "faster every PR" a checked invariant
instead of a hope:

* :mod:`repro.bench.runner` runs registry scenarios at pinned seeds and
  produces machine-readable :class:`~repro.bench.runner.BenchRecord`\\ s
  (``BENCH_<scenario>.json``): wall-clock, events/second, peak RSS,
  cache-hit status, code version and a digest over the simulated metrics.
* :mod:`repro.bench.baseline` diffs records against the committed baselines
  under ``benchmarks/baselines/`` and classifies the outcome (ok /
  regression / improvement / bootstrapped).
* :mod:`repro.bench.cli` is the ``repro-bench`` command line; CI runs
  ``repro-bench --check --threshold 15%`` on every PR.
"""

from repro.bench.baseline import (
    DEFAULT_THRESHOLD,
    Comparison,
    check_record,
    compare_records,
    default_baseline_dir,
    load_baseline,
    parse_threshold,
    save_baseline,
)
from repro.bench.runner import (
    BenchRecord,
    benchable_scenarios,
    load_record,
    metrics_digest,
    run_bench,
)

__all__ = [
    "BenchRecord",
    "Comparison",
    "DEFAULT_THRESHOLD",
    "benchable_scenarios",
    "check_record",
    "compare_records",
    "default_baseline_dir",
    "load_baseline",
    "load_record",
    "metrics_digest",
    "parse_threshold",
    "run_bench",
    "save_baseline",
]
