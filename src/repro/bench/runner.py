"""Measured benchmark runs over the scenario registry.

:func:`run_bench` executes one registered scenario at a pinned seed and job
count — serially, so the numbers mean something — and returns a
:class:`BenchRecord` with everything a regression gate needs: wall-clock
time, kernel events processed (and the derived events/second), peak RSS, how
many runs were served from the result cache, the code-version digest the
cache uses, and a digest over the produced metrics (so a perf refactor can
prove it did not change a single simulated outcome).
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.experiments.engine import ResultCache, code_version
from repro.experiments.scenarios import get_scenario, iter_scenarios
from repro.experiments.setup import ExperimentResult, build_workload, run_experiment
from repro.sim.calqueue import resolve_queue_name
from repro.sim.rng import RandomStreams
from repro.workloads.spec import WorkloadSpec

#: Schema version of the ``BENCH_*.json`` files.
BENCH_FORMAT = 1


def peak_rss_bytes() -> int:
    """Peak resident set size of this process in bytes (0 if unavailable).

    This is the process-wide high watermark: when one ``repro-bench``
    invocation benchmarks several scenarios, later records include the peak
    of everything run before them.  Treat the value as an upper bound (it is
    reported, never gated); measure scenarios in separate invocations when
    an exact per-scenario peak matters.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def benchable_scenarios() -> Tuple[str, ...]:
    """Names of the registered scenarios that sweep configurations.

    Static scenarios (Figure 6's scaling curves, Table I) render a report
    without running the simulator, so there is nothing to benchmark.
    """
    return tuple(spec.name for spec in iter_scenarios() if not spec.is_static)


@dataclass
class BenchRecord:
    """One measured benchmark run of a scenario (the ``BENCH_*.json`` payload)."""

    scenario: str
    job_count: int
    seed: int
    runs: int
    wall_clock_seconds: float
    events_processed: int
    events_per_second: float
    peak_rss_bytes: int
    cache_hits: int
    code_version: str
    metrics_digest: str
    #: Event-queue implementation the record was measured under (see
    #: ``repro.sim.calqueue``).  Records predating the field were measured
    #: with the then-only heap queue, hence the default.
    queue: str = "heap"
    python_version: str = field(default_factory=platform.python_version)
    #: Coarse machine fingerprint; wall-clock comparisons across different
    #: hosts are reported but never gated (see ``repro.bench.baseline``).
    host: str = field(default_factory=lambda: f"{platform.system()}-{platform.machine()}")
    format: int = BENCH_FORMAT

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchRecord":
        """Inverse of :meth:`to_dict`; unknown keys are ignored."""
        known = cls.__dataclass_fields__
        return cls(**{key: value for key, value in data.items() if key in known})

    @property
    def file_name(self) -> str:
        """Canonical file name of this record (``BENCH_<scenario>.json``)."""
        return f"BENCH_{self.scenario}.json"

    def write(self, directory: Union[str, Path]) -> Path:
        """Write the record to ``<directory>/BENCH_<scenario>.json``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / self.file_name
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path


def metrics_digest(results: Dict[str, ExperimentResult]) -> str:
    """SHA-256 over the labelled metrics of a scenario run.

    Stable across processes and caching (see
    :meth:`~repro.metrics.collector.ExperimentMetrics.to_dict`), so two
    kernels producing the same digest simulated exactly the same outcomes.
    """
    digest = hashlib.sha256()
    for label in sorted(results):
        digest.update(label.encode())
        digest.update(
            json.dumps(results[label].metrics.to_dict(), sort_keys=True).encode()
        )
    return digest.hexdigest()


def run_bench(
    scenario: str,
    *,
    job_count: Optional[int] = None,
    seed: int = 0,
    cache: Union[ResultCache, str, Path, None] = None,
) -> BenchRecord:
    """Run *scenario* once, measured, and return its :class:`BenchRecord`.

    The configurations are executed serially in this process (never fanned
    out), so wall-clock and events/second are comparable across runs; the
    timed windows cover only :func:`run_experiment` itself, never cache
    probing or cache writes.  With *cache* given, cached results are used
    and counted in ``cache_hits`` — a record with cache hits measures the
    cache, not the simulator, and the regression gate refuses both to gate
    it and to treat it as a baseline.
    """
    spec = get_scenario(scenario)
    if spec.is_static:
        raise ValueError(
            f"scenario {scenario!r} is static (report-only) and cannot be benchmarked"
        )
    if spec.bench is not None:
        # The scenario measures itself through a custom hook (e.g. the
        # sharded-replay engine) instead of sweeping run_experiment.
        jobs = int(job_count) if job_count is not None else spec.default_job_count
        measured = spec.bench(job_count=jobs, seed=int(seed))
        wall = float(measured["wall_clock_seconds"])
        events = int(measured["events_processed"])
        return BenchRecord(
            scenario=spec.name,
            job_count=jobs,
            seed=int(seed),
            runs=int(measured.get("runs", 1)),
            wall_clock_seconds=wall,
            events_processed=events,
            events_per_second=events / wall if wall > 0 else 0.0,
            peak_rss_bytes=peak_rss_bytes(),
            cache_hits=0,
            code_version=code_version(),
            metrics_digest=str(measured["metrics_digest"]),
            queue=resolve_queue_name(),
        )
    pairs = spec.expand(job_count=job_count, seed=seed)
    store = (
        cache
        if isinstance(cache, ResultCache) or cache is None
        else ResultCache(cache)
    )

    # Only the simulator is inside the timed windows: cache probing and
    # cache writes are I/O whose cost must not pollute the gated wall-clock.
    #
    # A scenario's configurations replay the same workload against different
    # policies (exactly the paper's methodology), so the specification is
    # built once per distinct ``(workload, seed, job_count)`` — inside a
    # timed window, like every other piece of work the sweep needs — and the
    # frozen spec is shared across the runs.
    results: Dict[str, ExperimentResult] = {}
    workloads: Dict[Tuple[str, int, int], WorkloadSpec] = {}
    cache_hits = 0
    wall_clock = 0.0
    for label, config in pairs:
        cached = store.load(config) if store is not None else None
        if cached is not None:
            cache_hits += 1
            results[label] = cached
            continue
        key = (config.workload, config.seed, config.job_count)
        started = time.perf_counter()
        workload = workloads.get(key)
        if workload is None:
            workloads[key] = workload = build_workload(
                config, RandomStreams(seed=config.seed)
            )
        result = run_experiment(config, workload=workload)
        wall_clock += time.perf_counter() - started
        if store is not None:
            store.store(result)
        results[label] = result

    events = sum(result.events_processed for result in results.values())
    return BenchRecord(
        scenario=spec.name,
        job_count=int(job_count) if job_count is not None else spec.default_job_count,
        seed=int(seed),
        runs=len(pairs),
        wall_clock_seconds=wall_clock,
        events_processed=events,
        events_per_second=events / wall_clock if wall_clock > 0 else 0.0,
        peak_rss_bytes=peak_rss_bytes(),
        cache_hits=cache_hits,
        code_version=code_version(),
        metrics_digest=metrics_digest(results),
        queue=resolve_queue_name(),
    )


def profile_bench_data(
    scenario: str,
    *,
    job_count: Optional[int] = None,
    seed: int = 0,
    top: int = 20,
) -> Dict[str, Any]:
    """Run *scenario* under :mod:`cProfile`; returns a JSON-shaped summary.

    A diagnostic, not a measurement: the profiler inflates wall-clock by a
    large constant factor, so profiled runs are never written as records or
    gated against baselines.  The ``hotspots`` list ranks functions by total
    time spent in their own frames (``tottime``) — the quantity an
    optimisation can actually attack.  :func:`profile_report` renders the
    same data as text; ``repro-bench --profile-out`` writes it as JSON for
    machine consumption (regression dashboards, flamegraph tooling).
    """
    import cProfile
    import pstats

    if top < 1:
        raise ValueError("top must be at least 1")
    spec = get_scenario(scenario)
    if spec.is_static:
        raise ValueError(
            f"scenario {scenario!r} is static (report-only) and cannot be profiled"
        )
    pairs = spec.expand(job_count=job_count, seed=seed)
    workloads: Dict[Tuple[str, int, int], WorkloadSpec] = {}
    profiler = cProfile.Profile()
    for _label, config in pairs:
        key = (config.workload, config.seed, config.job_count)
        workload = workloads.get(key)
        profiler.enable()
        if workload is None:
            workloads[key] = workload = build_workload(
                config, RandomStreams(seed=config.seed)
            )
        run_experiment(config, workload=workload)
        profiler.disable()
    stats = pstats.Stats(profiler)
    total_calls = int(getattr(stats, "total_calls", 0))
    total_time = float(getattr(stats, "total_tt", 0.0))
    hotspots: List[Dict[str, Any]] = []
    # stats.stats maps (file, line, function) -> (cc, nc, tottime, cumtime, callers).
    ranked = sorted(
        stats.stats.items(), key=lambda item: item[1][2], reverse=True  # type: ignore[attr-defined]
    )
    for (filename, line, function), (cc, nc, tottime, cumtime, _callers) in ranked[:top]:
        hotspots.append(
            {
                "function": function,
                "file": filename,
                "line": line,
                "calls": int(nc),
                "primitive_calls": int(cc),
                "tottime": tottime,
                "cumtime": cumtime,
            }
        )
    return {
        "scenario": spec.name,
        "runs": len(pairs),
        "job_count": job_count if job_count is not None else spec.default_job_count,
        "seed": seed,
        "queue": resolve_queue_name(),
        "total_calls": total_calls,
        "total_time": total_time,
        "top": top,
        "hotspots": hotspots,
    }


def profile_report(data: Dict[str, Any]) -> str:
    """Render one :func:`profile_bench_data` summary as a text table."""
    lines = [
        f"profile: {data['scenario']} ({data['runs']} runs, "
        f"jobs={data['job_count']}, seed={data['seed']}, "
        f"queue={data['queue']}) — top {data['top']} by own time",
        f"  {data['total_calls']} calls in {data['total_time']:.3f}s",
        f"  {'tottime':>9} {'cumtime':>9} {'calls':>9}  function",
    ]
    for spot in data["hotspots"]:
        where = f"{spot['function']}  ({spot['file']}:{spot['line']})"
        lines.append(
            f"  {spot['tottime']:>9.4f} {spot['cumtime']:>9.4f} "
            f"{spot['calls']:>9}  {where}"
        )
    return "\n".join(lines)


def profile_bench(
    scenario: str,
    *,
    job_count: Optional[int] = None,
    seed: int = 0,
    top: int = 20,
) -> str:
    """Profile *scenario* and return the text report (see :func:`profile_bench_data`)."""
    return profile_report(
        profile_bench_data(scenario, job_count=job_count, seed=seed, top=top)
    )


def load_record(path: Union[str, Path]) -> BenchRecord:
    """Read a ``BENCH_*.json`` file back into a :class:`BenchRecord`."""
    return BenchRecord.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def records_report(records: List[BenchRecord]) -> str:
    """Plain-text table of measured benchmark records."""
    lines = [
        f"{'scenario':<20} {'queue':<8} {'runs':>4} {'jobs':>5} {'wall (s)':>9} "
        f"{'events':>9} {'events/s':>10} {'peak RSS':>9} {'cached':>6}"
    ]
    for record in records:
        lines.append(
            f"{record.scenario:<20} {record.queue:<8} "
            f"{record.runs:>4} {record.job_count:>5} "
            f"{record.wall_clock_seconds:>9.3f} {record.events_processed:>9} "
            f"{record.events_per_second:>10.0f} "
            f"{record.peak_rss_bytes / 1e6:>7.1f}MB {record.cache_hits:>6}"
        )
    return "\n".join(lines)
