"""Command-line entry point: ``repro-bench``.

Runs registered scenarios at pinned seeds, writes machine-readable
``BENCH_<scenario>.json`` records, and optionally gates against the
committed baselines under ``benchmarks/baselines/``.

Examples
--------
Measure the Figure 7 sweep (the default scenario) and write
``BENCH_figure7.json`` into the current directory::

    repro-bench

Benchmark several scenarios at the paper's full size::

    repro-bench figure7 figure8 --job-count 300

Gate against the committed baselines, failing the process on a >15%
wall-clock regression (what CI runs on every PR)::

    repro-bench figure7 --job-count 40 --check --threshold 15%

Accept the current numbers as the new baselines (commit the result)::

    repro-bench figure7 --job-count 40 --update

Print the 25 hottest functions (by own time) of a scenario's sweep::

    repro-bench figure7 --job-count 40 --profile 25
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.bench.baseline import (
    check_record,
    default_baseline_dir,
    parse_threshold,
    save_baseline,
)
from repro.bench.runner import (
    BenchRecord,
    benchable_scenarios,
    profile_bench_data,
    profile_report,
    records_report,
    run_bench,
)

#: Environment variables shared with the pytest benchmark harness.
JOBS_ENV = "REPRO_BENCH_JOBS"
SEED_ENV = "REPRO_BENCH_SEED"

#: Scenarios benchmarked when none is named: the paper's central sweep, the
#: trace-replay path (SWF ingestion + transformation), the fault sweep
#: (node churn + failure-aware scheduling + resilience metrics) and the
#: churn-replay combination (trace-driven submissions under node churn) —
#: together they cover every hot subsystem of the simulator.
DEFAULT_SCENARIOS = ("figure7", "trace-replay", "fault-sweep", "churn-replay")

#: Default job count for benchmark runs: large enough for a stable signal,
#: small enough for a CI gate on every PR.
DEFAULT_JOB_COUNT = 60


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of ``repro-bench``."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run scenario benchmarks, write BENCH_<scenario>.json and "
        "gate against committed baselines.",
    )
    parser.add_argument(
        "scenarios",
        nargs="*",
        default=None,
        help=f"scenarios to benchmark (default: {' '.join(DEFAULT_SCENARIOS)}; "
        "'all' = every sweep scenario)",
    )
    parser.add_argument(
        "--job-count",
        type=int,
        default=None,
        help=f"jobs per workload (default: ${JOBS_ENV} or {DEFAULT_JOB_COUNT})",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help=f"pinned root seed (default: ${SEED_ENV} or 0)",
    )
    parser.add_argument(
        "--output-dir",
        default=".",
        help="directory BENCH_<scenario>.json files are written to (default: .)",
    )
    parser.add_argument(
        "--baseline-dir",
        default=None,
        help=f"committed-baseline directory (default: $REPRO_BENCH_BASELINE_DIR "
        f"or {default_baseline_dir()})",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="diff against the committed baselines; exit 1 past the threshold "
        "(a missing baseline is bootstrapped and passes)",
    )
    parser.add_argument(
        "--threshold",
        default="15%",
        help="regression threshold for --check, e.g. '15%%' or '0.15' (default 15%%)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="write the measured records as the new committed baselines",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="serve repeat configurations from this result cache (off by "
        "default: benchmarks measure the simulator, not the cache)",
    )
    parser.add_argument(
        "--profile",
        type=int,
        default=None,
        metavar="N",
        help="profile each scenario under cProfile and print its top-N "
        "hotspots instead of benchmarking (cannot be combined with "
        "--check/--update: profiled timings are diagnostics, not "
        "measurements)",
    )
    parser.add_argument(
        "--profile-out",
        metavar="FILE",
        default=None,
        help="with --profile: also write the hotspot data as JSON to FILE "
        "(a list with one entry per profiled scenario; '-' for stdout)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list benchable scenarios and exit"
    )
    return parser


def _resolve_scenarios(names: Sequence[str]) -> List[str]:
    if not names:
        return list(DEFAULT_SCENARIOS)
    if list(names) == ["all"]:
        return list(benchable_scenarios())
    return list(names)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        print("Benchable scenarios:")
        for name in benchable_scenarios():
            print(f"  {name}")
        return 0

    try:
        threshold = parse_threshold(args.threshold)
    except ValueError as error:
        parser.error(str(error))
        return 2  # pragma: no cover - parser.error raises

    job_count = (
        args.job_count
        if args.job_count is not None
        else int(os.environ.get(JOBS_ENV, DEFAULT_JOB_COUNT))
    )
    if job_count < 1:
        parser.error("--job-count must be at least 1")
        return 2  # pragma: no cover - parser.error raises
    seed = args.seed if args.seed is not None else int(os.environ.get(SEED_ENV, 0))
    baseline_dir = (
        args.baseline_dir if args.baseline_dir is not None else default_baseline_dir()
    )

    if args.profile_out is not None and args.profile is None:
        parser.error("--profile-out requires --profile")
        return 2  # pragma: no cover - parser.error raises

    if args.profile is not None:
        if args.check or args.update:
            parser.error(
                "--profile is a diagnostic and cannot gate or update baselines; "
                "drop --check/--update"
            )
            return 2  # pragma: no cover - parser.error raises
        if args.profile < 1:
            parser.error("--profile takes the number of hotspots to print (>= 1)")
            return 2  # pragma: no cover - parser.error raises
        profiles: List[dict] = []
        for name in _resolve_scenarios(args.scenarios):
            try:
                data = profile_bench_data(
                    name, job_count=job_count, seed=seed, top=args.profile
                )
            except ValueError as error:
                parser.error(str(error))
                return 2  # pragma: no cover - parser.error raises
            profiles.append(data)
            print(profile_report(data))
            print()
        if args.profile_out is not None:
            import json

            payload = json.dumps(profiles, indent=2, sort_keys=True)
            if args.profile_out == "-":
                print(payload)
            else:
                with open(args.profile_out, "w", encoding="utf-8") as handle:
                    handle.write(payload + "\n")
                print(f"wrote profile data for {len(profiles)} scenario(s) to {args.profile_out}")
        return 0

    records: List[BenchRecord] = []
    for name in _resolve_scenarios(args.scenarios):
        try:
            record = run_bench(
                name, job_count=job_count, seed=seed, cache=args.cache_dir
            )
        except ValueError as error:
            parser.error(str(error))
            return 2  # pragma: no cover - parser.error raises
        record.write(args.output_dir)
        records.append(record)

    print(records_report(records))

    exit_code = 0
    if args.update:
        for record in records:
            if record.cache_hits:
                print(
                    f"baseline NOT updated for {record.scenario}: "
                    f"{record.cache_hits}/{record.runs} runs came from the "
                    "result cache, so the timing does not measure the "
                    "simulator (re-run without --cache-dir)",
                    file=sys.stderr,
                )
                exit_code = 1
                continue
            path = save_baseline(baseline_dir, record)
            print(f"baseline updated: {path}")
    elif args.check:
        print()
        for record in records:
            if record.cache_hits:
                # A cache-served run times JSON loading, not the simulator:
                # it can neither prove nor clear a regression.
                print(
                    f"{record.scenario}: cannot gate — {record.cache_hits}/"
                    f"{record.runs} runs came from the result cache "
                    "(re-run --check without --cache-dir)",
                    file=sys.stderr,
                )
                exit_code = 1
                continue
            comparison = check_record(
                record, directory=baseline_dir, threshold=threshold
            )
            print(comparison.describe())
            if comparison.failed:
                exit_code = 1
        if exit_code:
            print(
                "\nbenchmark regression gate FAILED "
                f"(threshold {threshold * 100.0:.0f}%)",
                file=sys.stderr,
            )
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
