"""The experiment service: an async daemon over a content-addressed result store.

Today's scenario engine is a library plus a CLI: every consumer shells out to
``repro-cli`` and shares one on-disk cache.  This package promotes it to a
long-running *service* so many concurrent clients sweeping overlapping
configuration grids deduplicate work instead of repeating it:

* :mod:`repro.service.store` — the content-addressed result store.  Results
  are keyed by the canonical :class:`~repro.experiments.setup.ExperimentConfig`
  hash, records carry a schema version (old or corrupt records are misses,
  never crashes), writes are atomic and cross-process file-locked, and a
  size budget is enforced by least-recently-used eviction.  The standalone
  engine's :class:`~repro.experiments.engine.ResultCache` is a thin wrapper
  over this store, so serial, parallel, daemon and cached paths all produce
  byte-identical records.
* :mod:`repro.service.protocol` — the newline-delimited JSON wire protocol
  and the ``concise``/``detailed`` response formats shared by daemon and
  client.
* :mod:`repro.service.daemon` — the asyncio daemon.  It owns a process
  worker pool and the store; identical configs submitted by different
  clients coalesce onto one in-flight run, and finished results are served
  straight from the store.  Operations: ``submit``, ``get``, ``list``,
  ``cancel``, ``batch``, ``run_and_wait``, ``status``, ``shutdown``.
* :mod:`repro.service.client` — a thin synchronous client speaking the same
  protocol, used by ``repro-cli client`` and importable directly.

Start a daemon and talk to it::

    repro-cli serve --socket /tmp/repro.sock --workers 4 &
    repro-cli client --socket /tmp/repro.sock status
    repro-cli client --socket /tmp/repro.sock run-and-wait --workload Wm \
        --policy EGS --job-count 40

or programmatically (see ``examples/service_client.py``)::

    from repro.service import ServiceClient

    with ServiceClient(socket_path="/tmp/repro.sock") as client:
        response = client.run_and_wait({"workload": "Wm", "job_count": 40})
        print(response["metrics"])
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ExperimentService
from repro.service.store import ResultStore, SCHEMA_VERSION

__all__ = [
    "ExperimentService",
    "ResultStore",
    "SCHEMA_VERSION",
    "ServiceClient",
    "ServiceError",
]
