"""The wire protocol of the experiment service.

Newline-delimited JSON over a local stream socket: each request is one JSON
object on one line, each response is one JSON object on one line, strictly
in request order per connection.  The protocol is deliberately boring — any
language with a socket and a JSON parser is a client.

Requests
--------
``{"op": <operation>, ...operation fields...}`` with these operations:

=============== ==========================================================
``submit``      ``config``: experiment-config mapping.  Deduplicates
                against the store and against in-flight runs (coalescing).
``get``         ``key`` (or ``config``): look one result up.
``list``        All jobs this daemon knows about.
``cancel``      ``key``: cancel a queued job (running jobs report
                ``cancelled: false`` — workers are never killed mid-run).
``batch``       ``configs``: list of configs; one submit response each.
``run_and_wait``  ``config`` (+ optional ``timeout`` seconds): submit, then
                respond only when the result is ready.
``status``      Pool, queue and store statistics.
``metrics``     Full metrics snapshots: daemon counters and per-operation
                latency histograms, store counters, process registry.
``shutdown``    Stop the daemon after responding.
=============== ==========================================================

Every read operation accepts ``"response_format": "concise" | "detailed"``
(default concise).  Concise responses carry the result digest, wall time
and headline metrics; detailed responses embed the full result record (the
exact cache wire format, byte-identical to a standalone ``repro-cli`` run).

Responses
---------
``{"ok": true, "op": ..., ...}`` or
``{"ok": false, "op": ..., "error": {"code": ..., "message": ...}}``.  A
request's ``"id"`` field, when present, is echoed back verbatim so clients
may correlate pipelined requests.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

#: Protocol revision, reported by ``status`` and checked by nobody yet:
#: clients are expected to tolerate unknown response fields.
PROTOCOL_VERSION = 1

#: Operations the daemon understands.
OPERATIONS = (
    "submit",
    "get",
    "list",
    "cancel",
    "batch",
    "run_and_wait",
    "checkpointed",
    "status",
    "metrics",
    "shutdown",
)

#: Recognised ``response_format`` values.
RESPONSE_FORMATS = ("concise", "detailed")

#: Summary statistics a concise response carries; the full summary (and the
#: per-job records) remain available via ``response_format: detailed``.
CONCISE_METRIC_KEYS = (
    "jobs",
    "unfinished",
    "mean_execution_time",
    "mean_response_time",
    "mean_average_allocation",
    "peak_utilization",
    "grow_messages",
    "shrink_messages",
)


def encode(message: Dict[str, Any]) -> bytes:
    """One protocol message as one newline-terminated JSON line."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one protocol line; raises :class:`ValueError` on garbage."""
    message = json.loads(line.decode("utf-8"))
    if not isinstance(message, dict):
        raise ValueError("protocol messages must be JSON objects")
    return message


def error_response(
    op: Optional[str], code: str, message: str, **extra: Any
) -> Dict[str, Any]:
    """A failure response: ``ok: false`` plus a machine-readable code."""
    response: Dict[str, Any] = {
        "ok": False,
        "op": op,
        "error": {"code": code, "message": message},
    }
    response.update(extra)
    return response


def ok_response(op: str, **fields: Any) -> Dict[str, Any]:
    """A success response carrying *fields*."""
    response: Dict[str, Any] = {"ok": True, "op": op}
    response.update(fields)
    return response


def response_format(request: Dict[str, Any]) -> str:
    """The validated ``response_format`` of *request* (default concise)."""
    value = request.get("response_format", "concise")
    if value not in RESPONSE_FORMATS:
        raise ValueError(
            f"unknown response_format {value!r}; expected one of {RESPONSE_FORMATS}"
        )
    return value


def metrics_digest(record: Dict[str, Any]) -> str:
    """SHA-256 over a result record's metrics, the service's result identity.

    Matches the per-label digesting of :func:`repro.bench.runner.metrics_digest`
    (canonical JSON, sorted keys), so a daemon result and a standalone
    ``repro-cli run`` of the same configuration digest identically exactly
    when they simulated the same outcomes.
    """
    return hashlib.sha256(
        json.dumps(record["metrics"], sort_keys=True).encode("utf-8")
    ).hexdigest()


def result_payload(record: Dict[str, Any], fmt: str) -> Dict[str, Any]:
    """The response fields describing one finished result record.

    Concise: digest, simulated time, truncation flag and the headline
    summary statistics (:data:`CONCISE_METRIC_KEYS`).  Detailed: all of
    that plus the complete record — config, per-job metrics, everything the
    cache stores.
    """
    from repro.metrics.collector import ExperimentMetrics

    payload: Dict[str, Any] = {
        "digest": metrics_digest(record),
        "simulated_time": record.get("simulated_time"),
        "truncated": record.get("truncated", False),
    }
    if fmt == "detailed":
        payload["record"] = record
        return payload
    summary = ExperimentMetrics.from_dict(record["metrics"]).summary()
    payload["metrics"] = {
        key: summary[key] for key in CONCISE_METRIC_KEYS if key in summary
    }
    return payload
