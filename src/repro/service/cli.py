"""The ``repro-cli serve`` and ``repro-cli client`` subcommands.

Kept in the service package so :mod:`repro.experiments.cli` stays a thin
shell: it calls :func:`add_serve_parser` / :func:`add_client_parser` while
building its parser and routes the parsed namespaces to :func:`cmd_serve` /
:func:`cmd_client`.

Examples
--------
Start a daemon on the default per-user socket with four workers and a
512 MiB store budget::

    repro-cli serve --workers 4 --store-budget 512M

Talk to it::

    repro-cli client status
    repro-cli client metrics
    repro-cli client run-and-wait --workload Wm --policy EGS --job-count 40
    repro-cli client submit --workload Wmr --policy FPSMA --seeds 0 1 2 3
    repro-cli client list --format detailed
    repro-cli client cancel <key>
    repro-cli client shutdown
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import default_socket_path

#: client operations that take the experiment-config flags.
_CONFIG_OPS = ("submit", "run-and-wait")


def _add_endpoint_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help=f"Unix socket of the daemon (default: $REPRO_SERVICE_SOCKET or "
        f"{default_socket_path()})",
    )
    parser.add_argument(
        "--host", default=None, help="serve/connect over localhost TCP instead"
    )
    parser.add_argument(
        "--port", type=int, default=0, help="TCP port (with --host; 0 picks one)"
    )


def _add_config_options(parser: argparse.ArgumentParser) -> None:
    """Experiment-config flags shared by ``submit`` and ``run-and-wait``."""
    parser.add_argument("--name", default="service-run", help="configuration name")
    parser.add_argument(
        "--workload",
        default="Wm",
        help="Wm, Wmr, W'm, W'mr or a trace reference ('trace:das3-synthetic?load_factor=2')",
    )
    parser.add_argument("--policy", default="FPSMA", help="malleability policy, or 'none'")
    parser.add_argument("--approach", default="PRA", help="PRA or PWA")
    parser.add_argument("--placement", default="WF", help="placement policy (see list-policies)")
    parser.add_argument("--job-count", type=int, default=300)
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[0],
        metavar="SEED",
        help="one submission per seed (a one-flag sweep); run-and-wait requires exactly one",
    )
    parser.add_argument("--threshold", type=int, default=0, help="grow threshold")
    parser.add_argument(
        "--time-limit", type=float, default=None, help="simulated-time safety bound"
    )
    parser.add_argument(
        "--fault", default=None, help="fault-model reference ('fault:churn?mtbf=3600')"
    )


def _configs_from(args: argparse.Namespace) -> List[Dict[str, Any]]:
    """The experiment-config mappings a client namespace describes."""
    policy: Optional[str] = args.policy
    if policy is not None and policy.lower() in ("none", "off"):
        policy = None
    configs: List[Dict[str, Any]] = []
    for seed in args.seeds:
        config: Dict[str, Any] = {
            "name": args.name,
            "workload": args.workload,
            "job_count": args.job_count,
            "malleability_policy": policy,
            "approach": args.approach,
            "placement_policy": args.placement,
            "grow_threshold": args.threshold,
            "seed": seed,
        }
        if args.time_limit is not None:
            config["time_limit"] = float(args.time_limit)
        if args.fault is not None:
            config["fault_model"] = args.fault
        configs.append(config)
    return configs


# -- parser wiring -----------------------------------------------------------


def add_serve_parser(subparsers: Any) -> argparse.ArgumentParser:
    """Register the ``serve`` subcommand on *subparsers*."""
    serve = subparsers.add_parser(
        "serve",
        help="run the experiment daemon (submit/get/list/cancel/batch/run_and_wait)",
    )
    _add_endpoint_options(serve)
    serve.add_argument(
        "--workers", type=int, default=2, help="concurrent simulation workers"
    )
    serve.add_argument(
        "--store-dir",
        metavar="DIR",
        default=None,
        help="result-store directory (default: the repro result cache)",
    )
    serve.add_argument(
        "--store-budget",
        metavar="SIZE",
        default=None,
        help="LRU-evict the store beyond this size ('512M', '2G'; "
        "default $REPRO_STORE_BUDGET or unbounded)",
    )
    return serve


def add_client_parser(subparsers: Any) -> argparse.ArgumentParser:
    """Register the ``client`` subcommand (with its operation tree)."""
    client = subparsers.add_parser(
        "client", help="talk to a running experiment daemon"
    )
    _add_endpoint_options(client)
    client.add_argument(
        "--format",
        choices=("concise", "detailed"),
        default="concise",
        help="response format for read operations",
    )
    ops = client.add_subparsers(dest="client_op", required=True, metavar="OPERATION")
    ops.add_parser("status", help="daemon, pool and store statistics")
    ops.add_parser(
        "metrics", help="full metrics snapshots (counters, latency histograms)"
    )
    ops.add_parser("list", help="every job the daemon knows about")
    get = ops.add_parser("get", help="look one result up by key")
    get.add_argument("key", help="content key (as printed by submit/list)")
    cancel = ops.add_parser("cancel", help="cancel a queued job")
    cancel.add_argument("key", help="content key of the job")
    ops.add_parser("shutdown", help="stop the daemon cleanly")
    submit = ops.add_parser(
        "submit", help="submit configuration(s) without waiting (one per --seeds value)"
    )
    _add_config_options(submit)
    wait = ops.add_parser(
        "run-and-wait", help="submit one configuration and block for its result"
    )
    _add_config_options(wait)
    wait.add_argument(
        "--timeout", type=float, default=None, help="give up after this many seconds"
    )
    return client


# -- command implementations --------------------------------------------------


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the daemon until shutdown; returns a process exit code."""
    from repro.experiments.engine import default_cache_dir
    from repro.obs.log import setup_logging
    from repro.service.daemon import ExperimentService
    from repro.service.store import ResultStore

    setup_logging(quiet=getattr(args, "quiet", False))
    try:
        store = ResultStore(
            args.store_dir if args.store_dir else default_cache_dir(),
            budget_bytes=args.store_budget,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    service = ExperimentService(store, workers=args.workers)

    def announce(address: str) -> None:
        print(
            f"repro service listening on {address} "
            f"(workers={args.workers}, store={store.directory})",
            flush=True,
        )

    if args.host is not None:
        service.run(host=args.host, port=args.port, on_ready=announce)
    else:
        service.run(socket_path=args.socket, on_ready=announce)
    print("repro service stopped", flush=True)
    return 0


def _client_from(args: argparse.Namespace) -> ServiceClient:
    if args.host is not None:
        return ServiceClient(host=args.host, port=args.port)
    return ServiceClient(socket_path=args.socket)


def cmd_client(args: argparse.Namespace) -> int:
    """Execute one client operation; prints the JSON response(s)."""
    if args.host is not None and not args.port:
        # Port 0 means "pick one" for serve; for a client it is never a
        # daemon to connect to.
        print(
            "error: client --host requires --port (the port 'repro-cli serve' printed)",
            file=sys.stderr,
        )
        return 2
    try:
        with _client_from(args) as client:
            if args.client_op == "status":
                response: Any = client.status()
            elif args.client_op == "metrics":
                response = client.metrics()
            elif args.client_op == "list":
                response = client.list(response_format=args.format)
            elif args.client_op == "get":
                response = client.get(args.key, response_format=args.format)
            elif args.client_op == "cancel":
                response = client.cancel(args.key)
            elif args.client_op == "shutdown":
                response = client.shutdown()
            elif args.client_op == "submit":
                configs = _configs_from(args)
                if len(configs) == 1:
                    response = client.submit(configs[0], response_format=args.format)
                else:
                    response = client.batch(configs, response_format=args.format)
            elif args.client_op == "run-and-wait":
                configs = _configs_from(args)
                if len(configs) != 1:
                    print("error: run-and-wait takes exactly one seed", file=sys.stderr)
                    return 2
                response = client.run_and_wait(
                    configs[0], timeout=args.timeout, response_format=args.format
                )
            else:  # pragma: no cover - argparse enforces the choices
                print(f"error: unknown operation {args.client_op!r}", file=sys.stderr)
                return 2
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except (OSError, ConnectionError) as error:
        print(
            f"error: cannot reach the daemon ({error}); is 'repro-cli serve' running?",
            file=sys.stderr,
        )
        return 1
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0
