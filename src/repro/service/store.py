"""Content-addressed result store: the persistence layer of the service.

One record per key, one JSON file per record, addressed purely by content
hash — for experiment results the key is
:func:`repro.experiments.engine.config_key`, a SHA-256 over the canonical
configuration plus the code version, so the *name* of a result is a proof of
*what* produced it.  The store itself is agnostic: it maps ``key: str`` to
``record: dict`` and never interprets the payload, which keeps it free of
import cycles with the experiments layer (whose
:class:`~repro.experiments.engine.ResultCache` wraps it).

Guarantees
----------
* **Atomic writes.**  Records are written to a temporary sibling and
  ``os.replace``\\ d into place; a reader never observes a partial file.
* **Cross-process locking.**  Mutations (put, evict, clear) hold an
  exclusive ``flock`` on a sidecar lock file; reads take a shared lock.
  Many daemons, sweeps and CLIs can share one store directory.
* **Schema versioning.**  Every file embeds :data:`SCHEMA_VERSION`.  A
  record written by an older (or newer) schema, a corrupt file, or a
  non-dict payload is treated as a *miss* and silently rewritten by the
  next put — old stores degrade to cold ones, they never crash a sweep.
* **Bounded size.**  With a byte budget configured, a put that pushes the
  store over the budget evicts least-recently-*used* records (access times
  are tracked via file mtime, bumped on every hit) until it fits again.
  The record just written is never evicted: the budget bounds the steady
  state, not a single oversized result.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

try:  # POSIX; the only platform the test/CI matrix runs on.
    import fcntl
except ImportError:  # pragma: no cover - Windows fallback: locking is a no-op
    fcntl = None  # type: ignore[assignment]

#: Version of the on-disk record envelope.  Bump whenever the meaning or
#: shape of stored records changes incompatibly; every record written under
#: a different version is invisible (a miss) to this code.
SCHEMA_VERSION = 1

#: Environment variable bounding the default store size (e.g. ``512M``).
STORE_BUDGET_ENV = "REPRO_STORE_BUDGET"

_SIZE_SUFFIXES = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30, "T": 1 << 40}


def parse_size(text: Union[str, int, float, None]) -> Optional[int]:
    """Parse a human byte size (``"512M"``, ``"2G"``, ``4096``) to bytes.

    ``None`` and empty strings parse to ``None`` (no budget).  Raises
    :class:`ValueError` on garbage or non-positive sizes, so a typo'd budget
    fails loudly instead of silently disabling eviction.
    """
    if text is None:
        return None
    if isinstance(text, (int, float)):
        value = int(text)
    else:
        stripped = text.strip().upper()
        if not stripped:
            return None
        multiplier = 1
        if stripped[-1] in ("B",):
            stripped = stripped[:-1]
        if stripped and stripped[-1] in _SIZE_SUFFIXES:
            multiplier = _SIZE_SUFFIXES[stripped[-1]]
            stripped = stripped[:-1]
        try:
            value = int(float(stripped) * multiplier)
        except ValueError:
            raise ValueError(f"cannot parse size {text!r}") from None
    if value <= 0:
        raise ValueError(f"size must be positive, got {text!r}")
    return value


class FileLock:
    """A cross-process advisory lock over one file, via ``flock``.

    Usable as a context manager; *shared* locks (many readers) and
    *exclusive* locks (one writer) are both supported.  On platforms
    without :mod:`fcntl` the lock degrades to a no-op — single-process
    correctness is unaffected, only cross-process mutual exclusion is lost.
    """

    def __init__(self, path: Union[str, Path], *, shared: bool = False) -> None:
        self.path = Path(path)
        self.shared = shared
        self._handle = None

    def acquire(self) -> None:
        if self._handle is not None:
            raise RuntimeError("lock is already held")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(self.path, "a+")
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_SH if self.shared else fcntl.LOCK_EX)
        self._handle = handle

    def release(self) -> None:
        handle, self._handle = self._handle, None
        if handle is None:
            return
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        handle.close()

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()


@dataclass
class StoreStats:
    """Counters and sizes of one :class:`ResultStore`.

    ``hits``/``misses``/``invalidations``/``evictions``/``puts`` are
    per-process counters (they describe this store *object*, not the
    directory's lifetime); ``entries``/``total_bytes`` are measured from
    disk at call time and therefore reflect every process sharing the
    directory.
    """

    entries: int
    total_bytes: int
    budget_bytes: Optional[int]
    hits: int
    misses: int
    invalidations: int
    evictions: int
    puts: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "budget_bytes": self.budget_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "puts": self.puts,
        }


class ResultStore:
    """Content-addressed ``key -> record`` store over one directory.

    Parameters
    ----------
    directory:
        Where the records live.  Created on first write.
    budget_bytes:
        Soft size bound in bytes (or a string like ``"256M"``); ``None``
        reads ``$REPRO_STORE_BUDGET`` and falls back to unbounded.
        Exceeding the budget triggers least-recently-used eviction on the
        next put.
    """

    #: File name of the sidecar lock; never counted as a record.
    LOCK_NAME = ".store.lock"

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        budget_bytes: Union[str, int, None] = None,
    ) -> None:
        from repro.obs.metrics import MetricsRegistry

        self.directory = Path(directory)
        if budget_bytes is None:
            budget_bytes = os.environ.get(STORE_BUDGET_ENV) or None
        self.budget_bytes = parse_size(budget_bytes)
        #: Per-instance metrics registry (see :mod:`repro.obs.metrics`): the
        #: counters describe this store *object*, matching the pre-registry
        #: plain-int semantics, and the daemon's ``metrics`` op exposes the
        #: whole snapshot.  The historical attribute names (``store.hits``
        #: etc.) remain available as read-only int properties.
        self.metrics = MetricsRegistry()
        self._hits = self.metrics.counter("store.hits")
        self._misses = self.metrics.counter("store.misses")
        self._invalidations = self.metrics.counter("store.invalidations")
        self._evictions = self.metrics.counter("store.evictions")
        self._puts = self.metrics.counter("store.puts")

    # -- counter back-compat ---------------------------------------------------

    @property
    def hits(self) -> int:
        """Valid records returned by :meth:`get` (this instance)."""
        return self._hits.value

    @property
    def misses(self) -> int:
        """Lookups that returned ``None`` (this instance)."""
        return self._misses.value

    @property
    def invalidations(self) -> int:
        """Misses caused by corrupt or schema-incompatible files."""
        return self._invalidations.value

    @property
    def evictions(self) -> int:
        """Records deleted by the LRU budget enforcement."""
        return self._evictions.value

    @property
    def puts(self) -> int:
        """Records written by :meth:`put` (this instance)."""
        return self._puts.value

    # -- paths ---------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """The file a record for *key* lives in (existing or not)."""
        return self.directory / f"{key}.json"

    def _lock(self, *, shared: bool = False) -> FileLock:
        return FileLock(self.directory / self.LOCK_NAME, shared=shared)

    def _entries(self) -> List[Tuple[Path, os.stat_result]]:
        """Every record file with its stat, skipping vanished ones."""
        entries: List[Tuple[Path, os.stat_result]] = []
        if not self.directory.is_dir():
            return entries
        for path in self.directory.glob("*.json"):
            try:
                entries.append((path, path.stat()))
            except OSError:
                continue  # evicted or replaced under us: not an error
        return entries

    # -- read path -----------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The record stored under *key*, or ``None`` on a miss.

        Corrupt files and records written under a different
        :data:`SCHEMA_VERSION` count as misses (and as ``invalidations`` in
        the stats); a hit bumps the record's mtime, which is what the LRU
        eviction policy orders by.
        """
        path = self.path_for(key)
        try:
            with self._lock(shared=True):
                text = path.read_text(encoding="utf-8")
        except OSError:
            self._misses.inc()
            return None
        try:
            envelope = json.loads(text)
        except ValueError:
            self._misses.inc()
            self._invalidations.inc()
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("schema_version") != SCHEMA_VERSION
            or not isinstance(envelope.get("record"), dict)
        ):
            # Written by another schema generation (or not by us at all):
            # invisible, and rewritten in place by the next put.
            self._misses.inc()
            self._invalidations.inc()
            return None
        try:
            os.utime(path)  # LRU bookkeeping: this record was just used
        except OSError:
            pass
        self._hits.inc()
        return envelope["record"]

    def contains(self, key: str) -> bool:
        """Whether a *valid* record for *key* exists (without bumping LRU)."""
        path = self.path_for(key)
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return False
        return (
            isinstance(envelope, dict)
            and envelope.get("schema_version") == SCHEMA_VERSION
            and isinstance(envelope.get("record"), dict)
        )

    def keys(self) -> Iterator[str]:
        """The keys currently on disk (schema validity not checked)."""
        for path, _ in self._entries():
            yield path.stem

    # -- write path ----------------------------------------------------------

    def put(self, key: str, record: Dict[str, Any]) -> Path:
        """Persist *record* under *key*; returns the file written.

        The write is atomic (temp file + ``os.replace``) and holds the
        store's exclusive lock together with any eviction it triggers, so
        concurrent writers interleave cleanly.
        """
        path = self.path_for(key)
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"schema_version": SCHEMA_VERSION, "record": record, "stored_at": time.time()},
            sort_keys=True,
        )
        with self._lock():
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_text(payload, encoding="utf-8")
            os.replace(tmp, path)
            self._puts.inc()
            if self.budget_bytes is not None:
                self._evict_locked(keep=path)
        return path

    def delete(self, key: str) -> bool:
        """Remove the record for *key*; ``True`` if one existed."""
        with self._lock():
            try:
                self.path_for(key).unlink()
                return True
            except OSError:
                return False

    def clear(self) -> int:
        """Delete every record; returns the number of files removed."""
        removed = 0
        with self._lock():
            for path, _ in self._entries():
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def _evict_locked(self, keep: Optional[Path] = None) -> int:
        """Evict least-recently-used records until the budget holds.

        Caller must hold the exclusive lock.  *keep* (the record that
        triggered the eviction) is never removed, so one oversized record
        cannot evict itself into a livelock.
        """
        assert self.budget_bytes is not None
        entries = self._entries()
        total = sum(stat.st_size for _, stat in entries)
        if total <= self.budget_bytes:
            return 0
        evicted = 0
        # Oldest access first; the freshly written record is exempt.  Ties on
        # mtime are broken by path: filesystems with coarse mtime granularity
        # routinely stamp several records identically, and without a total
        # order the victim choice would differ between hosts (and between
        # runs), defeating reproducible cache behaviour.
        entries.sort(key=lambda pair: (pair[1].st_mtime, str(pair[0])))
        for path, stat in entries:
            if total <= self.budget_bytes:
                break
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= stat.st_size
            evicted += 1
        self._evictions.inc(evicted)
        return evicted

    # -- stats ---------------------------------------------------------------

    def stats(self) -> StoreStats:
        """Sizes (measured now) and this process's counters."""
        entries = self._entries()
        return StoreStats(
            entries=len(entries),
            total_bytes=sum(stat.st_size for _, stat in entries),
            budget_bytes=self.budget_bytes,
            hits=self.hits,
            misses=self.misses,
            invalidations=self.invalidations,
            evictions=self.evictions,
            puts=self.puts,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ResultStore {str(self.directory)!r} budget={self.budget_bytes}>"
