"""The experiment daemon: an asyncio service over the scenario engine.

One long-running process owns a worker pool and a
:class:`~repro.service.store.ResultStore`; any number of clients connect
over a local socket and speak the newline-delimited JSON protocol of
:mod:`repro.service.protocol`.  The daemon's contract:

* **Content addressing.**  A submission is identified by
  :func:`repro.experiments.engine.config_key` — the SHA-256 of its
  canonical configuration plus the code version.  Identical configs are the
  *same job* no matter who submits them.
* **Deduplication.**  A submit first consults the store (results computed
  by any previous run, daemon or standalone sweep), then the in-flight
  table: a config that is already queued or running *coalesces* — the new
  client attaches to the existing run instead of spawning a duplicate
  worker.  N concurrent submits of one config execute exactly once.
* **Byte identity.**  Workers execute
  :func:`repro.experiments.engine._execute_record`, the exact entry point
  of the parallel sweep engine, and results travel as the exact cache wire
  format — a daemon result is byte-identical to a ``repro-cli run`` of the
  same config.
* **Honest cancellation.**  Queued jobs cancel immediately; running jobs
  are never killed mid-simulation (results are deterministic and nearly
  paid for) — ``cancel`` reports ``cancelled: false`` for them.

The daemon is deliberately single-loop: all bookkeeping (job table, stats,
state transitions) happens on the event loop, so no locks are needed around
the coalescing decision — two "simultaneous" submits of one config are
serialised by the loop itself.  The one blocking dependency — the store's
flock-guarded file I/O, which another process can stall by holding the
store lock — runs on a dedicated single thread (:meth:`_store_call`), so a
slow store never freezes the event loop, and store operations stay
serialised relative to each other.
"""

from __future__ import annotations

import asyncio
import os
import sys
import tempfile
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import repro
from repro.experiments.engine import _execute_record, config_key
from repro.experiments.setup import ExperimentConfig
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.service import protocol
from repro.service.store import ResultStore

_log = get_logger("service")

#: Byte limit per protocol line (requests *and* responses): generous enough
#: for a detailed 300-job record, small enough to bound a hostile client.
LINE_LIMIT = 1 << 24

#: Environment variable naming the default daemon socket path.
SOCKET_ENV = "REPRO_SERVICE_SOCKET"

#: Job lifecycle states, as they appear on the wire.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States in which a job occupies (or will occupy) a worker.
ACTIVE_STATES = (QUEUED, RUNNING)


def _execute_checkpointed(
    config_data: Dict[str, Any], every: float, directory: str
) -> Dict[str, Any]:
    """Worker entry point of the ``checkpointed`` operation.

    Runs one configuration through
    :func:`repro.checkpoint.runner.run_checkpointed`, persisting a native
    checkpoint under *directory* every *every* simulated seconds.  If the
    directory already holds checkpoints — a previous attempt died mid-run —
    the run resumes from the most advanced restorable one instead of
    starting over; on completion the checkpoints are deleted.  Returns a
    JSON-shaped windowed summary (streaming metrics, no per-job arrays).
    """
    from repro.checkpoint.restore import restore_run
    from repro.checkpoint.envelope import load_checkpoint
    from repro.checkpoint.runner import run_checkpointed

    config = ExperimentConfig.from_dict(config_data)
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    best: Optional[Tuple[float, Dict[str, Any]]] = None
    for candidate in target.glob("state-*.json"):
        try:
            data = load_checkpoint(candidate)
            at = float.fromhex(data["time"])
        except Exception:
            continue
        if best is None or at > best[0]:
            best = (at, data)
    run = None
    resumed_at: Optional[float] = None
    if best is not None:
        try:
            run = restore_run(best[1])
            resumed_at = best[0]
        except Exception:
            run = None
    out = run_checkpointed(
        config, checkpoint_every=float(every), path=target / "state.json", run=run
    )
    if out["all_done"]:
        for old in target.glob("state-*.json"):
            try:
                old.unlink()
            except OSError:
                pass
    window = out["window"]
    return {
        "config": config.to_dict(),
        "jobs": int(window.jobs),
        "digest": window.digest,
        "all_done": bool(out["all_done"]),
        "simulated_time": float(out["simulated_time"]),
        "events_processed": int(out["events_processed"]),
        "checkpoints": int(out["checkpoints"]),
        "resumed_at": resumed_at,
    }


class _BadRequest(ValueError):
    """A client-side request error; reported with code ``bad_request``."""


def default_socket_path() -> Path:
    """``$REPRO_SERVICE_SOCKET`` or a per-user path under the temp dir."""
    override = os.environ.get(SOCKET_ENV)
    if override:
        return Path(override)
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return Path(tempfile.gettempdir()) / f"repro-service-{uid}.sock"


@dataclass
class ServiceJob:
    """One entry of the daemon's job table."""

    key: str
    config: Dict[str, Any]
    name: str
    state: str = QUEUED
    #: How the daemon first learned the answer: ``spawned`` (a worker ran
    #: it), ``store`` (read back from the result store).
    source: str = "spawned"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    record: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    cancel_requested: bool = False
    task: Optional["asyncio.Task[None]"] = None
    done: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def wall_time(self) -> Optional[float]:
        """Worker wall-clock seconds (``None`` unless this daemon ran it)."""
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def summary(self) -> Dict[str, Any]:
        """The fields every job listing carries."""
        return {
            "key": self.key,
            "name": self.name,
            "state": self.state,
            "source": self.source,
            "submitted_at": self.submitted_at,
            "wall_time": self.wall_time,
            "error": self.error,
        }


class ExperimentService:
    """The daemon: job table, worker pool and store behind a local socket.

    Parameters
    ----------
    store:
        The result store (a :class:`~repro.service.store.ResultStore` or a
        directory for one).
    workers:
        Concurrent simulations; also the size of the default process pool.
    runner:
        The callable workers execute, ``(config_dict) -> record_dict``.
        Defaults to the sweep engine's
        :func:`~repro.experiments.engine._execute_record`; tests inject
        controllable stand-ins here.
    pool:
        An :class:`~concurrent.futures.Executor` to run *runner* on.
        ``None`` creates a :class:`~concurrent.futures.ProcessPoolExecutor`
        of *workers* processes on startup.
    tracer:
        Optional :class:`repro.obs.trace.Tracer` recording daemon-side
        ``span`` records (one per dispatched operation, with wall-clock
        milliseconds — daemon traces are operational, not deterministic)
        and ``cache`` records for every submit-path store consultation.
    """

    def __init__(
        self,
        store: Union[ResultStore, str, Path],
        *,
        workers: int = 2,
        runner: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
        pool: Optional[Executor] = None,
        tracer: Optional[Any] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.store = store if isinstance(store, ResultStore) else ResultStore(store)
        self.workers = workers
        self._runner = runner if runner is not None else _execute_record
        self._pool: Optional[Executor] = pool
        self._owns_pool = pool is None
        self.jobs: Dict[str, ServiceJob] = {}
        #: Per-daemon metrics registry; the historical attribute names
        #: (``executions``, ``coalesced``, ``store_served``, ``requests``)
        #: stay available as read-only int properties, and ``status`` keeps
        #: reporting them as the same wire fields.  The ``metrics`` op
        #: exposes the full snapshot (plus per-op latency histograms).
        self.metrics = MetricsRegistry()
        self._executions = self.metrics.counter("service.executions")
        self._coalesced = self.metrics.counter("service.coalesced")
        self._store_served = self.metrics.counter("service.store_served")
        self._requests = self.metrics.counter("service.requests")
        self.tracer = tracer
        self.started_at: Optional[float] = None
        self.address: Optional[str] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._socket_path: Optional[Path] = None
        self._stop: Optional[asyncio.Event] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._store_io: Optional[ThreadPoolExecutor] = None

    # -- counter back-compat ---------------------------------------------------

    @property
    def executions(self) -> int:
        """Worker runs this daemon actually executed."""
        return self._executions.value

    @property
    def coalesced(self) -> int:
        """Submissions attached to an already-active run of the same config."""
        return self._coalesced.value

    @property
    def store_served(self) -> int:
        """Submissions answered straight from the result store."""
        return self._store_served.value

    @property
    def requests(self) -> int:
        """Protocol requests dispatched (including invalid ones)."""
        return self._requests.value

    # -- lifecycle -----------------------------------------------------------

    async def start(
        self,
        *,
        socket_path: Union[str, Path, None] = None,
        host: Optional[str] = None,
        port: int = 0,
    ) -> str:
        """Bind and start serving; returns the address actually bound.

        Either *socket_path* (a Unix domain socket, the default transport)
        or *host*/*port* (localhost TCP) — a stale socket file at
        *socket_path* is replaced.
        """
        self._stop = asyncio.Event()
        self._slots = asyncio.Semaphore(self.workers)
        if self._store_io is None:
            self._store_io = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-store-io"
            )
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        self.started_at = time.time()
        if host is not None:
            self._server = await asyncio.start_server(
                self._handle, host, port, limit=LINE_LIMIT
            )
            bound = self._server.sockets[0].getsockname()
            self.address = f"{bound[0]}:{bound[1]}"
        else:
            path = Path(socket_path) if socket_path is not None else default_socket_path()
            path.parent.mkdir(parents=True, exist_ok=True)
            if path.exists():
                path.unlink()
            self._server = await asyncio.start_unix_server(
                self._handle, path=str(path), limit=LINE_LIMIT
            )
            self._socket_path = path
            self.address = str(path)
        _log.info("daemon listening on %s (%d workers)", self.address, self.workers)
        return self.address

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` request (or :meth:`request_shutdown`)."""
        assert self._stop is not None, "start() must run first"
        await self._stop.wait()
        await self.aclose()

    def request_shutdown(self) -> None:
        """Ask the serve loop to stop (thread-unsafe; use from the loop)."""
        if self._stop is not None:
            self._stop.set()

    async def aclose(self) -> None:
        """Stop accepting, cancel queued jobs, drain running ones, close."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        active = [job.task for job in self.jobs.values() if job.task is not None]
        for job in self.jobs.values():
            if job.state == QUEUED and job.task is not None:
                job.cancel_requested = True
                job.task.cancel()
        if active:
            await asyncio.gather(*active, return_exceptions=True)
        for job in self.jobs.values():
            # A task cancelled before its first loop step never entered
            # _run_job, so its finally block never ran: finalize it here.
            self._finalize_unstarted_cancel(job)
        if self._store_io is not None:
            self._store_io.shutdown(wait=True)
            self._store_io = None
        if self._pool is not None and self._owns_pool:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._socket_path is not None:
            try:
                self._socket_path.unlink()
            except OSError:
                pass
            self._socket_path = None

    def run(
        self,
        *,
        socket_path: Union[str, Path, None] = None,
        host: Optional[str] = None,
        port: int = 0,
        on_ready: Optional[Callable[[str], None]] = None,
    ) -> None:
        """Blocking entry point: serve until shutdown (or SIGINT/SIGTERM).

        *on_ready* is called with the bound address once the daemon accepts
        connections — the CLI prints it, tests use it to rendezvous.
        """

        async def main() -> None:
            address = await self.start(socket_path=socket_path, host=host, port=port)
            loop = asyncio.get_running_loop()
            try:
                import signal

                for signum in (signal.SIGINT, signal.SIGTERM):
                    loop.add_signal_handler(signum, self.request_shutdown)
            except (ImportError, NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without signal handlers
            if on_ready is not None:
                on_ready(address)
            await self.serve_until_shutdown()

        asyncio.run(main())

    # -- connection handling -------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: request lines in, response lines out."""
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        protocol.encode(
                            protocol.error_response(None, "oversized", "request line too long")
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self.dispatch_line(line)
                writer.write(protocol.encode(response))
                await writer.drain()
                if response.get("op") == "shutdown" and response.get("ok"):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-conversation; its jobs keep running
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def dispatch_line(self, line: bytes) -> Dict[str, Any]:
        """Decode and dispatch one request line (never raises)."""
        try:
            request = protocol.decode(line)
        except ValueError as error:
            return protocol.error_response(None, "bad_request", str(error))
        return await self.dispatch(request)

    async def dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Route one request to its operation handler (never raises)."""
        self._requests.inc()
        op = request.get("op")
        handler = {
            "submit": self._op_submit,
            "get": self._op_get,
            "list": self._op_list,
            "cancel": self._op_cancel,
            "batch": self._op_batch,
            "run_and_wait": self._op_run_and_wait,
            "checkpointed": self._op_checkpointed,
            "status": self._op_status,
            "metrics": self._op_metrics,
            "shutdown": self._op_shutdown,
        }.get(op)
        if handler is None:
            self.metrics.counter("service.unknown_ops").inc()
            return self._echo_id(
                request,
                protocol.error_response(
                    op if isinstance(op, str) else None,
                    "unknown_op",
                    f"unknown operation {op!r}; expected one of {protocol.OPERATIONS}",
                ),
            )
        began = time.monotonic()
        try:
            response = await handler(request)
        except asyncio.CancelledError:
            raise
        except _BadRequest as error:  # malformed request field: client error
            response = protocol.error_response(op, "bad_request", str(error))
        except Exception as error:  # a handler bug must not kill the daemon
            _log.error("operation %s failed: %s: %s", op, type(error).__name__, error)
            response = protocol.error_response(
                op, "internal", f"{type(error).__name__}: {error}"
            )
        elapsed = time.monotonic() - began
        # Wall-clock op latency: includes any await on workers/store, which
        # is exactly what a client of this op experienced.
        self.metrics.histogram(f"service.op.{op}.seconds").observe(elapsed)
        tracer = self.tracer
        if tracer is not None:
            tracer.record(
                "span", op=str(op), ms=elapsed * 1000.0, ok=bool(response.get("ok"))
            )
        return self._echo_id(request, response)

    @staticmethod
    def _echo_id(request: Dict[str, Any], response: Dict[str, Any]) -> Dict[str, Any]:
        if "id" in request:
            response["id"] = request["id"]
        return response

    # -- request plumbing ----------------------------------------------------

    @staticmethod
    def _response_format(request: Dict[str, Any]) -> str:
        """The request's validated ``response_format``, as a client error."""
        try:
            return protocol.response_format(request)
        except ValueError as error:
            raise _BadRequest(str(error)) from None

    def _parse_config(self, request: Dict[str, Any]) -> Tuple[str, Dict[str, Any]]:
        """Validate the request's ``config`` into ``(key, canonical dict)``.

        Runs the full :class:`ExperimentConfig` validation, so a typo'd
        policy name fails here — at submit time, with the registered names
        listed — not inside a worker.
        """
        data = request.get("config")
        if not isinstance(data, dict):
            raise ValueError("'config' must be a mapping of experiment-config fields")
        # Strict parse: a typo'd field name in a submit request fails here
        # with the valid fields listed, instead of being silently dropped.
        config = ExperimentConfig.from_fields(data)
        return config_key(config), config.to_dict()

    # -- the submit path (shared by submit/batch/run_and_wait) ---------------

    async def _store_call(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run one blocking store operation off the event loop.

        The store's file I/O sits behind a cross-process ``flock`` — another
        process holding the lock (a parallel sweep mid-eviction, say) would
        otherwise stall the entire event loop and freeze every connection.
        A single dedicated thread keeps store operations serialised
        relative to each other.
        """
        assert self._store_io is not None, "start() must run first"
        return await asyncio.get_running_loop().run_in_executor(
            self._store_io, fn, *args
        )

    def _table_lookup(self, key: str) -> Optional[Tuple[ServiceJob, str]]:
        """Resolve *key* against the in-memory job table, if it can be."""
        job = self.jobs.get(key)
        if job is not None and job.state in ACTIVE_STATES:
            self._coalesced.inc()
            return job, "attached"
        if job is not None and job.state == DONE:
            return job, "session"
        return None

    async def _submit_config(
        self, key: str, config: Dict[str, Any]
    ) -> Tuple[ServiceJob, str]:
        """Dedup one submission; returns ``(job, how)``.

        ``how`` is ``"attached"`` (coalesced onto an active run),
        ``"session"`` (already finished in this daemon), ``"store"`` (served
        from the result store) or ``"spawned"`` (a fresh worker run).  Table
        bookkeeping happens synchronously on the event loop; the one await
        (the off-loop store read) is followed by a re-check, because a
        concurrent submit of the same config may have raced in during it —
        which keeps the coalescing decision race-free.
        """
        hit = self._table_lookup(key)
        if hit is not None:
            return hit
        # Failed or cancelled jobs are resubmittable; first try the store.
        record = await self._store_call(self.store.get, key)
        hit = self._table_lookup(key)
        if hit is not None:
            return hit
        tracer = self.tracer
        if tracer is not None:
            tracer.record("cache", op="submit", key=key, hit=record is not None)
        if record is not None:
            self._store_served.inc()
            job = ServiceJob(
                key=key,
                config=config,
                name=str(config.get("name", "experiment")),
                state=DONE,
                source="store",
                submitted_at=time.time(),
                record=record,
            )
            job.done.set()
            self.jobs[key] = job
            return job, "store"
        job = ServiceJob(
            key=key,
            config=config,
            name=str(config.get("name", "experiment")),
            submitted_at=time.time(),
        )
        self.jobs[key] = job
        job.task = asyncio.get_running_loop().create_task(self._run_job(job))
        return job, "spawned"

    async def _run_job(self, job: ServiceJob) -> None:
        """Worker-side lifecycle of one spawned job."""
        assert self._slots is not None and self._pool is not None
        try:
            async with self._slots:
                if job.cancel_requested:
                    raise asyncio.CancelledError
                job.state = RUNNING
                job.started_at = time.time()
                self._executions.inc()
                _log.info("job %s (%s) started", job.key[:12], job.name)
                record = await asyncio.get_running_loop().run_in_executor(
                    self._pool, self._runner, job.config
                )
            job.finished_at = time.time()
            job.record = record
            job.state = DONE
            self.metrics.histogram("service.job.seconds", base=0.01).observe(
                job.wall_time or 0.0
            )
            await self._store_call(self.store.put, job.key, record)
        except asyncio.CancelledError:
            job.finished_at = time.time()
            job.state = CANCELLED
            job.error = "cancelled before execution"
        except Exception as error:
            job.finished_at = time.time()
            job.state = FAILED
            job.error = f"{type(error).__name__}: {error}"
            _log.warning("job %s (%s) failed: %s", job.key[:12], job.name, job.error)
        finally:
            job.done.set()

    @staticmethod
    def _finalize_unstarted_cancel(job: ServiceJob) -> None:
        """Settle a job whose coroutine was cancelled before it ever ran.

        ``Task.cancel()`` on a task that has not had its first event-loop
        step (pipelined submit+cancel on one connection hits this) destroys
        the coroutine without executing it — :meth:`_run_job`'s ``finally``
        never runs, so the CANCELLED transition and ``done`` signal must
        happen here.  A job whose coroutine did run has ``done`` set by the
        time its task completes, making this a no-op.
        """
        if job.done.is_set():
            return
        if job.task is None or not job.task.done():
            return
        job.finished_at = time.time()
        job.state = CANCELLED
        job.error = "cancelled before execution"
        job.done.set()

    def _job_response(self, op: str, job: ServiceJob, how: str, fmt: str) -> Dict[str, Any]:
        """The response for one job in its current state."""
        fields: Dict[str, Any] = dict(job.summary())
        # ``source`` says how the daemon first learned the answer; ``via``
        # says how *this* request was resolved (spawned / attached to an
        # in-flight run / already finished this session / read from store).
        fields["via"] = how
        fields["coalesced"] = how == "attached"
        if job.state == DONE and job.record is not None:
            fields.update(protocol.result_payload(job.record, fmt))
        return protocol.ok_response(op, **fields)

    # -- operations ----------------------------------------------------------

    async def _op_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        fmt = self._response_format(request)
        try:
            key, config = self._parse_config(request)
        except (TypeError, ValueError) as error:
            return protocol.error_response("submit", "bad_config", str(error))
        job, how = await self._submit_config(key, config)
        return self._job_response("submit", job, how, fmt)

    async def _op_batch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        fmt = self._response_format(request)
        configs = request.get("configs")
        if not isinstance(configs, list):
            return protocol.error_response(
                "batch", "bad_config", "'configs' must be a list of config mappings"
            )
        responses: List[Dict[str, Any]] = []
        for data in configs:
            responses.append(await self._op_submit({"config": data, "response_format": fmt}))
        return protocol.ok_response("batch", jobs=responses, count=len(responses))

    async def _op_get(self, request: Dict[str, Any]) -> Dict[str, Any]:
        fmt = self._response_format(request)
        key = request.get("key")
        if key is None and "config" in request:
            try:
                key, _ = self._parse_config(request)
            except (TypeError, ValueError) as error:
                return protocol.error_response("get", "bad_config", str(error))
        if not isinstance(key, str):
            return protocol.error_response("get", "bad_request", "'key' or 'config' required")
        job = self.jobs.get(key)
        if job is not None:
            return self._job_response("get", job, "lookup", fmt)
        record = await self._store_call(self.store.get, key)
        if record is not None:
            fields: Dict[str, Any] = {"key": key, "state": DONE, "source": "store"}
            fields.update(protocol.result_payload(record, fmt))
            return protocol.ok_response("get", **fields)
        return protocol.error_response(
            "get", "not_found", f"no job or stored result for key {key!r}", key=key
        )

    async def _op_list(self, request: Dict[str, Any]) -> Dict[str, Any]:
        fmt = self._response_format(request)
        jobs = sorted(self.jobs.values(), key=lambda job: (job.submitted_at, job.key))
        listed: List[Dict[str, Any]] = []
        for job in jobs:
            entry = job.summary()
            if fmt == "detailed":
                entry["config"] = job.config
                if job.state == DONE and job.record is not None:
                    entry["digest"] = protocol.metrics_digest(job.record)
            listed.append(entry)
        return protocol.ok_response("list", jobs=listed, count=len(listed))

    async def _op_cancel(self, request: Dict[str, Any]) -> Dict[str, Any]:
        key = request.get("key")
        if not isinstance(key, str):
            return protocol.error_response("cancel", "bad_request", "'key' required")
        job = self.jobs.get(key)
        if job is None:
            return protocol.error_response(
                "cancel", "not_found", f"no job for key {key!r}", key=key
            )
        if job.state == QUEUED and job.task is not None:
            job.cancel_requested = True
            job.task.cancel()
            # Await the task, not job.done: a task cancelled before its
            # first event-loop step never enters _run_job, so nothing else
            # would ever set done — waiting on it would hang this handler
            # and leave a zombie 'queued' entry that every later submit of
            # the same config coalesces onto.
            await asyncio.gather(job.task, return_exceptions=True)
            self._finalize_unstarted_cancel(job)
            return protocol.ok_response(
                "cancel", key=key, cancelled=job.state == CANCELLED, state=job.state
            )
        # Running jobs are never killed (deterministic work, nearly done);
        # finished states have nothing left to cancel.
        return protocol.ok_response("cancel", key=key, cancelled=False, state=job.state)

    async def _op_run_and_wait(self, request: Dict[str, Any]) -> Dict[str, Any]:
        fmt = self._response_format(request)
        try:
            key, config = self._parse_config(request)
        except (TypeError, ValueError) as error:
            return protocol.error_response("run_and_wait", "bad_config", str(error))
        timeout = request.get("timeout")
        if timeout is not None:
            # Validate before submitting: a bad timeout must not spawn work.
            try:
                timeout = float(timeout)
            except (TypeError, ValueError):
                raise _BadRequest(
                    f"'timeout' must be a number of seconds, got {timeout!r}"
                ) from None
        job, how = await self._submit_config(key, config)
        if not job.done.is_set():
            try:
                await asyncio.wait_for(
                    asyncio.shield(job.done.wait()), timeout=timeout
                )
            except asyncio.TimeoutError:
                return protocol.error_response(
                    "run_and_wait",
                    "timeout",
                    f"job still {job.state} after {timeout}s",
                    key=key,
                    state=job.state,
                )
        if job.state == DONE:
            return self._job_response("run_and_wait", job, how, fmt)
        return protocol.error_response(
            "run_and_wait",
            "execution_failed" if job.state == FAILED else "cancelled",
            job.error or f"job ended in state {job.state}",
            key=key,
            state=job.state,
        )

    async def _op_checkpointed(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Run one config with periodic checkpoints; crash-resumable.

        Unlike ``submit``, the result is a streaming windowed summary (flat
        memory however long the run), not a full per-job record, so the job
        never enters the result store.  The checkpoints live under the
        store directory keyed by the config, which is what makes a repeat
        request after a daemon crash resume instead of restart.
        """
        try:
            key, config = self._parse_config(request)
        except (TypeError, ValueError) as error:
            return protocol.error_response("checkpointed", "bad_config", str(error))
        every = request.get("checkpoint_every", 3600.0)
        try:
            every = float(every)
        except (TypeError, ValueError):
            raise _BadRequest(
                f"'checkpoint_every' must be a number of simulated seconds, "
                f"got {every!r}"
            ) from None
        if every <= 0:
            raise _BadRequest("'checkpoint_every' must be positive")
        assert self._slots is not None and self._pool is not None
        directory = self.store.directory / "checkpoints" / key
        async with self._slots:
            self._executions.inc()
            payload = await asyncio.get_running_loop().run_in_executor(
                self._pool, _execute_checkpointed, config, every, str(directory)
            )
        return protocol.ok_response("checkpointed", key=key, **payload)

    async def _op_status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        states: Dict[str, int] = {
            QUEUED: 0,
            RUNNING: 0,
            DONE: 0,
            FAILED: 0,
            CANCELLED: 0,
        }
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return protocol.ok_response(
            "status",
            version=repro.__version__,
            protocol=protocol.PROTOCOL_VERSION,
            python=".".join(map(str, sys.version_info[:3])),
            address=self.address,
            uptime=time.time() - self.started_at if self.started_at else 0.0,
            workers=self.workers,
            jobs=states,
            executions=self.executions,
            coalesced=self.coalesced,
            store_served=self.store_served,
            requests=self.requests,
            store=(await self._store_call(self.store.stats)).to_dict(),
        )

    async def _op_metrics(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Full metrics snapshots: daemon, store and process registries.

        ``service`` holds this daemon's counters and per-operation latency
        histograms, ``store`` the result store's hit/miss/eviction counters,
        ``process`` the process-global registry (engine counters, when the
        daemon process also ran sweeps in-process).
        """
        return protocol.ok_response(
            "metrics",
            service=self.metrics.snapshot(),
            store=self.store.metrics.snapshot(),
            process=get_registry().snapshot(),
        )

    async def _op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        _log.info("shutdown requested")
        self.request_shutdown()
        return protocol.ok_response("shutdown", stopping=True)
