"""Synchronous client of the experiment daemon.

A thin blocking wrapper over the newline-delimited JSON protocol: one
socket, one request line out, one response line in.  Thread-safety is by
confinement — use one :class:`ServiceClient` per thread (they are cheap;
the daemon multiplexes any number of connections).

    from repro.service import ServiceClient

    with ServiceClient(socket_path="/tmp/repro.sock") as client:
        client.status()
        response = client.run_and_wait(
            {"workload": "Wm", "job_count": 40, "seed": 0}
        )
        print(response["digest"], response["metrics"])
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.service import protocol
from repro.service.daemon import default_socket_path

ConfigLike = Union[Dict[str, Any], "ExperimentConfig"]  # noqa: F821 - doc alias


class ServiceError(RuntimeError):
    """A daemon-reported failure (``ok: false``), with its protocol code."""

    def __init__(self, code: str, message: str, response: Dict[str, Any]) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.response = response


def _config_dict(config: ConfigLike) -> Dict[str, Any]:
    """Coerce a config argument to the wire mapping."""
    to_dict = getattr(config, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    if isinstance(config, dict):
        return config
    raise TypeError(f"config must be a mapping or ExperimentConfig, got {type(config)!r}")


class ServiceClient:
    """Blocking client for one experiment daemon.

    Parameters
    ----------
    socket_path:
        Unix socket of the daemon (the default transport).  When neither
        this nor *host* is given, :func:`~repro.service.daemon.default_socket_path`
        is used.
    host, port:
        Localhost TCP alternative to the Unix socket.
    timeout:
        Socket timeout in seconds for connect and for each response.
        ``run_and_wait`` overrides it per call so a long simulation does
        not trip the transport timeout.
    """

    def __init__(
        self,
        *,
        socket_path: Union[str, Path, None] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 30.0,
    ) -> None:
        if host is not None and port is None:
            raise ValueError("host requires port")
        self.socket_path = None if host is not None else Path(socket_path or default_socket_path())
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._reader = None

    # -- transport -----------------------------------------------------------

    def connect(self) -> "ServiceClient":
        """Open the connection (idempotent; requests connect lazily too)."""
        if self._sock is not None:
            return self
        if self.host is not None:
            sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(str(self.socket_path))
        self._sock = sock
        self._reader = sock.makefile("rb")
        return self

    def close(self) -> None:
        """Close the connection (safe to call twice)."""
        reader, self._reader = self._reader, None
        sock, self._sock = self._sock, None
        if reader is not None:
            try:
                reader.close()
            except OSError:
                pass
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def wait_until_ready(self, *, timeout: float = 10.0, interval: float = 0.05) -> None:
        """Poll until the daemon accepts connections (for just-started daemons)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.connect()
                return
            except OSError:
                self.close()
                if time.monotonic() >= deadline:
                    raise
                time.sleep(interval)

    # -- the protocol --------------------------------------------------------

    #: Distinguishes "no override" from "block forever" (``None``).
    _DEFAULT_TIMEOUT = object()

    def request(
        self,
        op: str,
        *,
        transport_timeout: Any = _DEFAULT_TIMEOUT,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Send one request, block for its response, raise on ``ok: false``.

        *transport_timeout* overrides the socket timeout for this request
        only (it is a client-side knob, distinct from any ``timeout`` *wire
        field* in ``**fields``); pass ``None`` to block indefinitely
        (``run_and_wait`` without a deadline does).
        """
        self.connect()
        assert self._sock is not None and self._reader is not None
        message: Dict[str, Any] = {"op": op}
        message.update(fields)
        override = transport_timeout is not self._DEFAULT_TIMEOUT
        if override:
            self._sock.settimeout(transport_timeout)
        try:
            self._sock.sendall(protocol.encode(message))
            line = self._reader.readline()
        finally:
            if override:
                self._sock.settimeout(self.timeout)
        if not line:
            self.close()
            raise ConnectionError("daemon closed the connection without responding")
        response = protocol.decode(line)
        if not response.get("ok", False):
            error = response.get("error") or {}
            raise ServiceError(
                str(error.get("code", "unknown")),
                str(error.get("message", "unspecified error")),
                response,
            )
        return response

    # -- operations ----------------------------------------------------------

    def submit(
        self, config: ConfigLike, *, response_format: str = "concise"
    ) -> Dict[str, Any]:
        """Submit one config; returns immediately with its current state."""
        return self.request(
            "submit", config=_config_dict(config), response_format=response_format
        )

    def batch(
        self, configs: Sequence[ConfigLike], *, response_format: str = "concise"
    ) -> Dict[str, Any]:
        """Submit many configs in one round-trip."""
        return self.request(
            "batch",
            configs=[_config_dict(config) for config in configs],
            response_format=response_format,
        )

    def get(
        self,
        key: Optional[str] = None,
        *,
        config: Optional[ConfigLike] = None,
        response_format: str = "concise",
    ) -> Dict[str, Any]:
        """Look a result up by key or by config."""
        fields: Dict[str, Any] = {"response_format": response_format}
        if key is not None:
            fields["key"] = key
        if config is not None:
            fields["config"] = _config_dict(config)
        return self.request("get", **fields)

    def list(self, *, response_format: str = "concise") -> List[Dict[str, Any]]:
        """Every job the daemon knows about, oldest first."""
        return self.request("list", response_format=response_format)["jobs"]

    def cancel(self, key: str) -> Dict[str, Any]:
        """Cancel a queued job (running jobs report ``cancelled: false``)."""
        return self.request("cancel", key=key)

    def run_and_wait(
        self,
        config: ConfigLike,
        *,
        timeout: Optional[float] = None,
        response_format: str = "concise",
    ) -> Dict[str, Any]:
        """Submit (or attach to) *config* and block until its result is ready.

        *timeout* bounds the daemon-side wait; the transport timeout is
        stretched to match, so a long simulation never trips the socket.
        """
        fields: Dict[str, Any] = {
            "config": _config_dict(config),
            "response_format": response_format,
        }
        if timeout is not None:
            fields["timeout"] = float(timeout)
        transport_timeout = None if timeout is None else float(timeout) + self.timeout
        return self.request(
            "run_and_wait", transport_timeout=transport_timeout, **fields
        )

    def status(self) -> Dict[str, Any]:
        """Daemon health: pool, job-table and store statistics."""
        return self.request("status")

    def metrics(self) -> Dict[str, Any]:
        """Full metrics snapshots (daemon, store and process registries)."""
        return self.request("metrics")

    def shutdown(self) -> Dict[str, Any]:
        """Ask the daemon to stop (responds before stopping)."""
        response = self.request("shutdown")
        self.close()
        return response
