"""Malleability management — the paper's core contribution.

Two orthogonal choices govern how KOALA exploits malleability:

* the **job-management approach** decides *when* malleability actions happen:

  - :class:`~repro.malleability.manager.PrecedenceToRunningApplications`
    (PRA) grows running malleable jobs whenever processors become available
    and never shrinks them;
  - :class:`~repro.malleability.manager.PrecedenceToWaitingApplications`
    (PWA) mandatorily shrinks running malleable jobs to make room for jobs
    waiting in the placement queue, and grows only when nothing is waiting;

* the **malleability management policy** decides *how* the processors are
  spread over (or reclaimed from) the running malleable jobs of a cluster:

  - :class:`~repro.malleability.policies.FPSMA` favours previously started
    jobs (grow oldest-first, shrink youngest-first);
  - :class:`~repro.malleability.policies.EquiGrowShrink` (EGS) spreads the
    delta equally, remainder as a bonus to the oldest / malus to the
    youngest;
  - :class:`~repro.malleability.policies.Equipartition` and
    :class:`~repro.malleability.policies.Folding` reproduce the two classic
    baselines the paper discusses from related work, for comparison.

Policies are pure planners over read-only views of the running jobs, which
makes them unit-testable in isolation; the
:class:`~repro.malleability.manager.MalleabilityManager` executes the plans
through the runners and records every message for the activity metrics of
Figures 7(f) and 8(f).

Both axes are registered in the unified policy registry
(:mod:`repro.policies`) and the approaches are
:class:`~repro.policies.hooks.SchedulerHooks` subscribers of the scheduler's
typed events.  An additional fair-share policy beyond the paper,
``AVERAGE_STEAL``, lives in :mod:`repro.policies.average_steal`.
"""

from repro.malleability.policies import (
    EGS,
    FPSMA,
    EquiGrowShrink,
    Equipartition,
    Folding,
    GrowDirective,
    MalleabilityPolicy,
    ShrinkDirective,
    eligible_runners,
)
from repro.malleability.manager import (
    JobManagementApproach,
    MalleabilityManager,
    PrecedenceToRunningApplications,
    PrecedenceToWaitingApplications,
)

__all__ = [
    "EGS",
    "EquiGrowShrink",
    "Equipartition",
    "FPSMA",
    "Folding",
    "GrowDirective",
    "JobManagementApproach",
    "MalleabilityManager",
    "MalleabilityPolicy",
    "PrecedenceToRunningApplications",
    "PrecedenceToWaitingApplications",
    "ShrinkDirective",
    "eligible_runners",
]
