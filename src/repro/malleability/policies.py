"""Malleability management policies (FPSMA, EGS and baselines).

A policy answers one question: given the running malleable jobs of *one*
cluster and a number of processors to hand out (grow) or to reclaim
(shrink), which job gets how much?  The paper applies policies per cluster
because every application runs inside a single cluster ("the policies are
applied for each cluster separately").

Policies are *planners*: they inspect read-only views of the running jobs
(current allocation, start time, and what the job would accept via the
preview protocol) and produce directives; they never touch GRAM or the
application themselves.  The malleability manager executes the directives.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Protocol, Sequence, runtime_checkable

from repro.policies.registry import register


@runtime_checkable
class MalleableJobView(Protocol):
    """Read-only view of one running malleable job, as policies see it.

    :class:`~repro.koala.mrunner.MalleableRunner` satisfies this protocol;
    tests use lightweight fakes.
    """

    @property
    def current_allocation(self) -> int:  # pragma: no cover - protocol
        """Processors the job currently holds."""
        ...

    @property
    def start_time(self):  # pragma: no cover - protocol
        """When the job started executing."""
        ...

    @property
    def reconfiguring(self) -> bool:  # pragma: no cover - protocol
        """Whether a malleability operation is already in flight for the job."""
        ...

    def preview_grow(self, offered: int) -> int:  # pragma: no cover - protocol
        """Additional processors the job would accept out of *offered*."""
        ...

    def preview_shrink(self, requested: int) -> int:  # pragma: no cover - protocol
        """Processors the job would release if asked for *requested*."""
        ...


@dataclass(frozen=True)
class GrowDirective:
    """One grow message to send: offer *offered* processors to *runner*.

    ``expected`` is the number of processors the job said it would accept
    when previewed during planning; the manager reserves that many in the
    claim ledger before executing the directive.
    """

    runner: MalleableJobView
    offered: int
    expected: int

    def __post_init__(self) -> None:
        if self.offered < 1:
            raise ValueError("offered must be >= 1")
        if self.expected < 0 or self.expected > self.offered:
            raise ValueError("expected must lie in [0, offered]")


@dataclass(frozen=True)
class ShrinkDirective:
    """One shrink message to send: reclaim *requested* processors from *runner*."""

    runner: MalleableJobView
    requested: int
    expected: int

    def __post_init__(self) -> None:
        if self.requested < 1:
            raise ValueError("requested must be >= 1")
        if self.expected < 0:
            raise ValueError("expected must be >= 0")


def eligible_runners(runners: Sequence[MalleableJobView]) -> List[MalleableJobView]:
    """Runners that can take part in an operation (not mid-reconfiguration).

    Public helper for policies (including external single-file ones): every
    planner should filter its inputs through this before ranking them.
    """
    return [runner for runner in runners if not runner.reconfiguring]


#: Backward-compatible alias; prefer :func:`eligible_runners`.
_eligible = eligible_runners


def _by_start_time(
    runners: Sequence[MalleableJobView], *, newest_first: bool = False
) -> List[MalleableJobView]:
    return sorted(
        runners,
        key=lambda r: (r.start_time if r.start_time is not None else float("inf")),
        reverse=newest_first,
    )


class MalleabilityPolicy(ABC):
    """Base class of malleability management policies."""

    #: Symbolic name used in experiment configuration ("FPSMA", "EGS", ...).
    name: str = "abstract"

    @abstractmethod
    def plan_grow(
        self, runners: Sequence[MalleableJobView], grow_value: int
    ) -> List[GrowDirective]:
        """Distribute *grow_value* newly available processors over *runners*."""

    @abstractmethod
    def plan_shrink(
        self, runners: Sequence[MalleableJobView], shrink_value: int
    ) -> List[ShrinkDirective]:
        """Reclaim *shrink_value* processors from *runners*."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


@register("malleability", "FPSMA")
class FPSMA(MalleabilityPolicy):
    """Favour Previously Started Malleable Applications.

    Growing starts from the earliest-started job, shrinking from the
    latest-started one (Figure 4 of the paper).  Each job is offered the full
    remaining amount; whatever it accepts is subtracted before moving on, and
    the loop stops as soon as nothing remains.
    """

    name = "FPSMA"

    def plan_grow(
        self, runners: Sequence[MalleableJobView], grow_value: int
    ) -> List[GrowDirective]:
        directives: List[GrowDirective] = []
        remaining = int(grow_value)
        if remaining <= 0:
            return directives
        for runner in _by_start_time(_eligible(runners)):
            if remaining <= 0:
                break
            accepted = runner.preview_grow(remaining)
            if accepted <= 0:
                continue
            directives.append(GrowDirective(runner=runner, offered=remaining, expected=accepted))
            remaining -= accepted
        return directives

    def plan_shrink(
        self, runners: Sequence[MalleableJobView], shrink_value: int
    ) -> List[ShrinkDirective]:
        directives: List[ShrinkDirective] = []
        remaining = int(shrink_value)
        if remaining <= 0:
            return directives
        for runner in _by_start_time(_eligible(runners), newest_first=True):
            if remaining <= 0:
                break
            accepted = runner.preview_shrink(remaining)
            if accepted <= 0:
                continue
            directives.append(
                ShrinkDirective(runner=runner, requested=remaining, expected=accepted)
            )
            remaining -= accepted
        return directives


@register("malleability", "EGS", aliases=("EQUI-GROW-SHRINK",))
class EquiGrowShrink(MalleabilityPolicy):
    """Equi-Grow & Shrink (EGS).

    The newly available (or needed) processors are divided equally over all
    running malleable jobs; a remainder of *r* processors is given as a bonus
    of one processor to the *r* least recently started jobs when growing, or
    taken as a malus of one processor from the *r* most recently started jobs
    when shrinking (Figure 5 of the paper and its accompanying text).

    Unlike classic equipartition, EGS distributes only the *delta*, so jobs do
    not converge to identical sizes — but a single invocation consistently
    either grows or shrinks every job, never both.
    """

    name = "EGS"

    def plan_grow(
        self, runners: Sequence[MalleableJobView], grow_value: int
    ) -> List[GrowDirective]:
        directives: List[GrowDirective] = []
        eligible = _by_start_time(_eligible(runners))
        if grow_value <= 0 or not eligible:
            return directives
        share, remainder = divmod(int(grow_value), len(eligible))
        for index, runner in enumerate(eligible):
            bonus = 1 if index < remainder else 0
            offered = share + bonus
            if offered <= 0:
                continue
            accepted = runner.preview_grow(offered)
            if accepted <= 0:
                continue
            directives.append(GrowDirective(runner=runner, offered=offered, expected=accepted))
        return directives

    def plan_shrink(
        self, runners: Sequence[MalleableJobView], shrink_value: int
    ) -> List[ShrinkDirective]:
        directives: List[ShrinkDirective] = []
        eligible = _by_start_time(_eligible(runners), newest_first=True)
        if shrink_value <= 0 or not eligible:
            return directives
        share, remainder = divmod(int(shrink_value), len(eligible))
        for index, runner in enumerate(eligible):
            malus = 1 if index < remainder else 0
            requested = share + malus
            if requested <= 0:
                continue
            accepted = runner.preview_shrink(requested)
            if accepted <= 0:
                continue
            directives.append(
                ShrinkDirective(runner=runner, requested=requested, expected=accepted)
            )
        return directives


#: Alias matching the paper's acronym.
EGS = EquiGrowShrink


@register("malleability", "EQUIPARTITION")
class Equipartition(MalleabilityPolicy):
    """Classic equipartition baseline (as used by AMPI).

    Equipartition aims at giving every running malleable job the same number
    of processors.  When growing, the newly available processors are offered
    to the currently *smallest* jobs first so that allocations even out; when
    shrinking, processors are reclaimed from the *largest* jobs first.  The
    paper discusses this policy (and why EGS differs from it) in
    Section V-C.2.
    """

    name = "EQUIPARTITION"

    def plan_grow(
        self, runners: Sequence[MalleableJobView], grow_value: int
    ) -> List[GrowDirective]:
        directives: List[GrowDirective] = []
        eligible = _eligible(runners)
        remaining = int(grow_value)
        if remaining <= 0 or not eligible:
            return directives
        # Repeatedly give one processor to the currently smallest job until
        # nothing is left or nobody accepts; then coalesce per-runner amounts.
        planned = {id(runner): 0 for runner in eligible}
        sizes = {id(runner): runner.current_allocation for runner in eligible}
        progress = True
        while remaining > 0 and progress:
            progress = False
            for runner in sorted(eligible, key=lambda r: sizes[id(r)]):
                already = planned[id(runner)]
                accepted = runner.preview_grow(already + 1)
                if accepted <= already:
                    continue
                planned[id(runner)] = already + 1
                sizes[id(runner)] += 1
                remaining -= 1
                progress = True
                break  # re-sort: always feed the smallest job first
        for runner in eligible:
            amount = planned[id(runner)]
            if amount > 0:
                accepted = runner.preview_grow(amount)
                if accepted > 0:
                    directives.append(
                        GrowDirective(runner=runner, offered=amount, expected=accepted)
                    )
        return directives

    def plan_shrink(
        self, runners: Sequence[MalleableJobView], shrink_value: int
    ) -> List[ShrinkDirective]:
        directives: List[ShrinkDirective] = []
        eligible = _eligible(runners)
        remaining = int(shrink_value)
        if remaining <= 0 or not eligible:
            return directives
        planned = {id(runner): 0 for runner in eligible}
        sizes = {id(runner): runner.current_allocation for runner in eligible}
        progress = True
        while remaining > 0 and progress:
            progress = False
            for runner in sorted(eligible, key=lambda r: -sizes[id(r)]):
                already = planned[id(runner)]
                accepted = runner.preview_shrink(already + 1)
                if accepted <= already:
                    continue
                planned[id(runner)] = already + 1
                sizes[id(runner)] -= 1
                remaining -= 1
                progress = True
                break  # re-sort: always take from the largest job first
        for runner in eligible:
            amount = planned[id(runner)]
            if amount > 0:
                accepted = runner.preview_shrink(amount)
                if accepted > 0:
                    directives.append(
                        ShrinkDirective(runner=runner, requested=amount, expected=accepted)
                    )
        return directives


@register("malleability", "FOLDING")
class Folding(MalleabilityPolicy):
    """Folding/unfolding baseline (Utrera et al., McCann & Zahorjan).

    Growing *unfolds* a job by doubling its allocation; shrinking *folds* it
    by halving.  Growing favours the earliest-started job that can be doubled
    within the available processors; shrinking folds the most recently
    started jobs first.  The paper argues this policy only suits execution
    models where process counts are restricted to powers of two, which is why
    it serves as a baseline here rather than as a contribution.
    """

    name = "FOLDING"

    def plan_grow(
        self, runners: Sequence[MalleableJobView], grow_value: int
    ) -> List[GrowDirective]:
        directives: List[GrowDirective] = []
        remaining = int(grow_value)
        if remaining <= 0:
            return directives
        for runner in _by_start_time(_eligible(runners)):
            if remaining <= 0:
                break
            current = runner.current_allocation
            if current < 1 or current > remaining:
                continue
            # Offer exactly one doubling.
            accepted = runner.preview_grow(current)
            if accepted <= 0:
                continue
            directives.append(GrowDirective(runner=runner, offered=current, expected=accepted))
            remaining -= accepted
        return directives

    def plan_shrink(
        self, runners: Sequence[MalleableJobView], shrink_value: int
    ) -> List[ShrinkDirective]:
        directives: List[ShrinkDirective] = []
        remaining = int(shrink_value)
        if remaining <= 0:
            return directives
        for runner in _by_start_time(_eligible(runners), newest_first=True):
            if remaining <= 0:
                break
            current = runner.current_allocation
            half = current // 2
            if half < 1:
                continue
            accepted = runner.preview_shrink(half)
            if accepted <= 0:
                continue
            directives.append(ShrinkDirective(runner=runner, requested=half, expected=accepted))
            remaining -= accepted
        return directives
