"""The malleability manager and the two job-management approaches.

The malleability manager is the scheduler-side component added by the paper
(Figure 3): it decides when to initiate grow and shrink operations and sends
the corresponding messages to the MRunners, which forward them to the
applications through DYNACO.  Two approaches to *when* are provided:

* **PRA** (Precedence to Running Applications): whenever processors become
  available, the running malleable jobs are grown first; waiting jobs are not
  considered as long as a running malleable job can still grow.  Jobs are
  never shrunk.
* **PWA** (Precedence to Waiting Applications): when the job at the head of
  the placement queue cannot be placed, running malleable jobs are shrunk —
  mandatorily — to make room for it; if even the minimum sizes of the running
  jobs cannot free enough processors, the running jobs are grown instead.

Both approaches are triggered from the scheduler's periodic poll of the KOALA
information service (so background load submitted behind KOALA's back is
taken into account) and from resource-release events.  A per-cluster
*threshold* of processors is never handed to malleable jobs, so local users
always find some capacity free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.malleability.policies import GrowDirective, MalleabilityPolicy
from repro.policies.hooks import TriggerOnSchedulingEvents
from repro.policies.registry import register
from repro.sim.core import Environment
from repro.sim.events import Event
from repro.sim.monitor import Counter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.koala.scheduler import KoalaScheduler


class MalleabilityManager:
    """Scheduler-side component that triggers grow/shrink operations.

    Parameters
    ----------
    env:
        Simulation environment.
    scheduler:
        The owning :class:`~repro.koala.scheduler.KoalaScheduler`; the manager
        uses it to enumerate running malleable runners per cluster, to read
        the effective idle-processor view and to reserve claims.
    policy:
        The malleability management policy (FPSMA, EGS, ...).
    threshold:
        Number of idle processors per cluster that growing must always leave
        for local users.
    offer_mode:
        What a grow trigger offers to the running malleable jobs of a
        cluster:

        * ``"released"`` (default, matching the observed behaviour of the
          paper's system) — only the processors that *became available* since
          the last grow trigger (job completions, shrinks, voluntary
          releases, background jobs ending) are offered; whatever the running
          jobs decline simply stays idle until a future release.  This is
          what makes the "turn" dynamics of FPSMA visible: a short job may
          finish before previously started jobs stop absorbing the releases.
        * ``"idle"`` — every trigger offers all effectively idle processors
          (minus the threshold); on a lightly loaded system every job then
          reaches its maximum almost immediately and FPSMA and EGS become
          indistinguishable.  Kept for the ablation study.
    """

    def __init__(
        self,
        env: Environment,
        scheduler: "KoalaScheduler",
        policy: MalleabilityPolicy,
        *,
        threshold: int = 0,
        offer_mode: str = "released",
    ) -> None:
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if offer_mode not in ("released", "idle"):
            raise ValueError(f"unknown offer_mode {offer_mode!r}")
        self.env = env
        self.scheduler = scheduler
        self.policy = policy
        self.threshold = int(threshold)
        self.offer_mode = offer_mode
        #: Cumulative count of grow messages sent (Figure 7(f)).
        self.grow_messages = Counter(name="grow-messages")
        #: Cumulative count of shrink messages sent.
        self.shrink_messages = Counter(name="shrink-messages")
        #: Cumulative count of all malleability operations (Figure 8(f)).
        self.operations = Counter(name="malleability-operations")
        #: Whether a make-room shrink campaign is currently in flight.
        self._make_room_in_flight = False
        #: Per-cluster account of processors released since the last grow
        #: trigger (used in "released" offer mode).
        self._released_account: Dict[str, int] = {}
        for cluster in self.scheduler.multicluster:
            self._released_account[cluster.name] = 0
            cluster.add_release_listener(self._on_release)

    # -- release accounting ------------------------------------------------

    def _on_release(self, allocation) -> None:
        # Only processors released by KOALA-managed jobs are offered for
        # growth.  Processors released by local (background) jobs belong to
        # the local users: they become visible as idle — placements and the
        # grow ceiling account for them — but the malleability manager does
        # not actively hand them to malleable jobs, in the same spirit as the
        # threshold that always leaves capacity to local users.
        if allocation.kind != "grid":
            return
        name = allocation.cluster.name
        self._released_account[name] = (
            self._released_account.get(name, 0) + allocation.processors
        )

    def released_since_last_trigger(self, cluster_name: str) -> int:
        """Processors released on *cluster_name* since the last grow trigger."""
        return self._released_account.get(cluster_name, 0)

    # -- growing ------------------------------------------------------------

    def grow_value_for(self, cluster_name: str) -> int:
        """Processors that may be handed to malleable jobs on *cluster_name*.

        In ``"released"`` mode this is the release account of the cluster,
        capped by its effective idle count minus the local-user threshold; in
        ``"idle"`` mode it is the effective idle count minus the threshold.
        """
        if self.offer_mode != "idle":
            # An empty release account caps the offer at zero before the
            # idle view is even consulted — the common case on every trigger
            # between releases.
            account = self._released_account.get(cluster_name, 0)
            if account <= 0:
                return 0
        idle = self.scheduler.effective_idle_processors().get(cluster_name, 0)
        ceiling = idle - self.threshold
        if ceiling <= 0:
            return 0
        if self.offer_mode == "idle":
            return ceiling
        return min(ceiling, account)

    def grow_cluster(self, cluster_name: str) -> List[GrowDirective]:
        """Plan and execute grow operations on one cluster."""
        runners = self.scheduler.running_malleable_runners(cluster_name)
        if not runners:
            return []
        grow_value = self.grow_value_for(cluster_name)
        if grow_value <= 0:
            return []
        directives = self.policy.plan_grow(runners, grow_value)
        # The whole account was offered in this trigger; whatever the jobs
        # declined stays idle and is not re-offered until new releases occur.
        self._released_account[cluster_name] = 0
        for directive in directives:
            self._execute_grow(cluster_name, directive)
        return directives

    def grow_all_clusters(self) -> List[GrowDirective]:
        """Plan and execute grow operations on every cluster."""
        directives: List[GrowDirective] = []
        running = self.scheduler.running_malleable_index()
        for cluster_name in self.scheduler.cluster_names():
            if not running.get(cluster_name):
                # No malleable runner ever started here (or all are gone):
                # nothing can grow, skip the per-cluster planning round.
                continue
            directives.extend(self.grow_cluster(cluster_name))
        return directives

    def _execute_grow(self, cluster_name: str, directive: GrowDirective) -> Event:
        self.grow_messages.increment(self.env.now)
        self.operations.increment(self.env.now)
        claim = self.scheduler.ledger.reserve(
            cluster_name, max(1, directive.expected), owner=f"grow:{directive.runner.job.name}"
        )
        return directive.runner.grow(
            directive.offered, claim=claim, ledger=self.scheduler.ledger
        )

    # -- shrinking (PWA) --------------------------------------------------------

    def shrink_potential(self, cluster_name: str) -> int:
        """Processors that could be reclaimed on *cluster_name* by shrinking.

        Bounded by the minimum sizes of the running malleable jobs, exactly
        the feasibility condition PWA uses before deciding to shrink.
        """
        runners = self.scheduler.running_malleable_runners(cluster_name)
        return sum(runner.shrinkable_processors for runner in runners)

    def make_room(self, cluster_name: str, needed: int) -> Optional[Event]:
        """Shrink running malleable jobs on *cluster_name* to free *needed* processors.

        Returns an event that succeeds (with the total number of processors
        released) once all shrink operations have completed, or ``None`` when
        the policy cannot find anything to shrink.  Shrinks issued here are
        mandatory.
        """
        runners = self.scheduler.running_malleable_runners(cluster_name)
        if not runners or needed <= 0:
            return None
        directives = self.policy.plan_shrink(runners, needed)
        if not directives:
            return None
        release_events: List[Event] = []
        for directive in directives:
            self.shrink_messages.increment(self.env.now)
            self.operations.increment(self.env.now)
            release_events.append(directive.runner.shrink(directive.requested, mandatory=True))
        done = self.env.event()
        self.env.process(self._await_releases(release_events, done))
        return done

    def _await_releases(self, release_events: Sequence[Event], done: Event):
        total = 0
        for event in release_events:
            released = yield event
            total += int(released or 0)
        if not done.triggered:
            done.succeed(total)

    # -- PWA campaign ------------------------------------------------------------

    def make_room_for_job(self, job) -> bool:
        """Try to free enough processors for *job* somewhere (PWA shrink step).

        Picks the cluster where the fewest processors are missing (ties:
        most shrink potential) and launches a mandatory shrink campaign
        there.  Returns ``True`` if a campaign was started.  The placement
        queue is re-scanned once the campaign's processors have actually been
        released.
        """
        if self._make_room_in_flight:
            return False
        size = job.total_processors
        idle_view = self.scheduler.effective_idle_processors()
        best: Optional[tuple] = None
        for cluster_name in self.scheduler.cluster_names():
            idle = idle_view.get(cluster_name, 0)
            needed = size - idle
            if needed <= 0:
                # The job actually fits; placement will handle it.
                return False
            potential = self.shrink_potential(cluster_name)
            if potential >= needed:
                key = (needed, -potential)
                if best is None or key < best[0]:
                    best = (key, cluster_name, needed)
        if best is None:
            return False
        _, cluster_name, needed = best
        campaign = self.make_room(cluster_name, needed)
        if campaign is None:
            return False
        self._make_room_in_flight = True
        self.env.process(self._campaign_end(campaign))
        return True

    def _campaign_end(self, campaign: Event):
        yield campaign
        self._make_room_in_flight = False
        # Processors have been released: let the scheduler place waiting jobs.
        self.scheduler.scan_queue()

    # -- statistics ----------------------------------------------------------------

    @property
    def total_grow_messages(self) -> int:
        """Total number of grow messages sent so far."""
        return int(self.grow_messages.total)

    @property
    def total_shrink_messages(self) -> int:
        """Total number of shrink messages sent so far."""
        return int(self.shrink_messages.total)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<MalleabilityManager policy={self.policy.name} "
            f"grow={self.total_grow_messages} shrink={self.total_shrink_messages}>"
        )


class JobManagementApproach(TriggerOnSchedulingEvents, ABC):
    """Decides when the malleability manager acts relative to placement.

    Approaches are :class:`~repro.policies.hooks.SchedulerHooks` subscribers:
    the scheduler emits typed events, and the inherited
    :class:`~repro.policies.hooks.TriggerOnSchedulingEvents` wiring maps the
    paper's job-management trigger points — a submission, a completion, a
    processor release and an information-service poll — onto one
    re-entrancy-collapsed :meth:`on_trigger` round.  Subclasses usually only
    override :meth:`on_trigger`; overriding individual event hooks instead
    allows approaches with entirely different trigger conditions.
    """

    #: Symbolic name ("PRA" or "PWA").
    name: str = "abstract"

    @abstractmethod
    def on_trigger(self, scheduler: "KoalaScheduler", manager: MalleabilityManager) -> None:
        """Invoked by the scheduler at every job-management trigger point."""


@register("approach", "PRA", aliases=("PRECEDENCE-TO-RUNNING",))
class PrecedenceToRunningApplications(JobManagementApproach):
    """PRA: grow running malleable jobs first; never shrink.

    "Whenever processors become available ... first the running applications
    are considered.  If there are malleable jobs running, one of the
    malleability management policies is initiated in order to grow them; any
    waiting malleable jobs are not considered as long as at least one running
    malleable job can still be grown."
    """

    name = "PRA"

    def on_trigger(self, scheduler: "KoalaScheduler", manager: MalleabilityManager) -> None:
        manager.grow_all_clusters()
        # Whatever the running jobs did not take (threshold, declined offers)
        # is available for placements.
        scheduler.scan_queue()


@register("approach", "PWA", aliases=("PRECEDENCE-TO-WAITING",))
class PrecedenceToWaitingApplications(JobManagementApproach):
    """PWA: shrink running jobs to make room for waiting ones.

    "When the next job j in the queue cannot be placed, the scheduler applies
    one of the malleability management policies for shrinking running
    malleable jobs in order to obtain additional processors.  Those shrink
    operations are mandatory.  If it is however impossible to get enough
    available processors ... then the running malleable jobs are considered
    for growing."
    """

    name = "PWA"

    def on_trigger(self, scheduler: "KoalaScheduler", manager: MalleabilityManager) -> None:
        scheduler.scan_queue()
        head = scheduler.queue_head()
        if head is None:
            # Nothing is waiting: behave like PRA and grow the running jobs.
            manager.grow_all_clusters()
            return
        if manager.make_room_for_job(head):
            return
        # Impossible to free enough processors for the waiting job: grow.
        manager.grow_all_clusters()
