"""Application profiles and the profile registry.

An :class:`ApplicationProfile` bundles everything the simulation needs to
know about an application *class* (as opposed to a single job):

* its speedup model (how execution time scales with processors),
* its size constraint (which processor counts it accepts),
* its reconfiguration cost model, and
* default minimum/maximum sizes used when generating workloads.

Two calibrated profiles reproduce the applications used in the paper's
evaluation: :func:`ft_profile` (NAS FT) and :func:`gadget2_profile`
(GADGET-2), with execution-time curves matching Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterator, Optional

from repro.apps.constraints import AnySize, PowerOfTwo, SizeConstraint
from repro.apps.reconfiguration import (
    DataRedistributionCost,
    NoReconfigurationCost,
    ReconfigurationCost,
)
from repro.apps.speedup import SpeedupModel, TabulatedSpeedup


@dataclass(frozen=True)
class ApplicationProfile:
    """Static description of an application class.

    Attributes
    ----------
    name:
        Unique human-readable identifier (``"ft"``, ``"gadget2"``, ...).
    speedup:
        The application's scaling behaviour.
    constraint:
        Which processor counts the application accepts.  The scheduler never
        sees this: it is applied on the application side when grow/shrink
        offers arrive (Section VI-A of the paper).
    reconfiguration:
        The cost model for grow/shrink pauses.
    default_minimum / default_maximum:
        Default minimum and maximum sizes used for workload generation
        (the paper uses minimum 2 for both applications and maximum 32 for
        FT / 46 for GADGET-2).
    malleable:
        Whether instances of this profile can change size at runtime.  Rigid
        jobs in workload ``Wmr`` reuse the same profiles with
        ``malleable=False``.
    """

    name: str
    speedup: SpeedupModel
    constraint: SizeConstraint = field(default_factory=AnySize)
    reconfiguration: ReconfigurationCost = field(default_factory=NoReconfigurationCost)
    default_minimum: int = 2
    default_maximum: int = 32
    malleable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("profile name must be non-empty")
        if self.default_minimum < 1:
            raise ValueError("default_minimum must be >= 1")
        if self.default_maximum < self.default_minimum:
            raise ValueError("default_maximum must be >= default_minimum")

    def execution_time(self, processors: int) -> float:
        """Execution time of the full application on *processors* processors."""
        return self.speedup.execution_time(processors)

    def accepted_size(self, offered: int) -> int:
        """Size the application actually uses when offered *offered* processors.

        This is the application-side filtering described in the paper: FT
        accepts only the largest power of two not exceeding the offer and
        voluntarily releases the rest.  Returns 0 if no acceptable size fits
        in the offer.
        """
        if offered < 1:
            return 0
        return self.constraint.largest_acceptable(offered)

    def as_rigid(self) -> "ApplicationProfile":
        """Return a copy of this profile marked as rigid (non-malleable)."""
        return replace(self, malleable=False)

    def with_reconfiguration(self, model: ReconfigurationCost) -> "ApplicationProfile":
        """Return a copy with a different reconfiguration-cost model."""
        return replace(self, reconfiguration=model)


# ---------------------------------------------------------------------------
# Calibrated profiles for the paper's applications
# ---------------------------------------------------------------------------

#: Measured points read off Figure 6 for the NAS FT benchmark on the Delft
#: cluster: roughly 2 minutes on 2 machines, best ~1 minute, and it only runs
#: on power-of-two sizes.
FT_SCALING_POINTS = (
    (1, 220.0),
    (2, 120.0),
    (4, 85.0),
    (8, 70.0),
    (16, 62.0),
    (32, 60.0),
)

#: Measured points read off Figure 6 for GADGET-2: about 10 minutes on 2
#: machines, best about 4 minutes around 30-40 machines.
GADGET2_SCALING_POINTS = (
    (1, 1100.0),
    (2, 600.0),
    (4, 420.0),
    (8, 330.0),
    (16, 280.0),
    (24, 260.0),
    (32, 248.0),
    (40, 242.0),
    (46, 240.0),
)


def ft_profile(
    *,
    reconfiguration: Optional[ReconfigurationCost] = None,
    maximum: int = 32,
    minimum: int = 2,
) -> ApplicationProfile:
    """Profile of the NAS Parallel Benchmark FT calibrated to Figure 6.

    FT performs a distributed 3-D FFT; it requires a power-of-two number of
    processors and assumes processors of equal compute power.  The default
    reconfiguration cost models redistributing its (fixed-size) working set.
    """
    if reconfiguration is None:
        # Class-B FT holds a few GB in memory; redistribution over 1 GbE-class
        # links takes a handful of seconds.
        reconfiguration = DataRedistributionCost(data_volume=1600.0, bandwidth=400.0, base=1.0)
    return ApplicationProfile(
        name="ft",
        speedup=TabulatedSpeedup(FT_SCALING_POINTS),
        constraint=PowerOfTwo(),
        reconfiguration=reconfiguration,
        default_minimum=minimum,
        default_maximum=maximum,
    )


def gadget2_profile(
    *,
    reconfiguration: Optional[ReconfigurationCost] = None,
    maximum: int = 46,
    minimum: int = 2,
) -> ApplicationProfile:
    """Profile of the GADGET-2 n-body simulator calibrated to Figure 6.

    GADGET-2 runs on an arbitrary number of processors and includes its own
    load balancer, so any size offered by the scheduler is accepted.  Its
    particle data is larger than FT's working set, so reconfigurations are a
    little more expensive.
    """
    if reconfiguration is None:
        reconfiguration = DataRedistributionCost(data_volume=2400.0, bandwidth=400.0, base=2.0)
    return ApplicationProfile(
        name="gadget2",
        speedup=TabulatedSpeedup(GADGET2_SCALING_POINTS),
        constraint=AnySize(),
        reconfiguration=reconfiguration,
        default_minimum=minimum,
        default_maximum=maximum,
    )


class ProfileRegistry:
    """Name-indexed collection of application profiles.

    The registry plays the role of the application information a KOALA user
    supplies in a job description: runners look profiles up by name when a
    job is submitted.
    """

    def __init__(self) -> None:
        self._profiles: Dict[str, ApplicationProfile] = {}
        self._factories: Dict[str, Callable[[], ApplicationProfile]] = {}

    def register(self, profile: ApplicationProfile, overwrite: bool = False) -> None:
        """Register *profile* under its own name."""
        if profile.name in self._profiles and not overwrite:
            raise KeyError(f"profile {profile.name!r} is already registered")
        self._profiles[profile.name] = profile

    def register_factory(
        self, name: str, factory: Callable[[], ApplicationProfile], overwrite: bool = False
    ) -> None:
        """Register a lazy factory producing the profile on first lookup."""
        if name in self._factories and not overwrite:
            raise KeyError(f"factory {name!r} is already registered")
        self._factories[name] = factory

    def get(self, name: str) -> ApplicationProfile:
        """Return the profile registered under *name*."""
        if name not in self._profiles and name in self._factories:
            self._profiles[name] = self._factories[name]()
        try:
            return self._profiles[name]
        except KeyError:
            raise KeyError(
                f"unknown application profile {name!r}; known: {sorted(self)}"
            ) from None

    def __getitem__(self, name: str) -> ApplicationProfile:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._profiles or name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(set(self._profiles) | set(self._factories)))

    def __len__(self) -> int:
        return len(set(self._profiles) | set(self._factories))


def default_registry() -> ProfileRegistry:
    """Registry pre-populated with the paper's two applications."""
    registry = ProfileRegistry()
    registry.register_factory("ft", ft_profile)
    registry.register_factory("gadget2", gadget2_profile)
    return registry
