"""Speedup models: how execution time scales with the number of processors.

A :class:`SpeedupModel` answers two questions about an application:

* ``execution_time(n)`` — how long the whole application would take if it ran
  from start to finish on *n* processors;
* ``speedup(n)`` — the ratio ``execution_time(1) / execution_time(n)``.

The paper does not publish analytic speedup curves; it publishes measured
scaling curves (Figure 6).  We therefore provide several standard parametric
models (Amdahl, Downey, power-law) plus :class:`TabulatedSpeedup`, which
interpolates measured points — the latter is used to calibrate the FT and
GADGET-2 profiles to Figure 6.
"""

from __future__ import annotations

import bisect
import math
from abc import ABC, abstractmethod
from typing import Dict, Iterable, Sequence, Tuple


class SpeedupModel(ABC):
    """Abstract model of an application's parallel scaling behaviour."""

    @abstractmethod
    def execution_time(self, processors: int) -> float:
        """Execution time of the full application on *processors* processors."""

    def speedup(self, processors: int) -> float:
        """Speedup on *processors* processors relative to one processor."""
        return self.execution_time(1) / self.execution_time(processors)

    def efficiency(self, processors: int) -> float:
        """Parallel efficiency ``speedup(n) / n``."""
        self._check(processors)
        return self.speedup(processors) / processors

    def work_rate(self, processors: int) -> float:
        """Fraction of the total work completed per unit time on *processors*."""
        return 1.0 / self.execution_time(processors)

    def best_size(self, max_processors: int) -> int:
        """Processor count in ``[1, max_processors]`` minimising execution time."""
        if max_processors < 1:
            raise ValueError("max_processors must be >= 1")
        best_n, best_t = 1, self.execution_time(1)
        for n in range(2, max_processors + 1):
            t = self.execution_time(n)
            if t < best_t:
                best_n, best_t = n, t
        return best_n

    @staticmethod
    def _check(processors: int) -> None:
        if processors < 1:
            raise ValueError(f"processor count must be >= 1, got {processors}")


class AmdahlSpeedup(SpeedupModel):
    """Amdahl's law: a fixed *serial_fraction* of the work cannot be parallelised.

    Parameters
    ----------
    sequential_time:
        Execution time on one processor.
    serial_fraction:
        Fraction of the work (in ``[0, 1]``) that runs sequentially.
    overhead_per_processor:
        Optional per-processor overhead added linearly (models communication
        cost and produces the U-shaped curves of real applications).
    """

    def __init__(
        self,
        sequential_time: float,
        serial_fraction: float,
        overhead_per_processor: float = 0.0,
    ) -> None:
        if sequential_time <= 0:
            raise ValueError("sequential_time must be positive")
        if not 0.0 <= serial_fraction <= 1.0:
            raise ValueError("serial_fraction must lie in [0, 1]")
        if overhead_per_processor < 0:
            raise ValueError("overhead_per_processor must be non-negative")
        self.sequential_time = float(sequential_time)
        self.serial_fraction = float(serial_fraction)
        self.overhead_per_processor = float(overhead_per_processor)

    def execution_time(self, processors: int) -> float:
        self._check(processors)
        serial = self.serial_fraction * self.sequential_time
        parallel = (1.0 - self.serial_fraction) * self.sequential_time / processors
        overhead = self.overhead_per_processor * (processors - 1)
        return serial + parallel + overhead

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AmdahlSpeedup(sequential_time={self.sequential_time}, "
            f"serial_fraction={self.serial_fraction}, "
            f"overhead_per_processor={self.overhead_per_processor})"
        )


class DowneySpeedup(SpeedupModel):
    """Downey's parallel-speedup model for moldable/malleable jobs.

    The model (A. Downey, "A model for speedup of parallel programs", 1997)
    characterises a job by its average parallelism *A* and the coefficient of
    variation of parallelism *sigma*.  It is widely used to synthesise
    realistic speedup curves for scheduling studies, which makes it a natural
    baseline alongside the measured curves of Figure 6.
    """

    def __init__(self, sequential_time: float, average_parallelism: float, sigma: float) -> None:
        if sequential_time <= 0:
            raise ValueError("sequential_time must be positive")
        if average_parallelism < 1:
            raise ValueError("average_parallelism must be >= 1")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sequential_time = float(sequential_time)
        self.A = float(average_parallelism)
        self.sigma = float(sigma)

    def speedup(self, processors: int) -> float:
        self._check(processors)
        n = float(processors)
        A, sigma = self.A, self.sigma
        if sigma <= 1.0:
            # Low-variance regime.
            if n <= A:
                denom = A + sigma * (n - 1) / 2.0
                s = A * n / denom
            elif n <= 2 * A - 1:
                denom = sigma * (A - 0.5) + n * (1 - sigma / 2.0)
                s = A * n / denom
            else:
                s = A
        else:
            # High-variance regime.
            if n <= A + A * sigma - sigma:
                denom = sigma * (n + A - 1)
                s = n * A * (sigma + 1) / denom
            else:
                s = A
        return max(1.0, min(s, n))

    def execution_time(self, processors: int) -> float:
        return self.sequential_time / self.speedup(processors)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DowneySpeedup(sequential_time={self.sequential_time}, "
            f"average_parallelism={self.A}, sigma={self.sigma})"
        )


class PowerLawSpeedup(SpeedupModel):
    """Power-law speedup ``S(n) = n ** alpha`` with ``alpha`` in ``(0, 1]``.

    A convenient one-parameter family for synthetic workloads: ``alpha = 1``
    is perfect scaling, smaller values capture diminishing returns.
    """

    def __init__(self, sequential_time: float, alpha: float = 0.9) -> None:
        if sequential_time <= 0:
            raise ValueError("sequential_time must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        self.sequential_time = float(sequential_time)
        self.alpha = float(alpha)

    def execution_time(self, processors: int) -> float:
        self._check(processors)
        return self.sequential_time / (processors ** self.alpha)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PowerLawSpeedup(sequential_time={self.sequential_time}, alpha={self.alpha})"


class TabulatedSpeedup(SpeedupModel):
    """Speedup model interpolating measured ``(processors, execution time)`` points.

    Execution times between measured processor counts are interpolated
    log-linearly in the processor count; beyond the largest measured point the
    last execution time is reused (flat extrapolation), matching the paper's
    observation that allocating more than the best size simply wastes
    processors.
    """

    def __init__(self, points: Iterable[Tuple[int, float]]) -> None:
        table: Dict[int, float] = {}
        for processors, time in points:
            if processors < 1:
                raise ValueError("processor counts must be >= 1")
            if time <= 0:
                raise ValueError("execution times must be positive")
            table[int(processors)] = float(time)
        if not table:
            raise ValueError("at least one (processors, time) point is required")
        self._sizes: Sequence[int] = sorted(table)
        self._times: Sequence[float] = [table[n] for n in self._sizes]

    @property
    def measured_points(self) -> Tuple[Tuple[int, float], ...]:
        """The measured points this model interpolates, sorted by size."""
        return tuple(zip(self._sizes, self._times))

    def execution_time(self, processors: int) -> float:
        self._check(processors)
        sizes, times = self._sizes, self._times
        if processors <= sizes[0]:
            # Extrapolate below the first point assuming linear slowdown.
            return times[0] * sizes[0] / processors
        if processors >= sizes[-1]:
            return times[-1]
        idx = bisect.bisect_right(sizes, processors)
        n_lo, n_hi = sizes[idx - 1], sizes[idx]
        t_lo, t_hi = times[idx - 1], times[idx]
        if n_lo == processors:
            return t_lo
        # Log-linear interpolation in n gives smooth, monotone curves between
        # measured points.
        frac = (math.log(processors) - math.log(n_lo)) / (math.log(n_hi) - math.log(n_lo))
        return t_lo + frac * (t_hi - t_lo)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TabulatedSpeedup({list(zip(self._sizes, self._times))!r})"
