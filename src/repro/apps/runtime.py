"""Simulated execution of a (possibly malleable) application.

:class:`RunningApplication` is the simulation-side stand-in for an actual
MPI application adapted with DYNACO/AFPAC.  Its contract towards the rest of
the system is intentionally identical to the one the paper describes between
the MRunner and the real application:

* the application runs on its current allocation; its *remaining work*
  depletes at the rate given by the profile's speedup model;
* the runner asks it to adopt a new allocation with :meth:`set_allocation`;
  the application keeps computing until it reaches its next *adaptation
  point* (AFPAC semantics), then pauses for the reconfiguration cost, adopts
  the new size and acknowledges;
* when the work is done the :attr:`completed` event triggers.

Everything the evaluation metrics need (allocation over time, number of
reconfigurations, execution time) is captured in an
:class:`ExecutionRecord`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.apps.profiles import ApplicationProfile
from repro.sim.core import Environment
from repro.sim.events import Event, Interrupt
from repro.sim.monitor import TimeSeries

#: Remaining work below this fraction counts as finished (guards against
#: floating-point dust after repeated partial progress updates).
_WORK_EPSILON = 1e-9


@dataclass
class Reconfiguration:
    """One grow/shrink operation performed by the application."""

    time: float
    old_allocation: int
    new_allocation: int
    cost: float

    @property
    def is_grow(self) -> bool:
        """Whether the operation increased the allocation."""
        return self.new_allocation > self.old_allocation


@dataclass
class ExecutionRecord:
    """Everything observed about one application execution.

    The record is filled in by :class:`RunningApplication` while the
    simulation runs and consumed by :mod:`repro.metrics` afterwards.
    """

    job_id: str
    profile_name: str
    submit_time: Optional[float] = None
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    allocation_series: TimeSeries = field(default_factory=TimeSeries)
    reconfigurations: List[Reconfiguration] = field(default_factory=list)

    @property
    def started(self) -> bool:
        """Whether the application has started executing."""
        return self.start_time is not None

    @property
    def finished(self) -> bool:
        """Whether the application has finished executing."""
        return self.finish_time is not None

    @property
    def execution_time(self) -> float:
        """Wall-clock time between start and finish of the execution."""
        if self.start_time is None or self.finish_time is None:
            raise ValueError(f"job {self.job_id!r} has not finished")
        return self.finish_time - self.start_time

    @property
    def response_time(self) -> float:
        """Wall-clock time between submission and finish (wait + execution)."""
        if self.submit_time is None or self.finish_time is None:
            raise ValueError(f"job {self.job_id!r} has not finished or was never submitted")
        return self.finish_time - self.submit_time

    @property
    def wait_time(self) -> float:
        """Time the job spent in the placement queue before starting."""
        if self.submit_time is None or self.start_time is None:
            raise ValueError(f"job {self.job_id!r} has not started or was never submitted")
        return self.start_time - self.submit_time

    @property
    def average_allocation(self) -> float:
        """Time-weighted average number of processors over the execution."""
        if not self.allocation_series.times:
            return 0.0
        end = self.finish_time if self.finish_time is not None else self.allocation_series.times[-1]
        return self.allocation_series.time_average(self.start_time, end)

    @property
    def maximum_allocation(self) -> int:
        """Largest number of processors held at any point of the execution."""
        if not self.allocation_series.values:
            return 0
        return int(max(self.allocation_series.values))

    @property
    def grow_count(self) -> int:
        """Number of reconfigurations that increased the allocation."""
        return sum(1 for r in self.reconfigurations if r.is_grow)

    @property
    def shrink_count(self) -> int:
        """Number of reconfigurations that decreased the allocation."""
        return sum(1 for r in self.reconfigurations if not r.is_grow)


class RunningApplication:
    """A simulated application execution driven by its allocation.

    Parameters
    ----------
    env:
        Simulation environment.
    profile:
        Static description of the application (speedup, constraints, costs).
    initial_allocation:
        Number of processors the application starts on.
    job_id:
        Identifier used in the execution record.
    adaptation_point_interval:
        Average spacing (in seconds of application execution) between AFPAC
        adaptation points.  Reconfiguration requests wait until the next
        adaptation point before taking effect; the wait is drawn uniformly
        from ``[0, adaptation_point_interval]`` when *rng* is given and is
        ``adaptation_point_interval / 2`` otherwise.
    rng:
        Optional random generator for adaptation-point waits.
    total_work:
        Amount of work relative to a full run of the profile (1.0 = the whole
        application as measured in Figure 6).
    """

    def __init__(
        self,
        env: Environment,
        profile: ApplicationProfile,
        initial_allocation: int,
        *,
        job_id: str = "",
        adaptation_point_interval: float = 2.0,
        rng: Optional[np.random.Generator] = None,
        total_work: float = 1.0,
    ) -> None:
        if initial_allocation < 1:
            raise ValueError("initial_allocation must be >= 1")
        if adaptation_point_interval < 0:
            raise ValueError("adaptation_point_interval must be non-negative")
        if total_work <= 0:
            raise ValueError("total_work must be positive")

        self.env = env
        self.profile = profile
        self.job_id = job_id or profile.name
        self.adaptation_point_interval = float(adaptation_point_interval)
        self._rng = rng
        self._allocation = int(initial_allocation)
        self._remaining = float(total_work)
        self._total_work = float(total_work)
        self._pending: Deque[Tuple[int, Event]] = deque()
        self._interruptible = False
        self._aborted = False
        self._process = None
        #: Start time and rate of the progressing segment currently underway
        #: (``None`` while paused or reconfiguring); lets ``remaining_fraction``
        #: report live progress between simulation events.
        self._progressing_since: Optional[float] = None
        self._progressing_rate: float = 0.0
        #: Event that succeeds (with the execution record) once the work is done.
        self.completed: Event = env.event()
        self.record = ExecutionRecord(job_id=self.job_id, profile_name=profile.name)

    # -- public state ------------------------------------------------------

    @property
    def allocation(self) -> int:
        """Number of processors the application is currently using."""
        return self._allocation

    @property
    def remaining_fraction(self) -> float:
        """Fraction of the total work still to be done (1.0 at start, 0.0 at end).

        The value is live: while the application is computing, the progress of
        the current segment is included, so callers (e.g. application-side
        adaptation logic) can poll it at any simulation time.
        """
        remaining = self._remaining
        if self._progressing_since is not None:
            elapsed = self.env.now - self._progressing_since
            remaining = max(0.0, remaining - elapsed * self._progressing_rate)
        return max(0.0, remaining / self._total_work)

    @property
    def is_running(self) -> bool:
        """Whether the execution has started and not yet finished."""
        return self.record.started and not self.record.finished

    @property
    def is_finished(self) -> bool:
        """Whether the execution has finished."""
        return self.record.finished

    @property
    def aborted(self) -> bool:
        """Whether the execution was terminated early (e.g. a node failure)."""
        return self._aborted

    # -- control interface used by the runner ------------------------------

    def start(self) -> "RunningApplication":
        """Begin executing.  May only be called once."""
        if self._process is not None:
            raise RuntimeError(f"application {self.job_id!r} has already been started")
        self._process = self.env.process(self._compute())
        return self

    def set_allocation(self, new_size: int) -> Event:
        """Ask the application to adopt *new_size* processors.

        Returns an event that succeeds with the adopted allocation once the
        reconfiguration (adaptation-point wait plus reconfiguration cost) has
        completed.  If the application finishes before the request is served,
        the event succeeds immediately with the allocation held at completion;
        callers must check :attr:`is_finished`.

        The caller is responsible for having filtered *new_size* through the
        application's size constraint (the DYNACO decide component does this).
        """
        if self._process is None:
            raise RuntimeError(f"application {self.job_id!r} has not been started")
        if new_size < 0:
            raise ValueError("new_size must be non-negative")
        ack = self.env.event()
        if self.is_finished or new_size == self._allocation:
            ack.succeed(self._allocation)
            return ack
        self._pending.append((int(new_size), ack))
        if self._interruptible and self._process.is_alive:
            self._process.interrupt("reallocation")
        return ack

    def abort(self) -> None:
        """Terminate the execution immediately (the job was killed).

        Used by the fault-injection layer when the processors under the
        application fail: whatever work was done is lost, the execution
        record is closed at the current time (:attr:`aborted` distinguishes
        it from a successful completion) and :attr:`completed` triggers so
        waiters unwind.  Idempotent; a no-op after normal completion.
        """
        if self._process is None or self.is_finished:
            return
        self._aborted = True
        # Freeze progress accounting: the time computed so far still shows in
        # the record (it is the basis of the wasted-work metric), but no more
        # accrues.
        self._end_progress()
        self.record.finish_time = self.env.now
        while self._pending:
            _, ack = self._pending.popleft()
            if not ack.triggered:
                ack.succeed(self._allocation)
        if self._interruptible and self._process.is_alive:
            self._process.interrupt("aborted")
        if not self.completed.triggered:
            self.completed.succeed(self.record)

    # -- internal machinery -------------------------------------------------

    def _execution_time(self, processors: int) -> float:
        return self._total_work * self.profile.execution_time(processors)

    def _rate(self, processors: int) -> float:
        """Work (fraction of total) completed per second on *processors*."""
        return self._total_work / self._execution_time(processors)

    def _adaptation_wait(self) -> float:
        if self.adaptation_point_interval == 0:
            return 0.0
        if self._rng is not None:
            return float(self._rng.uniform(0.0, self.adaptation_point_interval))
        return self.adaptation_point_interval / 2.0

    def _record_allocation(self) -> None:
        self.record.allocation_series.record(self.env.now, self._allocation)

    def _begin_progress(self) -> None:
        """Mark the start of a segment during which work is being done."""
        self._progressing_since = self.env.now
        self._progressing_rate = self._rate(self._allocation) if self._allocation >= 1 else 0.0

    def _end_progress(self) -> None:
        """Account for the work done since :meth:`_begin_progress`."""
        if self._progressing_since is None:
            return
        elapsed = self.env.now - self._progressing_since
        if elapsed > 0 and self._progressing_rate > 0:
            self._remaining = max(0.0, self._remaining - elapsed * self._progressing_rate)
        self._progressing_since = None
        self._progressing_rate = 0.0

    def _compute(self):
        """Main application process (a simulation generator)."""
        env = self.env
        self.record.start_time = env.now
        self._record_allocation()

        while not self._aborted and self._remaining > _WORK_EPSILON:
            if self._pending:
                yield from self._serve_reconfiguration()
                continue

            if self._allocation < 1:
                # No processors at all: stay suspended until a reallocation
                # request arrives.  (In practice jobs never shrink below their
                # minimum size, but the runtime stays well-defined if they do.)
                pause = env.event()
                self._interruptible = True
                try:
                    yield pause
                except Interrupt:
                    pass
                finally:
                    self._interruptible = False
                continue

            # Plain computation until completion or until a reconfiguration
            # request interrupts it.
            time_to_finish = self._remaining / self._rate(self._allocation)
            self._begin_progress()
            self._interruptible = True
            try:
                yield env.timeout(time_to_finish)
            except Interrupt:
                pass
            finally:
                self._interruptible = False
                self._end_progress()

        if self._aborted:
            return  # abort() already closed the record and triggered waiters
        self._finish()

    def _serve_reconfiguration(self):
        """Handle the oldest pending reconfiguration request."""
        env = self.env
        new_size, ack = self._pending.popleft()

        # The application keeps computing until its next adaptation point.
        wait = self._adaptation_wait()
        if wait > 0 and self._remaining > _WORK_EPSILON:
            if self._allocation >= 1:
                time_to_finish = self._remaining / self._rate(self._allocation)
                segment = min(wait, time_to_finish)
            else:
                segment = wait
            self._begin_progress()
            yield env.timeout(segment)
            self._end_progress()
            if self._aborted:
                if not ack.triggered:
                    ack.succeed(self._allocation)
                return
            if self._remaining <= _WORK_EPSILON:
                # Finished before reaching the adaptation point: the
                # reconfiguration never happens.
                ack.succeed(self._allocation)
                return

        old = self._allocation
        cost = self.profile.reconfiguration.cost(old, new_size)
        if cost > 0:
            # The application is suspended while it redistributes its data.
            yield env.timeout(cost)
            if self._aborted:
                if not ack.triggered:
                    ack.succeed(self._allocation)
                return

        self._allocation = new_size
        self._record_allocation()
        self.record.reconfigurations.append(
            Reconfiguration(time=env.now, old_allocation=old, new_allocation=new_size, cost=cost)
        )
        ack.succeed(new_size)

    def _finish(self) -> None:
        self._remaining = 0.0
        self.record.finish_time = self.env.now
        # Flush any requests that arrived too late to matter.
        while self._pending:
            _, ack = self._pending.popleft()
            ack.succeed(self._allocation)
        self.completed.succeed(self.record)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<RunningApplication {self.job_id!r} profile={self.profile.name!r} "
            f"allocation={self._allocation} remaining={self.remaining_fraction:.3f}>"
        )
