"""Reconfiguration (grow/shrink) cost models.

The paper stresses that "an assessment of the overhead due to the
implementation of grow and shrink operations [is] commonly omitted" in prior
work, and its MRunner design goes to some length to overlap GRAM interactions
with application execution so that only the actual data-redistribution pause
is on the critical path.  These classes model that pause: the time during
which the application makes no progress while it adapts from ``old`` to
``new`` processors.

The GRAM submission/claiming latency itself is modelled separately in
:mod:`repro.cluster.gram` because it overlaps with execution.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class ReconfigurationCost(ABC):
    """Model of the time an application is paused while it grows or shrinks."""

    @abstractmethod
    def cost(self, old_processors: int, new_processors: int) -> float:
        """Pause duration (seconds) for adapting from *old* to *new* processors."""

    def _validate(self, old_processors: int, new_processors: int) -> None:
        if old_processors < 0 or new_processors < 0:
            raise ValueError("processor counts must be non-negative")


class NoReconfigurationCost(ReconfigurationCost):
    """Reconfiguration is free (the idealised assumption of theoretical work)."""

    def cost(self, old_processors: int, new_processors: int) -> float:
        self._validate(old_processors, new_processors)
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NoReconfigurationCost()"


class ConstantReconfigurationCost(ReconfigurationCost):
    """Every reconfiguration pauses the application for a fixed time."""

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cost must be non-negative")
        self.seconds = float(seconds)

    def cost(self, old_processors: int, new_processors: int) -> float:
        self._validate(old_processors, new_processors)
        if old_processors == new_processors:
            return 0.0
        return self.seconds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantReconfigurationCost({self.seconds})"


class PerProcessorReconfigurationCost(ReconfigurationCost):
    """Cost proportional to the number of processors added or removed.

    Models process spawning/retirement (e.g. AMPI object migration): a fixed
    base plus ``per_processor`` seconds for each processor of delta.
    """

    def __init__(self, base: float = 0.0, per_processor: float = 0.5) -> None:
        if base < 0 or per_processor < 0:
            raise ValueError("costs must be non-negative")
        self.base = float(base)
        self.per_processor = float(per_processor)

    def cost(self, old_processors: int, new_processors: int) -> float:
        self._validate(old_processors, new_processors)
        delta = abs(new_processors - old_processors)
        if delta == 0:
            return 0.0
        return self.base + self.per_processor * delta

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PerProcessorReconfigurationCost(base={self.base}, per_processor={self.per_processor})"


class DataRedistributionCost(ReconfigurationCost):
    """Cost of redistributing a fixed dataset over the new processor set.

    The application holds ``data_volume`` (in abstract MB) distributed over
    its processors.  On reconfiguration the fraction of data that changes
    owner is roughly ``|new - old| / max(new, old)``, and it moves at
    ``bandwidth`` MB/s; a fixed ``base`` covers synchronisation barriers.
    This mirrors the behaviour of SPMD codes adapted with AFPAC, where data
    redistribution dominates the adaptation time.
    """

    def __init__(self, data_volume: float, bandwidth: float, base: float = 1.0) -> None:
        if data_volume < 0:
            raise ValueError("data_volume must be non-negative")
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if base < 0:
            raise ValueError("base must be non-negative")
        self.data_volume = float(data_volume)
        self.bandwidth = float(bandwidth)
        self.base = float(base)

    def cost(self, old_processors: int, new_processors: int) -> float:
        self._validate(old_processors, new_processors)
        if old_processors == new_processors or max(old_processors, new_processors) == 0:
            return 0.0
        moved_fraction = abs(new_processors - old_processors) / max(old_processors, new_processors)
        return self.base + moved_fraction * self.data_volume / self.bandwidth

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DataRedistributionCost(data_volume={self.data_volume}, "
            f"bandwidth={self.bandwidth}, base={self.base})"
        )
