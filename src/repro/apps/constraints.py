"""Processor-count constraints of malleable applications.

The paper deliberately keeps such constraints out of the scheduler:

    "we propose that the scheduler does not care about such constraints, in
    order to avoid to make it implement an exhaustive collection of possible
    constraints.  Consequently, when responding to grow and shrink messages,
    the FT application accepts only the highest power of 2 processors that
    does not exceed the allocated number.  Additional processors are
    voluntarily released to the scheduler."

A :class:`SizeConstraint` therefore lives on the *application* side (inside
the DYNACO decide component): given an offered allocation it answers which
size the application actually accepts.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence


class SizeConstraint(ABC):
    """Decides which processor counts an application can actually use."""

    @abstractmethod
    def is_acceptable(self, processors: int) -> bool:
        """Whether the application can run on exactly *processors* processors."""

    def largest_acceptable(self, processors: int) -> int:
        """Largest acceptable size not exceeding *processors* (0 if none)."""
        n = int(processors)
        while n >= 1:
            if self.is_acceptable(n):
                return n
            n -= 1
        return 0

    def smallest_acceptable(self, processors: int, limit: int = 1 << 20) -> int:
        """Smallest acceptable size that is at least *processors* (0 if none)."""
        n = max(1, int(processors))
        while n <= limit:
            if self.is_acceptable(n):
                return n
            n += 1
        return 0


class AnySize(SizeConstraint):
    """No constraint: every positive processor count is acceptable."""

    def is_acceptable(self, processors: int) -> bool:
        return processors >= 1

    def largest_acceptable(self, processors: int) -> int:
        return max(0, int(processors))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "AnySize()"


class PowerOfTwo(SizeConstraint):
    """Only powers of two are acceptable (the NAS FT benchmark's constraint)."""

    def is_acceptable(self, processors: int) -> bool:
        return processors >= 1 and (processors & (processors - 1)) == 0

    def largest_acceptable(self, processors: int) -> int:
        if processors < 1:
            return 0
        return 1 << (int(processors).bit_length() - 1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "PowerOfTwo()"


class MultipleOf(SizeConstraint):
    """Only multiples of *factor* are acceptable (e.g. one process per node pair)."""

    def __init__(self, factor: int) -> None:
        if factor < 1:
            raise ValueError("factor must be >= 1")
        self.factor = int(factor)

    def is_acceptable(self, processors: int) -> bool:
        return processors >= self.factor and processors % self.factor == 0

    def largest_acceptable(self, processors: int) -> int:
        if processors < self.factor:
            return 0
        return (int(processors) // self.factor) * self.factor

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MultipleOf({self.factor})"


class RangeConstraint(SizeConstraint):
    """Restrict sizes to ``[minimum, maximum]`` on top of an inner constraint."""

    def __init__(
        self,
        minimum: int,
        maximum: int,
        inner: SizeConstraint | None = None,
    ) -> None:
        if minimum < 1:
            raise ValueError("minimum must be >= 1")
        if maximum < minimum:
            raise ValueError("maximum must be >= minimum")
        self.minimum = int(minimum)
        self.maximum = int(maximum)
        self.inner = inner or AnySize()

    def is_acceptable(self, processors: int) -> bool:
        return self.minimum <= processors <= self.maximum and self.inner.is_acceptable(processors)

    def largest_acceptable(self, processors: int) -> int:
        capped = min(int(processors), self.maximum)
        candidate = self.inner.largest_acceptable(capped)
        return candidate if candidate >= self.minimum else 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RangeConstraint({self.minimum}, {self.maximum}, {self.inner!r})"


class ExplicitSizes(SizeConstraint):
    """Only an explicitly enumerated set of sizes is acceptable."""

    def __init__(self, sizes: Iterable[int]) -> None:
        cleaned = sorted({int(s) for s in sizes})
        if not cleaned or cleaned[0] < 1:
            raise ValueError("sizes must be a non-empty collection of positive integers")
        self.sizes: Sequence[int] = cleaned

    def is_acceptable(self, processors: int) -> bool:
        return processors in self.sizes

    def largest_acceptable(self, processors: int) -> int:
        best = 0
        for size in self.sizes:
            if size <= processors:
                best = size
            else:
                break
        return best

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExplicitSizes({list(self.sizes)!r})"


class CompositeConstraint(SizeConstraint):
    """Conjunction of several constraints (all must accept the size)."""

    def __init__(self, constraints: Iterable[SizeConstraint]) -> None:
        self.constraints = list(constraints)
        if not self.constraints:
            raise ValueError("at least one constraint is required")

    def is_acceptable(self, processors: int) -> bool:
        return all(c.is_acceptable(processors) for c in self.constraints)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompositeConstraint({self.constraints!r})"
