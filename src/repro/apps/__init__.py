"""Application models.

The paper evaluates its scheduling policies with two real parallel
applications that were made malleable with DYNACO/AFPAC:

* the NAS Parallel Benchmark **FT** (a 3-D FFT kernel) — runs only on a
  power-of-two number of processors, takes about 2 minutes on 2 processors
  and about 1 minute at best (Figure 6);
* **GADGET-2** (a cosmological n-body simulator) — runs on an arbitrary
  number of processors thanks to its internal load balancer, takes about
  10 minutes on 2 processors and about 4 minutes at best (Figure 6).

This package models applications by their *speedup curve* (how execution
time scales with the number of processors), their *size constraints* (which
processor counts they accept), and their *reconfiguration cost* (the
overhead of a grow or shrink operation).  The
:class:`~repro.apps.runtime.RunningApplication` class turns a profile into a
simulated execution whose remaining work depletes at a rate determined by the
current allocation, exactly the quantity the evaluation metrics depend on.
"""

from repro.apps.speedup import (
    AmdahlSpeedup,
    DowneySpeedup,
    PowerLawSpeedup,
    SpeedupModel,
    TabulatedSpeedup,
)
from repro.apps.constraints import (
    AnySize,
    CompositeConstraint,
    MultipleOf,
    PowerOfTwo,
    RangeConstraint,
    SizeConstraint,
)
from repro.apps.reconfiguration import (
    ConstantReconfigurationCost,
    DataRedistributionCost,
    NoReconfigurationCost,
    PerProcessorReconfigurationCost,
    ReconfigurationCost,
)
from repro.apps.profiles import (
    ApplicationProfile,
    ProfileRegistry,
    default_registry,
    ft_profile,
    gadget2_profile,
)
from repro.apps.runtime import ExecutionRecord, RunningApplication

__all__ = [
    "AmdahlSpeedup",
    "AnySize",
    "ApplicationProfile",
    "CompositeConstraint",
    "ConstantReconfigurationCost",
    "DataRedistributionCost",
    "DowneySpeedup",
    "ExecutionRecord",
    "MultipleOf",
    "NoReconfigurationCost",
    "PerProcessorReconfigurationCost",
    "PowerLawSpeedup",
    "PowerOfTwo",
    "ProfileRegistry",
    "RangeConstraint",
    "ReconfigurationCost",
    "RunningApplication",
    "SizeConstraint",
    "SpeedupModel",
    "TabulatedSpeedup",
    "default_registry",
    "ft_profile",
    "gadget2_profile",
]
