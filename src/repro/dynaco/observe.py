"""The *observe* component: monitors that turn outside stimuli into events.

In the paper's integration, "the frontend is reflected as a monitor, which
generates events when it receives grow and shrink messages from the
scheduler".  :class:`SchedulerFrontendMonitor` is that monitor: the runner
frontend calls :meth:`~SchedulerFrontendMonitor.on_grow_message` /
:meth:`~SchedulerFrontendMonitor.on_shrink_message` and the monitor forwards
the corresponding :class:`~repro.dynaco.events.EnvironmentEvent` to its
subscribers (normally the :class:`~repro.dynaco.framework.Dynaco` instance).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List

from repro.dynaco.events import EnvironmentEvent, GrowOffer, ShrinkRequest

#: Signature of an event subscriber.
EventHandler = Callable[[EnvironmentEvent], None]


class Monitor(ABC):
    """Base class of observe components.

    A monitor publishes :class:`EnvironmentEvent` instances to its
    subscribers.  Concrete monitors decide *when* to publish (on scheduler
    messages, on resource failures, on application progress, ...).
    """

    def __init__(self) -> None:
        self._subscribers: List[EventHandler] = []

    def subscribe(self, handler: EventHandler) -> None:
        """Register *handler* to be called for every published event."""
        self._subscribers.append(handler)

    def publish(self, event: EnvironmentEvent) -> None:
        """Deliver *event* to all subscribers in subscription order."""
        for handler in list(self._subscribers):
            handler(event)

    @property
    @abstractmethod
    def name(self) -> str:
        """Human-readable monitor name."""


class SchedulerFrontendMonitor(Monitor):
    """Monitor fed by the runner frontend with scheduler grow/shrink messages."""

    def __init__(self, frontend_name: str = "koala-frontend") -> None:
        super().__init__()
        self._name = frontend_name
        #: Events published so far, for diagnostics and tests.
        self.history: List[EnvironmentEvent] = []

    @property
    def name(self) -> str:
        return self._name

    def on_grow_message(self, time: float, offered: int, current_allocation: int) -> GrowOffer:
        """Translate a scheduler grow message into a :class:`GrowOffer` event."""
        event = GrowOffer(
            time=time, offered=offered, current_allocation=current_allocation, source=self._name
        )
        self.history.append(event)
        self.publish(event)
        return event

    def on_shrink_message(
        self, time: float, requested: int, current_allocation: int, mandatory: bool = True
    ) -> ShrinkRequest:
        """Translate a scheduler shrink message into a :class:`ShrinkRequest` event."""
        event = ShrinkRequest(
            time=time,
            requested=requested,
            current_allocation=current_allocation,
            mandatory=mandatory,
            source=self._name,
        )
        self.history.append(event)
        self.publish(event)
        return event


class CallbackMonitor(Monitor):
    """A generic monitor whose events are injected by arbitrary callers.

    Useful for modelling application-initiated adaptation (the paper's future
    work): the application's own progress logic can publish a
    :class:`~repro.dynaco.events.GrowOffer`-like event through this monitor.
    """

    def __init__(self, name: str = "callback-monitor") -> None:
        super().__init__()
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    def emit(self, event: EnvironmentEvent) -> None:
        """Publish *event* to subscribers."""
        self.publish(event)
