"""Events exchanged between the scheduler, the runner frontend and DYNACO.

These dataclasses form the vocabulary of the grow/shrink protocol described
in Sections II and V of the paper:

* the scheduler *offers* additional processors (:class:`GrowOffer`) or
  *requests* processors back (:class:`ShrinkRequest`); shrink requests issued
  by the PWA approach are mandatory;
* the application answers with the number of processors it *accepts* and an
  :class:`AdaptationResult` is produced once the adaptation has actually been
  executed, which the frontend turns into an acknowledgment to the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class EnvironmentEvent:
    """Base class of events observed by DYNACO monitors."""

    time: float
    source: str = field(default="scheduler", kw_only=True)


@dataclass(frozen=True)
class GrowOffer(EnvironmentEvent):
    """The scheduler offers *offered* additional processors to the application.

    Growing is always voluntary: the application answers how many of the
    offered processors it accepts (possibly zero), taking its maximum size and
    its size constraint into account.
    """

    offered: int = 0
    current_allocation: int = 0

    def __post_init__(self) -> None:
        if self.offered < 0:
            raise ValueError("offered must be non-negative")
        if self.current_allocation < 0:
            raise ValueError("current_allocation must be non-negative")


@dataclass(frozen=True)
class ShrinkRequest(EnvironmentEvent):
    """The scheduler asks the application to give back *requested* processors.

    ``mandatory`` distinguishes the PWA approach's mandatory shrinks (the
    system needs the processors for a waiting job) from voluntary ones.  Even
    a mandatory shrink never takes the application below its minimum size.
    """

    requested: int = 0
    current_allocation: int = 0
    mandatory: bool = True

    def __post_init__(self) -> None:
        if self.requested < 0:
            raise ValueError("requested must be non-negative")
        if self.current_allocation < 0:
            raise ValueError("current_allocation must be non-negative")


@dataclass(frozen=True)
class AdaptationResult:
    """Outcome of one executed adaptation.

    Attributes
    ----------
    event:
        The environment event that triggered the adaptation.
    accepted_change:
        Number of processors actually gained (positive) or released
        (negative).  Zero means the application declined to adapt.
    new_allocation:
        Allocation after the adaptation.
    completed_at:
        Simulation time the adaptation finished (``None`` if it was declined
        outright and nothing was executed).
    voluntary_release:
        Processors the application gave back *beyond* what was asked, e.g.
        FT rounding an offer down to a power of two (the paper: "additional
        processors are voluntarily released to the scheduler").
    """

    event: EnvironmentEvent
    accepted_change: int
    new_allocation: int
    completed_at: Optional[float] = None
    voluntary_release: int = 0

    @property
    def declined(self) -> bool:
        """Whether the application declined to change its allocation."""
        return self.accepted_change == 0
