"""The *decide* component: choosing whether and how to adapt.

The decision procedure is the application-specific heart of DYNACO.  For a
malleable application its job is simple but crucial: given a grow offer or a
shrink request from the scheduler, pick the processor count the application
will actually adopt, respecting

* its minimum size (it can never shrink below it, even for mandatory
  shrinks),
* its maximum size (accepting more would waste processors), and
* its structural size constraint (e.g. FT's power-of-two requirement), which
  the scheduler deliberately knows nothing about.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from repro.apps.constraints import AnySize, SizeConstraint
from repro.dynaco.events import EnvironmentEvent, GrowOffer, ShrinkRequest


@dataclass(frozen=True)
class Strategy:
    """The strategy adopted by the decide component.

    For malleability the strategy is fully described by the target processor
    count; ``target_allocation == current allocation`` means "keep the current
    strategy" (no adaptation).
    """

    target_allocation: int
    reason: str = ""

    def __post_init__(self) -> None:
        if self.target_allocation < 0:
            raise ValueError("target_allocation must be non-negative")


class DecisionProcedure(ABC):
    """Base class of decide components."""

    @abstractmethod
    def decide(self, event: EnvironmentEvent, current_allocation: int) -> Strategy:
        """Return the strategy to adopt in reaction to *event*."""


class MalleabilityDecision(DecisionProcedure):
    """Decision procedure of a malleable application.

    Parameters
    ----------
    minimum / maximum:
        The job's minimum and maximum processor counts (Section II-B).
    constraint:
        The application's structural size constraint.
    grow_eagerness:
        Fraction of an offer the application is willing to take (1.0 accepts
        everything it can use; lower values model applications that grow
        conservatively, an extension knob used by the ablation benchmarks).
    """

    def __init__(
        self,
        minimum: int,
        maximum: int,
        constraint: Optional[SizeConstraint] = None,
        *,
        grow_eagerness: float = 1.0,
    ) -> None:
        if minimum < 1:
            raise ValueError("minimum must be >= 1")
        if maximum < minimum:
            raise ValueError("maximum must be >= minimum")
        if not 0.0 <= grow_eagerness <= 1.0:
            raise ValueError("grow_eagerness must lie in [0, 1]")
        self.minimum = int(minimum)
        self.maximum = int(maximum)
        self.constraint = constraint or AnySize()
        self.grow_eagerness = float(grow_eagerness)

    # -- decision entry point ------------------------------------------------

    def decide(self, event: EnvironmentEvent, current_allocation: int) -> Strategy:
        if isinstance(event, GrowOffer):
            return self._decide_grow(event.offered, current_allocation)
        if isinstance(event, ShrinkRequest):
            return self._decide_shrink(event.requested, current_allocation)
        # Unknown events never change the strategy.
        return Strategy(target_allocation=current_allocation, reason="unhandled event")

    # -- grow ------------------------------------------------------------------

    def _decide_grow(self, offered: int, current: int) -> Strategy:
        if offered <= 0 or current >= self.maximum:
            return Strategy(current, reason="nothing to gain")
        usable_offer = int(round(offered * self.grow_eagerness)) if offered > 0 else 0
        if usable_offer <= 0:
            return Strategy(current, reason="declined by eagerness")
        proposed = min(current + usable_offer, self.maximum)
        acceptable = self.constraint.largest_acceptable(proposed)
        if acceptable <= current or acceptable < self.minimum:
            return Strategy(current, reason="constraint leaves no room to grow")
        return Strategy(acceptable, reason=f"grow {current} -> {acceptable}")

    # -- shrink ----------------------------------------------------------------

    def _decide_shrink(self, requested: int, current: int) -> Strategy:
        if requested <= 0 or current <= self.minimum:
            return Strategy(current, reason="cannot shrink below minimum")
        proposed = max(current - requested, self.minimum)
        acceptable = self.constraint.largest_acceptable(proposed)
        if acceptable < self.minimum:
            # The constraint admits no size between the minimum and the
            # proposal; look for the smallest acceptable size that still
            # satisfies the request direction (i.e. is below the current
            # allocation) but not below the minimum.
            acceptable = 0
            for size in range(proposed, current):
                if size >= self.minimum and self.constraint.is_acceptable(size):
                    acceptable = size
                    break
            if acceptable == 0:
                return Strategy(current, reason="constraint prevents shrinking")
        if acceptable >= current:
            return Strategy(current, reason="constraint prevents shrinking")
        return Strategy(acceptable, reason=f"shrink {current} -> {acceptable}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MalleabilityDecision(minimum={self.minimum}, maximum={self.maximum}, "
            f"constraint={self.constraint!r}, grow_eagerness={self.grow_eagerness})"
        )
