"""DYNACO — the dynamic-adaptation framework used on the application side.

DYNACO (Buisson, André, Pazat) decomposes adaptability into four components
arranged as a control loop (Figure 2 of the paper):

* **observe** — monitors the execution environment and emits events when
  something relevant changes (here: grow/shrink messages arriving from the
  KOALA scheduler through the runner frontend);
* **decide** — decides *whether* and *to what* the application should adapt
  (here: which processor count to actually adopt, applying the application's
  own size constraints and its minimum/maximum);
* **plan** — produces the list of actions realising the adopted strategy;
* **execute** — schedules those actions in synchronisation with the
  application code (AFPAC provides this for SPMD applications: adaptation
  happens at the next adaptation point).

The framework is deliberately application-agnostic; applications specialise
it by providing the decision procedure, planning rules and action
implementations.  In this reproduction the specialisation for malleable
SPMD applications is provided by :class:`~repro.dynaco.decide.MalleabilityDecision`,
:class:`~repro.dynaco.plan.MalleabilityPlanner` and
:class:`~repro.dynaco.execute.AfpacExecutor`.
"""

from repro.dynaco.events import (
    AdaptationResult,
    EnvironmentEvent,
    GrowOffer,
    ShrinkRequest,
)
from repro.dynaco.observe import CallbackMonitor, Monitor, SchedulerFrontendMonitor
from repro.dynaco.decide import (
    DecisionProcedure,
    MalleabilityDecision,
    Strategy,
)
from repro.dynaco.plan import Action, MalleabilityPlanner, Plan, Planner
from repro.dynaco.execute import AfpacExecutor, Executor
from repro.dynaco.framework import Dynaco

__all__ = [
    "Action",
    "AdaptationResult",
    "AfpacExecutor",
    "CallbackMonitor",
    "DecisionProcedure",
    "Dynaco",
    "EnvironmentEvent",
    "Executor",
    "GrowOffer",
    "MalleabilityDecision",
    "MalleabilityPlanner",
    "Monitor",
    "Plan",
    "Planner",
    "SchedulerFrontendMonitor",
    "ShrinkRequest",
    "Strategy",
]
