"""The DYNACO container: wiring observe, decide, plan and execute together.

A :class:`Dynaco` instance is created *per application* (the paper: "a
complete instance of DYNACO is included in the MRunner on a per-application
basis").  The runner frontend feeds scheduler messages into the monitor; the
framework then runs the control loop — decide, plan, execute — and returns an
event that the runner awaits to learn the adaptation's outcome, from which it
generates the acknowledgment back to the scheduler.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dynaco.decide import DecisionProcedure, Strategy
from repro.dynaco.events import AdaptationResult, EnvironmentEvent
from repro.dynaco.execute import Executor
from repro.dynaco.observe import Monitor, SchedulerFrontendMonitor
from repro.dynaco.plan import Planner
from repro.sim.core import Environment
from repro.sim.events import Event


class Dynaco:
    """One DYNACO control loop specialised for a single application.

    Parameters
    ----------
    env:
        Simulation environment.
    decision:
        The application-specific decide component.
    planner:
        The plan component.
    executor:
        The execute component (AFPAC for SPMD applications).
    monitor:
        The observe component; a :class:`SchedulerFrontendMonitor` is created
        when omitted.  Every event the monitor publishes starts one pass of
        the control loop.
    """

    def __init__(
        self,
        env: Environment,
        decision: DecisionProcedure,
        planner: Planner,
        executor: Executor,
        monitor: Optional[Monitor] = None,
    ) -> None:
        self.env = env
        self.decision = decision
        self.planner = planner
        self.executor = executor
        self.monitor = monitor or SchedulerFrontendMonitor()
        self.monitor.subscribe(self._on_event)
        #: Completed adaptation results, in completion order.
        self.history: List[AdaptationResult] = []
        #: Events whose adaptation is still being executed.
        self._in_flight: List[EnvironmentEvent] = []
        #: Completion events keyed by the triggering environment event.
        self._completions: dict[int, Event] = {}

    # -- public API --------------------------------------------------------

    def adapt(self, event: EnvironmentEvent, current_allocation: int) -> Event:
        """Run one pass of the control loop for *event*.

        Returns a simulation event that succeeds with the
        :class:`AdaptationResult` once the adaptation has been executed (or
        immediately, if the decision is to not adapt).

        Calling :meth:`adapt` twice for the same event object returns the same
        completion event, so the runner frontend and the monitor subscription
        can both refer to an adaptation without duplicating it.
        """
        key = id(event)
        if key in self._completions:
            return self._completions[key]
        completion = self.env.event()
        self._completions[key] = completion
        strategy = self.decision.decide(event, current_allocation)
        plan = self.planner.plan(current_allocation, strategy)

        if plan.empty:
            result = AdaptationResult(
                event=event,
                accepted_change=0,
                new_allocation=current_allocation,
                completed_at=None,
            )
            self.history.append(result)
            completion.succeed(result)
            return completion

        self._in_flight.append(event)
        self.env.process(self._execute(plan, event, completion))
        return completion

    def preview(self, event: EnvironmentEvent, current_allocation: int) -> Strategy:
        """Run only the decide step (no side effects).

        The scheduler-side protocol needs the accepted processor count
        *before* allocating resources ("get accepted number of processors
        from Job" in the FPSMA/EGS pseudo-code); the runner obtains it by
        previewing the decision.
        """
        return self.decision.decide(event, current_allocation)

    @property
    def busy(self) -> bool:
        """Whether an adaptation is currently being executed."""
        return bool(self._in_flight)

    @property
    def executed_adaptations(self) -> int:
        """Number of adaptations that actually changed the allocation."""
        return sum(1 for result in self.history if not result.declined)

    # -- internals ------------------------------------------------------------

    def _on_event(self, event: EnvironmentEvent) -> None:
        # Events arriving directly through the monitor (e.g. from a
        # CallbackMonitor used for application-initiated requests) are adapted
        # against the executor's current view of the application.
        application = getattr(self.executor, "application", None)
        current = application.allocation if application is not None else 0
        self.adapt(event, current)

    def _execute(self, plan, event: EnvironmentEvent, completion: Event):
        result = yield from self.executor.execute(plan, event)
        self.history.append(result)
        if event in self._in_flight:
            self._in_flight.remove(event)
        if not completion.triggered:
            completion.succeed(result)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Dynaco monitor={self.monitor.name!r} adaptations={len(self.history)} "
            f"busy={self.busy}>"
        )
