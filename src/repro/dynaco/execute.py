"""The *execute* component: carrying out an adaptation plan.

AFPAC is the paper's execute component for SPMD applications: it makes sure
adaptation actions run at a consistent point of the parallel execution (an
*adaptation point*) on all processes.  In the simulation the adaptation-point
wait and the data-redistribution pause are modelled inside
:class:`~repro.apps.runtime.RunningApplication`; the executor's job is to
drive those steps in plan order and to report what the runner must do with
processors (recruit before the adaptation, release after it).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Generator, Optional

from repro.apps.runtime import RunningApplication
from repro.dynaco.events import AdaptationResult, EnvironmentEvent
from repro.dynaco.plan import Plan
from repro.sim.core import Environment


class Executor(ABC):
    """Base class of execute components."""

    @abstractmethod
    def execute(
        self, plan: Plan, event: EnvironmentEvent
    ) -> Generator:  # pragma: no cover - interface
        """Simulation generator executing *plan*; returns an :class:`AdaptationResult`."""


class AfpacExecutor(Executor):
    """Executes malleability plans against a :class:`RunningApplication`.

    Parameters
    ----------
    env:
        Simulation environment.
    application:
        The running application the plans act upon.
    """

    def __init__(self, env: Environment, application: RunningApplication) -> None:
        self.env = env
        self.application = application
        #: Number of adaptations executed (grow + shrink), for diagnostics.
        self.executed_count = 0

    def execute(self, plan: Plan, event: EnvironmentEvent) -> Generator:
        """Run *plan* to completion (a simulation process body).

        The generator's return value is an :class:`AdaptationResult`.  The
        caller (the MRunner) is responsible for having recruited new
        processors *before* executing a grow plan and for releasing
        processors *after* a shrink plan completes, as reported by the
        result.
        """
        app = self.application
        old_allocation = app.allocation
        target = plan.strategy.target_allocation

        if plan.empty or target == old_allocation:
            return AdaptationResult(
                event=event,
                accepted_change=0,
                new_allocation=old_allocation,
                completed_at=None,
            )

        # The adaptation-point wait and the redistribution pause are both part
        # of the application runtime's reallocation protocol.
        ack = app.set_allocation(target)
        adopted = yield ack

        self.executed_count += 1
        return AdaptationResult(
            event=event,
            accepted_change=adopted - old_allocation,
            new_allocation=adopted,
            completed_at=self.env.now,
        )


class ImmediateExecutor(Executor):
    """An executor that applies adaptations instantaneously.

    Used by unit tests and by the idealised (zero-overhead) ablation
    configuration to isolate the scheduling policies from reconfiguration
    costs.
    """

    def __init__(self, env: Environment, application: Optional[RunningApplication] = None) -> None:
        self.env = env
        self.application = application

    def execute(self, plan: Plan, event: EnvironmentEvent) -> Generator:
        app = self.application
        old_allocation = app.allocation if app is not None else 0
        target = plan.strategy.target_allocation
        if app is not None and not plan.empty and target != old_allocation:
            # Bypass the runtime's adaptation-point/cost machinery entirely.
            app._allocation = target  # noqa: SLF001 - deliberate test/ablation shortcut
            app._record_allocation()  # noqa: SLF001
        if False:  # pragma: no cover - makes this function a generator
            yield None
        return AdaptationResult(
            event=event,
            accepted_change=(target - old_allocation) if not plan.empty else 0,
            new_allocation=target if not plan.empty else old_allocation,
            completed_at=self.env.now,
        )
