"""The *plan* component: turning a strategy change into executable actions.

When the decide component adopts a new strategy (a new target allocation),
the planner produces the ordered list of actions that realise it.  For an
SPMD application adapted with AFPAC, growing and shrinking follow fixed
recipes, so :class:`MalleabilityPlanner` is a template planner; the point of
keeping it as a separate component is fidelity to the DYNACO architecture and
the ability to test and extend planning independently (e.g. adding
checkpoint-based migration actions).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Tuple

from repro.dynaco.decide import Strategy


@dataclass(frozen=True)
class Action:
    """One step of an adaptation plan.

    ``kind`` is a symbolic action name interpreted by the executor; the
    standard malleability vocabulary is:

    * ``"wait-adaptation-point"`` — let the application reach a consistent
      state (AFPAC);
    * ``"recruit-processors"`` — hand newly obtained processors (GRAM stubs)
      to the application;
    * ``"redistribute-data"`` — pay the reconfiguration cost and adopt the new
      process layout;
    * ``"release-processors"`` — give processors back to the runner so it can
      release the corresponding GRAM jobs.
    """

    kind: str
    parameters: Tuple[Tuple[str, object], ...] = field(default_factory=tuple)

    def parameter(self, name: str, default=None):
        """Value of parameter *name* (or *default*)."""
        for key, value in self.parameters:
            if key == name:
                return value
        return default


@dataclass(frozen=True)
class Plan:
    """An ordered list of actions realising a strategy change."""

    strategy: Strategy
    actions: Tuple[Action, ...] = ()

    @property
    def empty(self) -> bool:
        """Whether the plan contains no actions (nothing to execute)."""
        return not self.actions

    def __iter__(self):
        return iter(self.actions)

    def __len__(self) -> int:
        return len(self.actions)


class Planner(ABC):
    """Base class of plan components."""

    @abstractmethod
    def plan(self, current_allocation: int, strategy: Strategy) -> Plan:
        """Produce the plan that moves the application onto *strategy*."""


class MalleabilityPlanner(Planner):
    """Standard grow/shrink plans for SPMD applications adapted with AFPAC."""

    def plan(self, current_allocation: int, strategy: Strategy) -> Plan:
        target = strategy.target_allocation
        if target == current_allocation:
            return Plan(strategy=strategy, actions=())

        if target > current_allocation:
            actions = (
                Action(
                    "recruit-processors",
                    (("count", target - current_allocation),),
                ),
                Action("wait-adaptation-point"),
                Action(
                    "redistribute-data",
                    (("from", current_allocation), ("to", target)),
                ),
            )
        else:
            actions = (
                Action("wait-adaptation-point"),
                Action(
                    "redistribute-data",
                    (("from", current_allocation), ("to", target)),
                ),
                Action(
                    "release-processors",
                    (("count", current_allocation - target),),
                ),
            )
        return Plan(strategy=strategy, actions=actions)
