"""One logging setup for the whole project.

Everything logs under the ``repro`` logger hierarchy
(``repro.cli``, ``repro.service``, ...), configured once by
:func:`setup_logging`: the CLIs call it early with their ``--quiet`` flag,
the daemon calls it at startup, and ``$REPRO_LOG_LEVEL`` overrides the
default level from the environment (``REPRO_LOG_LEVEL=debug repro-cli ...``).

The handler writes to stderr, keeping stdout clean for reports and JSON —
the same contract the ad-hoc ``print(..., file=sys.stderr)`` warnings had
before they moved here.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

#: Environment variable naming the default log level (``debug``, ``info``,
#: ``warning``, ``error`` or a numeric level).
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

#: Root of the project's logger hierarchy.
ROOT_LOGGER = "repro"

#: Marker attribute identifying the handler :func:`setup_logging` installed.
_HANDLER_MARK = "_repro_obs_handler"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """The ``repro`` logger, or the ``repro.<name>`` child."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER)


class _StderrHandler(logging.StreamHandler):
    """A stream handler resolving ``sys.stderr`` at *emit* time.

    Capturing ``sys.stderr`` once at setup would pin whatever object was
    installed then — under pytest's per-test capture (or any stream
    redirection) that object is later closed, turning every log call into a
    "Logging error" traceback.  An explicit stream (``setup_logging``'s
    *stream* argument) pins normally.
    """

    def __init__(self) -> None:
        logging.StreamHandler.__init__(self)
        self._pinned = None

    def setStream(self, stream):  # noqa: N802 - logging API name
        self._pinned = stream
        return None

    @property
    def stream(self):
        return self._pinned if self._pinned is not None else sys.stderr

    @stream.setter
    def stream(self, value) -> None:
        # StreamHandler.__init__ assigns here; only an explicit setStream pins.
        pass


def _resolve_level(level: Optional[str], quiet: bool) -> int:
    """The effective level: ``quiet`` > explicit *level* > env > WARNING."""
    if quiet:
        return logging.ERROR
    text = level if level is not None else os.environ.get(LOG_LEVEL_ENV)
    if text is None or not str(text).strip():
        return logging.WARNING
    text = str(text).strip()
    if text.isdigit():
        return int(text)
    resolved = logging.getLevelName(text.upper())
    if isinstance(resolved, int):
        return resolved
    raise ValueError(
        f"unknown log level {text!r}; expected debug/info/warning/error or a number"
    )


def setup_logging(
    level: Optional[str] = None, *, quiet: bool = False, stream=None
) -> logging.Logger:
    """Configure the ``repro`` logger (idempotently) and return it.

    Safe to call many times — a second call adjusts the level of the
    handler installed by the first instead of stacking duplicates.  *quiet*
    raises the threshold to ERROR; otherwise *level* (or
    ``$REPRO_LOG_LEVEL``, or WARNING) applies.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    resolved = _resolve_level(level, quiet)
    handler = next(
        (h for h in logger.handlers if getattr(h, _HANDLER_MARK, False)), None
    )
    if handler is None:
        handler = _StderrHandler()
        handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        setattr(handler, _HANDLER_MARK, True)
        logger.addHandler(handler)
    if stream is not None:
        handler.setStream(stream)
    logger.setLevel(resolved)
    # The repro hierarchy is self-contained: without this, environments that
    # configure a root logger (pytest plugins, user scripts) would print
    # every record twice.
    logger.propagate = False
    return logger
