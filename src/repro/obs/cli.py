"""The ``repro-cli trace`` subcommand: summary, timeline, diff, validate.

Post-processing for the trace files of :mod:`repro.obs.trace`:

``summary``
    Per-kind and per-event-type counts, sim-time span, event rates and the
    run's start/end metadata — the first thing to look at.
``timeline``
    An ASCII gantt of the jobs (queued/running over sim-time, from the hook
    records) plus a running-count curve via the report layer's
    :func:`~repro.metrics.asciiplot.ascii_plot`.
``diff``
    The first divergent record between two traces.  Byte-identical runs
    diff empty (exit 0); the first differing record of two seed-variant
    runs *is* the first point their simulations diverged (exit 1) — the
    one-command replacement for golden-digest archaeology.
``validate``
    Schema-check a trace (exit 1 on problems).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.trace import TRACE_SCHEMA, load_trace, validate_trace

#: Record kinds carrying run *metadata* rather than simulated behaviour;
#: ``diff`` skips them by default (two runs differing only in seed differ
#: trivially in their headers).
META_KINDS = ("header", "run_start")


def _canonical(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


# -- summary -------------------------------------------------------------------


def summarize_trace(records: List[Dict[str, Any]]) -> str:
    """The plain-text summary report of one trace."""
    lines: List[str] = []
    kinds: Dict[str, int] = {}
    fired: Dict[str, int] = {}
    scheduled: Dict[str, int] = {}
    hooks: Dict[str, int] = {}
    t_min: Optional[float] = None
    t_max: Optional[float] = None
    max_pending = 0
    for record in records:
        kind = record.get("k", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind == "ev":
            fired[record.get("e", "?")] = fired.get(record.get("e", "?"), 0) + 1
        elif kind == "sched":
            scheduled[record.get("e", "?")] = scheduled.get(record.get("e", "?"), 0) + 1
        elif kind == "hook":
            hooks[record.get("e", "?")] = hooks.get(record.get("e", "?"), 0) + 1
        elif kind == "queue":
            max_pending = max(max_pending, int(record.get("pending", 0)))
        time = record.get("t")
        if isinstance(time, (int, float)):
            t_min = time if t_min is None else min(t_min, time)
            t_max = time if t_max is None else max(t_max, time)

    header = records[0] if records and records[0].get("k") == "header" else {}
    meta = ", ".join(
        f"{key}={header[key]}"
        for key in ("label", "seed", "queue", "workload", "job_count")
        if key in header
    )
    lines.append(f"trace: {len(records)} records, schema {header.get('schema', '?')}")
    if meta:
        lines.append(f"  run:  {meta}")
    if t_min is not None and t_max is not None:
        lines.append(f"  span: t={t_min:.1f} .. t={t_max:.1f} simulated seconds")

    lines.append("  records by kind:")
    for kind, count in sorted(kinds.items(), key=lambda kv: -kv[1]):
        lines.append(f"    {kind:<10} {count:>9}")
    if max_pending:
        lines.append(f"  peak pending events: {max_pending}")

    def _table(title: str, counts: Dict[str, int], span: Optional[float]) -> None:
        if not counts:
            return
        lines.append(f"  {title}:")
        total = sum(counts.values())
        for name, count in sorted(counts.items(), key=lambda kv: -kv[1]):
            rate = f" {count / span:>10.2f}/s" if span else ""
            lines.append(f"    {name:<22} {count:>9}{rate}")
        if span:
            lines.append(f"    {'total':<22} {total:>9} {total / span:>10.2f}/s")

    span = (t_max - t_min) if (t_min is not None and t_max is not None and t_max > t_min) else None
    _table("fired events (sim-time rate)", fired, span)
    _table("scheduled events", scheduled, None)
    _table("scheduler hook events", hooks, span)

    for record in records:
        if record.get("k") == "run_end":
            lines.append(
                f"  run end: t={record.get('t', 0.0):.1f}, "
                f"events={record.get('events', '?')}, "
                f"all_done={record.get('all_done', '?')}, "
                f"metrics digest {str(record.get('digest', ''))[:16]}..."
            )
    return "\n".join(lines)


# -- timeline ------------------------------------------------------------------


def timeline_report(records: List[Dict[str, Any]], *, width: int = 72, jobs: int = 30) -> str:
    """ASCII gantt of the traced jobs plus a running-count curve."""
    submitted: Dict[str, float] = {}
    started: Dict[str, float] = {}
    ended: Dict[str, float] = {}
    order: List[str] = []
    transitions: List[Tuple[float, int]] = []
    for record in records:
        if record.get("k") != "hook":
            continue
        event, job, time = record.get("e"), record.get("job"), record.get("t")
        if not isinstance(job, str) or not isinstance(time, (int, float)):
            continue
        if event == "job_submitted" and job not in submitted:
            submitted[job] = time
            order.append(job)
        elif event == "job_started" and job not in started:
            started[job] = time
            transitions.append((time, +1))
        elif event == "job_ended" and job not in ended:
            ended[job] = time
            if job in started:
                transitions.append((time, -1))
    if not order:
        return "(no scheduler hook records in this trace — nothing to draw)"

    t0 = min(submitted.values())
    t1 = max(
        [time for series in (submitted, started, ended) for time in series.values()]
    )
    span = max(t1 - t0, 1.0)

    def column(time: float) -> int:
        return min(width - 1, int((time - t0) / span * (width - 1)))

    label_width = min(24, max(len(job) for job in order[:jobs]))
    lines = [
        f"job timeline: t={t0:.0f} .. t={t1:.0f} "
        f"('.' queued, '=' running, '|' end; {len(order)} jobs)"
    ]
    for job in order[:jobs]:
        row = [" "] * width
        sub = submitted[job]
        start = started.get(job)
        end = ended.get(job)
        run_from = column(start) if start is not None else width
        run_to = column(end) if end is not None else width - 1
        for cell in range(column(sub), min(run_from, width - 1) + 1):
            row[cell] = "."
        if start is not None:
            for cell in range(run_from, run_to + 1):
                row[cell] = "="
        if end is not None:
            row[column(end)] = "|"
        lines.append(f"  {job[:label_width]:<{label_width}} {''.join(row)}")
    if len(order) > jobs:
        lines.append(f"  ... and {len(order) - jobs} more jobs")

    if transitions:
        from repro.metrics.asciiplot import ascii_plot

        transitions.sort()
        xs: List[float] = [t0]
        ys: List[float] = [0.0]
        running = 0
        for time, delta in transitions:
            running += delta
            xs.append(time)
            ys.append(float(running))
        lines.append("")
        lines.append(
            ascii_plot(
                {"running jobs": (xs, ys)},
                width=width,
                height=10,
                title="running jobs over sim-time",
                x_label="t (s)",
            )
        )
    return "\n".join(lines)


# -- diff ----------------------------------------------------------------------


def diff_traces(
    a: List[Dict[str, Any]],
    b: List[Dict[str, Any]],
    *,
    include_meta: bool = False,
) -> Optional[Tuple[int, Optional[Dict[str, Any]], Optional[Dict[str, Any]]]]:
    """The first divergence between two record streams, or ``None``.

    Metadata records (:data:`META_KINDS`) are skipped unless *include_meta*
    — two runs differing only in seed always differ in their headers, and
    the interesting question is where the *simulations* diverged.  Returns
    ``(index, record_a, record_b)`` over the compared stream; a missing
    side (one trace is a prefix of the other) is ``None``.
    """
    if not include_meta:
        a = [record for record in a if record.get("k") not in META_KINDS]
        b = [record for record in b if record.get("k") not in META_KINDS]
    for index, (ra, rb) in enumerate(zip(a, b)):
        if _canonical(ra) != _canonical(rb):
            return index, ra, rb
    if len(a) != len(b):
        index = min(len(a), len(b))
        return (
            index,
            a[index] if index < len(a) else None,
            b[index] if index < len(b) else None,
        )
    return None


def diff_report(
    path_a: str,
    path_b: str,
    divergence: Optional[Tuple[int, Optional[Dict[str, Any]], Optional[Dict[str, Any]]]],
) -> str:
    if divergence is None:
        return f"traces are identical (metadata records excluded)\n  a: {path_a}\n  b: {path_b}"
    index, ra, rb = divergence
    lines = [f"first divergence at record {index} (metadata records excluded):"]
    lines.append(f"  a ({path_a}):")
    lines.append(f"    {_canonical(ra) if ra is not None else '(trace ended)'}")
    lines.append(f"  b ({path_b}):")
    lines.append(f"    {_canonical(rb) if rb is not None else '(trace ended)'}")
    if ra is not None and rb is not None:
        time_a, time_b = ra.get("t"), rb.get("t")
        if isinstance(time_a, (int, float)) and isinstance(time_b, (int, float)):
            lines.append(
                f"  simulations diverged by sim-time t={min(time_a, time_b):.3f}"
            )
    return "\n".join(lines)


# -- parser wiring and command ------------------------------------------------


def add_trace_parser(subparsers: Any) -> argparse.ArgumentParser:
    """Register the ``trace`` subcommand (with its operation tree)."""
    trace = subparsers.add_parser(
        "trace",
        help="inspect trace files written via --trace-out / $REPRO_TRACE",
    )
    ops = trace.add_subparsers(dest="trace_op", required=True, metavar="OPERATION")
    summary = ops.add_parser(
        "summary", help="per-event-type counts, rates and run metadata"
    )
    summary.add_argument("trace_file", help="trace file (.jsonl or .gz)")
    timeline = ops.add_parser(
        "timeline", help="ASCII gantt of the traced jobs over sim-time"
    )
    timeline.add_argument("trace_file", help="trace file (.jsonl or .gz)")
    timeline.add_argument(
        "--width", type=int, default=72, help="timeline width in characters"
    )
    timeline.add_argument(
        "--max-jobs", type=int, default=30, help="gantt rows before eliding"
    )
    diff = ops.add_parser(
        "diff",
        help="first divergent record of two traces (exit 1 when they diverge)",
    )
    diff.add_argument("trace_a", help="first trace file")
    diff.add_argument("trace_b", help="second trace file")
    diff.add_argument(
        "--include-meta",
        action="store_true",
        help="also compare header/run_start metadata records",
    )
    validate = ops.add_parser(
        "validate",
        help=f"schema-check a trace (schema {TRACE_SCHEMA}; exit 1 on problems)",
    )
    validate.add_argument("trace_file", help="trace file (.jsonl or .gz)")
    return trace


def cmd_trace(args: argparse.Namespace) -> int:
    """Execute one ``trace`` operation; returns a process exit code."""
    try:
        if args.trace_op == "diff":
            divergence = diff_traces(
                load_trace(args.trace_a),
                load_trace(args.trace_b),
                include_meta=args.include_meta,
            )
            print(diff_report(args.trace_a, args.trace_b, divergence))
            return 1 if divergence is not None else 0
        records = load_trace(args.trace_file)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.trace_op == "summary":
        print(summarize_trace(records))
        return 0
    if args.trace_op == "timeline":
        print(timeline_report(records, width=args.width, jobs=args.max_jobs))
        return 0
    if args.trace_op == "validate":
        problems = validate_trace(records)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        print(f"valid: {len(records)} records, schema {TRACE_SCHEMA}")
        return 0
    print(f"error: unknown trace operation {args.trace_op!r}", file=sys.stderr)
    return 2  # pragma: no cover - argparse enforces the choices
