"""Process-local metrics: counters, gauges and histograms in a registry.

The registry is deliberately minimal — plain Python objects, no background
threads, no export protocol — because its consumers are in-process: the
result store and the experiment daemon keep *per-instance* registries (their
statistics describe one store object or one daemon, exactly like the ad-hoc
integer counters they replace), the sweep engine counts into the
process-global registry, and the daemon's ``metrics`` operation serialises
:meth:`MetricsRegistry.snapshot` onto the wire.

Shipping snapshots to a shared store for multi-daemon deployments is a
ROADMAP follow-up; the snapshot dict is the stable surface that work builds
on.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "get_registry"]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (negative increments are a bug, hence rejected)."""
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A value that goes up and down (queue depths, in-flight counts)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Count/sum/min/max plus power-of-two buckets over observed values.

    The buckets answer "how are the op latencies distributed" without
    configuration: bucket *i* counts observations in ``[2^(i-1), 2^i)``
    scaled by :attr:`base` (observations below ``base`` land in bucket 0).
    """

    __slots__ = ("count", "total", "min", "max", "buckets", "base")

    #: Up to this many power-of-two buckets; the last one is unbounded.
    BUCKETS = 24

    def __init__(self, base: float = 0.001) -> None:
        if base <= 0:
            raise ValueError("base must be positive")
        self.base = base
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets = [0] * self.BUCKETS

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = 0
        threshold = self.base
        while value >= threshold and index < self.BUCKETS - 1:
            threshold *= 2.0
            index += 1
        self.buckets[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        # Trailing empty buckets are elided: most histograms observe a
        # narrow range and the snapshot travels over the wire.
        populated = len(self.buckets)
        while populated and not self.buckets[populated - 1]:
            populated -= 1
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "bucket_base": self.base,
            "buckets": self.buckets[:populated],
        }


class MetricsRegistry:
    """Named metrics, created on first use and snapshotted as one dict.

    Get-or-create is type-checked: asking for ``counter("x")`` after
    ``gauge("x")`` raises instead of silently returning the wrong kind.
    Creation takes a lock so registries are safe to share across threads
    (the daemon's store-io thread and event loop both count); the metric
    operations themselves are single-opcode-ish and rely on the GIL, the
    same contract the plain integer counters they replaced had.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls: type, **kwargs: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {cls.__name__}"
                )
            return metric
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(**kwargs)
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, *, base: float = 0.001) -> Histogram:
        return self._get_or_create(name, Histogram, base=base)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able ``{name: value-or-dict}`` of every metric, sorted."""
        return {
            name: metric.snapshot()
            for name, metric in sorted(self._metrics.items())
        }

    def reset(self) -> None:
        """Drop every metric (tests; never called by production paths)."""
        with self._lock:
            self._metrics.clear()


#: The process-global registry (engine counters, anything without a natural
#: owning instance).
_global_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global :class:`MetricsRegistry`."""
    return _global_registry
