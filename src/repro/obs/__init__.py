"""Observability: structured tracing, a metrics registry and logging.

Three pillars, all process-local and dependency-free:

* :mod:`repro.obs.trace` — schema-versioned trace records from the sim
  kernel, the scheduler hook dispatcher, the engine and the daemon, written
  to JSONL (or gzip-compressed JSONL) sinks.  Disabled by default and
  provably free when disabled: the kernel's hot run loop is selected by one
  ``None`` check per :meth:`~repro.sim.core.Environment.run` call.
* :mod:`repro.obs.metrics` — counters, gauges and histograms behind a
  :class:`~repro.obs.metrics.MetricsRegistry`; the result store and the
  experiment daemon keep per-instance registries, the engine counts into the
  process-global one, and the daemon exposes snapshots through its
  ``metrics`` operation.
* :mod:`repro.obs.log` — one logging setup (``repro.*`` loggers) with a
  ``--quiet`` / ``$REPRO_LOG_LEVEL`` knob, replacing ad-hoc stderr prints.

Introspection tooling lives in :mod:`repro.obs.cli` (``repro-cli trace
summary|timeline|diff|validate``).
"""

from repro.obs.log import LOG_LEVEL_ENV, get_logger, setup_logging
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry
from repro.obs.trace import (
    TRACE_ENV,
    TRACE_SCHEMA,
    JsonlSink,
    NullSink,
    Tracer,
    open_sink,
    read_trace,
    resolve_trace_path,
    validate_trace,
)

__all__ = [
    "LOG_LEVEL_ENV",
    "get_logger",
    "setup_logging",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "TRACE_ENV",
    "TRACE_SCHEMA",
    "JsonlSink",
    "NullSink",
    "Tracer",
    "open_sink",
    "read_trace",
    "resolve_trace_path",
    "validate_trace",
]
