"""Structured, schema-versioned trace records and their sinks.

A trace is a stream of flat JSON records, one per line, written by the
instrumentation points of the simulator and the service:

============= ==============================================================
``header``    First record of every trace: ``schema`` plus run metadata.
``run_start`` One experiment run began (label, seed, queue, workload).
``sched``     The kernel scheduled an event (time, priority, id, type).
``ev``        The kernel fired an event (time, priority, type).
``queue``     Periodic kernel snapshot (pending events, processed count).
``hook``      A typed scheduler event went through the hook dispatcher
              (sim-time, event name, small payload, payload digest).
``run_end``   The run finished (sim time, events processed, metrics digest).
``span``      One timed service operation (daemon request handling).
``cache``     An engine or daemon cache/coalescing decision.
============= ==============================================================

Determinism is a design requirement, not an accident: records written during
a simulation carry **no wall-clock data**, so two runs of the same
configuration and seed produce byte-identical trace files — which is what
makes ``repro-cli trace diff`` meaningful (the first differing record *is*
the first divergence of the simulations).  Daemon-side ``span`` records do
carry wall-clock durations; they live in daemon traces, never in run traces.

Sinks are plain JSONL (``.jsonl``/``.json``) or gzip-compressed JSONL
(``.gz``, the compact binary format — stdlib only, ~10x smaller).  Records
are serialised with sorted keys and no whitespace, so identical records are
identical bytes.
"""

from __future__ import annotations

import dataclasses
import gzip
import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.setup import ExperimentConfig

#: Version of the trace record schema; bump on incompatible record changes.
TRACE_SCHEMA = 1

#: Environment variable activating tracing for every run in the process
#: (a file path or a directory, like ``ExperimentConfig.trace``).
TRACE_ENV = "REPRO_TRACE"

#: Every record kind the schema knows.
RECORD_KINDS = (
    "header",
    "run_start",
    "sched",
    "ev",
    "queue",
    "hook",
    "run_end",
    "span",
    "cache",
)

#: File suffixes treated as literal trace *files* (anything else names a
#: directory that per-run files are created under).
FILE_SUFFIXES = (".jsonl", ".json", ".gz")


def _encode(record: Dict[str, Any]) -> str:
    """One record as its canonical line: sorted keys, no whitespace."""
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


class NullSink:
    """A sink that discards everything (measuring tracer overhead)."""

    def write(self, record: Dict[str, Any]) -> None:
        pass

    def close(self) -> None:
        pass


class JsonlSink:
    """Writes records as JSON lines to *path*."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")

    def write(self, record: Dict[str, Any]) -> None:
        self._handle.write(_encode(record))

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class GzipJsonlSink(JsonlSink):
    """The compact format: gzip-compressed JSON lines (suffix ``.gz``).

    ``mtime=0`` and an empty embedded filename pin the gzip header, keeping
    same-seed traces byte-identical through compression too (regardless of
    what the files are called or when they were written).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        raw = open(self.path, "wb")
        self._handle = gzip.GzipFile(filename="", fileobj=raw, mode="wb", mtime=0)
        self._raw = raw

    def write(self, record: Dict[str, Any]) -> None:
        self._handle.write(_encode(record).encode("utf-8"))

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._raw.close()
            self._handle = None


def open_sink(path: Union[str, Path]) -> JsonlSink:
    """A sink for *path*, picked by suffix (``.gz`` compresses)."""
    if str(path).endswith(".gz"):
        return GzipJsonlSink(path)
    return JsonlSink(path)


def _safe_name(text: str) -> str:
    """*text* reduced to file-name-safe characters."""
    return "".join(c if c.isalnum() or c in "._-" else "-" for c in text)


def resolve_trace_path(
    target: Union[str, Path], config: Optional["ExperimentConfig"] = None
) -> Path:
    """The trace file a run should write, given the user's *target*.

    A *target* ending in a :data:`FILE_SUFFIXES` suffix is the file itself;
    anything else is a directory, and the file name is derived from the
    configuration (``<name>-<label>-seed<seed>.jsonl``) so a sweep's runs
    land in distinct files instead of overwriting each other.
    """
    target = Path(target)
    if target.suffix in FILE_SUFFIXES:
        return target
    if config is None:
        return target / "trace.jsonl"
    stem = _safe_name(f"{config.name}-{config.label}-seed{config.seed}")
    return target / f"{stem}.jsonl"


def _payload_from(event: Any) -> Dict[str, Any]:
    """The small, JSON-able payload of one typed scheduler event.

    Scalars travel as-is; jobs are reduced to their name (or id); anything
    else (execution records, KIS snapshots) is dropped — the payload exists
    to *identify* the event in a diff, not to serialise the scheduler.
    """
    payload: Dict[str, Any] = {}
    for field in dataclasses.fields(event):
        if field.name == "time":
            continue
        value = getattr(event, field.name)
        if value is None or isinstance(value, (str, int, float, bool)):
            payload[field.name] = value
            continue
        name = getattr(value, "name", None)
        if isinstance(name, str) and name:
            payload[field.name] = name
        elif getattr(value, "job_id", None) is not None:
            payload[field.name] = f"job-{value.job_id}"
    return payload


def payload_digest(payload: Dict[str, Any]) -> str:
    """Short deterministic digest of one hook payload."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=8).hexdigest()


class Tracer:
    """Writes schema-versioned records to one sink.

    The first record is always the ``header`` (schema version plus whatever
    *meta* the creator supplies).  :attr:`write` is the sink's bound
    ``write`` — instrumentation hot paths call it directly, skipping a
    method dispatch per record.
    """

    def __init__(self, sink: Any, *, meta: Optional[Dict[str, Any]] = None) -> None:
        self.sink = sink
        self.write = sink.write
        header: Dict[str, Any] = {"k": "header", "schema": TRACE_SCHEMA}
        if meta:
            header.update(meta)
        self.write(header)

    def record(self, kind: str, **fields: Any) -> None:
        """Write one *kind* record carrying *fields*."""
        record: Dict[str, Any] = {"k": kind}
        record.update(fields)
        self.write(record)

    def record_hook(self, event: Any) -> None:
        """Trace one typed scheduler event going through the dispatcher."""
        from repro.policies.hooks import HOOK_METHODS

        method = HOOK_METHODS.get(type(event))
        name = method[3:] if method else type(event).__name__
        payload = _payload_from(event)
        record: Dict[str, Any] = {
            "k": "hook",
            "t": event.time,
            "e": name,
            "digest": payload_digest(payload),
        }
        record.update(payload)
        self.write(record)

    def close(self) -> None:
        self.sink.close()


# -- reading and validating ----------------------------------------------------


def read_trace(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Yield the records of one trace file (plain or gzip JSONL)."""
    path = Path(path)
    opener = gzip.open if str(path).endswith(".gz") else open
    with opener(path, "rt", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                raise ValueError(f"{path}:{number}: not a JSON record") from None
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{number}: record is not an object")
            yield record


def load_trace(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Every record of one trace file, as a list."""
    return list(read_trace(path))


def validate_trace(records: List[Dict[str, Any]]) -> List[str]:
    """Schema-check *records*; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    if not records:
        return ["trace is empty (no header record)"]
    header = records[0]
    if header.get("k") != "header":
        problems.append(f"record 0: expected a header, got kind {header.get('k')!r}")
    elif header.get("schema") != TRACE_SCHEMA:
        problems.append(
            f"record 0: schema {header.get('schema')!r}, "
            f"this reader understands {TRACE_SCHEMA}"
        )
    for index, record in enumerate(records):
        if len(problems) >= 20:
            problems.append("... (further problems suppressed)")
            break
        kind = record.get("k")
        if kind not in RECORD_KINDS:
            problems.append(f"record {index}: unknown kind {kind!r}")
            continue
        if index and kind == "header":
            problems.append(f"record {index}: header after the first record")
        if kind in ("sched", "ev", "hook", "queue", "run_end"):
            if not isinstance(record.get("t"), (int, float)):
                problems.append(f"record {index}: {kind} record without a sim-time 't'")
        if kind in ("sched", "ev", "hook") and not isinstance(record.get("e"), str):
            problems.append(f"record {index}: {kind} record without an event name 'e'")
    return problems
