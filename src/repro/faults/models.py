"""Fault models: deterministic streams of node-availability events.

The paper's premise is a *dynamically changing* multicluster: nodes fail,
drain and return while KOALA schedules around them.  A fault model describes
that dynamics as data — a time-ordered stream of :class:`FaultEvent` records
saying "at time *t*, *n* processors of cluster *c* went down / came back" —
which the :class:`~repro.faults.injector.FaultInjector` replays against the
simulated system.

Models are registered by name and referenced with ``fault:`` strings, the
same registry/prefix pattern the workload layer uses for traces::

    fault:exp?mtbf=3600&mttr=600          # exponential per-node churn
    fault:weibull?mtbf=7200&shape=1.5     # Weibull uptimes (ageing nodes)
    fault:outage?cluster=delft&at=1800&duration=900&every=7200
    fault:drain?cluster=vu&at=3600&duration=3600   # graceful: no kills
    fault:trace?path=outages.flt          # file-based availability trace

References are plain strings, so they travel through
:class:`~repro.experiments.setup.ExperimentConfig`, scenario variants, the
result cache and worker subprocesses unchanged; all randomness comes from a
dedicated :class:`~repro.sim.rng.RandomStreams` lane (``"faults"``), so
enabling a fault model never perturbs the draws of any other component.

Availability trace files (conventionally ``.flt``) are plain text, one event
per line, ``#`` comments allowed::

    # time  cluster  kind   processors
    1800    delft    down   16
    2400    delft    up     16
    3600    vu       drain  40
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from heapq import heappop, heappush
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

#: Prefix of fault-model references (``"fault:<name>?<params>"``).
FAULT_PREFIX = "fault:"

#: Event kinds: processors going down (possibly gracefully) or coming back.
KIND_FAIL = "fail"
KIND_REPAIR = "repair"


@dataclass(frozen=True)
class FaultEvent:
    """One availability change: *processors* of *cluster* fail or recover.

    ``graceful`` marks a drain: the processors leave the pool only as they
    fall idle, so no running job is killed by the event.
    """

    time: float
    cluster: str
    processors: int
    kind: str = KIND_FAIL
    graceful: bool = False

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("fault events cannot happen before time 0")
        if self.processors < 1:
            raise ValueError("a fault event must cover at least one processor")
        if self.kind not in (KIND_FAIL, KIND_REPAIR):
            raise ValueError(f"unknown fault event kind {self.kind!r}")


#: Signature of a registered fault-model builder: ``(rng, clusters, **params)``
#: -> time-ordered event stream.  *clusters* maps cluster name -> node count.
FaultModelBuilder = Callable[..., Iterator[FaultEvent]]

_MODELS: Dict[str, Tuple[FaultModelBuilder, str]] = {}


def register_fault_model(
    name: str,
    builder: FaultModelBuilder,
    *,
    description: str = "",
    overwrite: bool = False,
) -> None:
    """Register *builder* as the fault model *name*.

    The builder receives the model parameters of a fault reference as keyword
    arguments plus the positional ``(rng, clusters)`` pair, and must validate
    its parameters eagerly (return a generator, raise on bad input now).
    """
    key = name.lower()
    if not overwrite and key in _MODELS:
        raise ValueError(f"fault model {name!r} already registered")
    _MODELS[key] = (builder, description)


def known_fault_models() -> List[Tuple[str, str]]:
    """``(name, description)`` of every registered fault model, sorted."""
    return [(name, description) for name, (_, description) in sorted(_MODELS.items())]


def resolve_fault_model(name: str) -> FaultModelBuilder:
    """The builder registered under *name*."""
    try:
        return _MODELS[name.lower()][0]
    except KeyError:
        from repro.refs import suggest

        known = ", ".join(entry for entry, _ in known_fault_models()) or "(none)"
        hint = suggest(name, (entry for entry, _ in known_fault_models()))
        suffix = f"; did you mean {hint!r}?" if hint else ""
        raise ValueError(
            f"unknown fault model {name!r}; known: {known}{suffix}"
        ) from None


# ---------------------------------------------------------------------------
# Per-node churn: renewal processes of alternating up/down times
# ---------------------------------------------------------------------------


def _renewal_churn(
    rng,
    clusters: Mapping[str, int],
    *,
    uptime,
    downtime,
    start: float,
) -> Iterator[FaultEvent]:
    """Merge one alternating up/down renewal process per node.

    Each node draws an uptime, fails, draws a downtime, recovers, and so on.
    Draw order is fully determined by the (deterministic) event order, so the
    same rng state always produces the same stream.
    """
    heap: List[Tuple[float, int, str, str]] = []
    sequence = 0
    for cluster, nodes in clusters.items():
        for _ in range(int(nodes)):
            heappush(heap, (start + uptime(rng), sequence, cluster, KIND_FAIL))
            sequence += 1
    while heap:
        time, _, cluster, kind = heappop(heap)
        yield FaultEvent(time=time, cluster=cluster, processors=1, kind=kind)
        if kind == KIND_FAIL:
            heappush(heap, (time + downtime(rng), sequence, cluster, KIND_REPAIR))
        else:
            heappush(heap, (time + uptime(rng), sequence, cluster, KIND_FAIL))
        sequence += 1


def exponential_churn(
    rng,
    clusters: Mapping[str, int],
    *,
    mtbf: float = 86400.0,
    mttr: float = 600.0,
    start: float = 0.0,
) -> Iterator[FaultEvent]:
    """Per-node churn with exponential uptimes and repair times.

    *mtbf* is the mean time between failures of a single node (seconds),
    *mttr* its mean time to repair; *start* delays the first possible
    failure.  The classic memoryless availability model.
    """
    if mtbf <= 0 or mttr <= 0:
        raise ValueError("mtbf and mttr must be positive")
    if start < 0:
        raise ValueError("start must be non-negative")
    return _renewal_churn(
        rng,
        clusters,
        uptime=lambda r: float(r.exponential(mtbf)),
        downtime=lambda r: float(r.exponential(mttr)),
        start=float(start),
    )


def weibull_churn(
    rng,
    clusters: Mapping[str, int],
    *,
    mtbf: float = 86400.0,
    shape: float = 1.5,
    mttr: float = 600.0,
    start: float = 0.0,
) -> Iterator[FaultEvent]:
    """Per-node churn with Weibull uptimes (shape > 1 models ageing nodes).

    The Weibull scale is derived from *mtbf* so the mean uptime equals it
    regardless of *shape*; repairs stay exponential with mean *mttr*.
    """
    if mtbf <= 0 or mttr <= 0:
        raise ValueError("mtbf and mttr must be positive")
    if shape <= 0:
        raise ValueError("shape must be positive")
    if start < 0:
        raise ValueError("start must be non-negative")
    scale = mtbf / math.gamma(1.0 + 1.0 / shape)
    return _renewal_churn(
        rng,
        clusters,
        uptime=lambda r: float(scale * r.weibull(shape)),
        downtime=lambda r: float(r.exponential(mttr)),
        start=float(start),
    )


# ---------------------------------------------------------------------------
# Whole-cluster outages and drains
# ---------------------------------------------------------------------------


def _cluster_window_events(
    clusters: Mapping[str, int],
    *,
    cluster: str,
    at: float,
    duration: float,
    every: Optional[float],
    nodes: int,
    graceful: bool,
) -> Iterator[FaultEvent]:
    if at < 0:
        raise ValueError("at must be non-negative")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if every is not None and every <= 0:
        raise ValueError("every must be positive")
    if every is not None and every < duration:
        # Overlapping windows would emit a non-time-ordered stream (the next
        # window's failure precedes the previous window's repair), which the
        # injector rightly refuses; reject the parameters up front instead.
        raise ValueError(
            f"every ({every:g}) must be at least duration ({duration:g}): "
            "overlapping outage windows are not supported"
        )
    if nodes < 0:
        raise ValueError("nodes must be non-negative")
    if cluster != "all" and cluster not in clusters:
        known = ", ".join(sorted(clusters))
        raise ValueError(f"unknown cluster {cluster!r}; known: {known}")
    targets = sorted(clusters) if cluster == "all" else [cluster]

    def window(start: float) -> Iterator[FaultEvent]:
        for name in targets:
            count = int(nodes) if nodes else int(clusters[name])
            count = min(count, int(clusters[name]))
            if count < 1:
                continue
            yield FaultEvent(
                time=start, cluster=name, processors=count,
                kind=KIND_FAIL, graceful=graceful,
            )
        for name in targets:
            count = int(nodes) if nodes else int(clusters[name])
            count = min(count, int(clusters[name]))
            if count < 1:
                continue
            yield FaultEvent(
                time=start + duration, cluster=name, processors=count,
                kind=KIND_REPAIR,
            )

    def generate() -> Iterator[FaultEvent]:
        begin = float(at)
        while True:
            yield from window(begin)
            if every is None:
                return
            begin += every

    return generate()


def cluster_outage(
    rng,
    clusters: Mapping[str, int],
    *,
    cluster: str = "all",
    at: float = 3600.0,
    duration: float = 1800.0,
    every: Optional[float] = None,
    nodes: int = 0,
) -> Iterator[FaultEvent]:
    """Hard outage of (part of) a cluster: running jobs on the nodes die.

    *nodes* = 0 takes the whole cluster down; ``every`` repeats the outage
    periodically.  ``cluster="all"`` hits every cluster.  Deterministic —
    *rng* is unused.
    """
    _ = rng
    return _cluster_window_events(
        clusters,
        cluster=str(cluster),
        at=float(at),
        duration=float(duration),
        every=float(every) if every is not None else None,
        nodes=int(nodes),
        graceful=False,
    )


def cluster_drain(
    rng,
    clusters: Mapping[str, int],
    *,
    cluster: str = "all",
    at: float = 3600.0,
    duration: float = 1800.0,
    every: Optional[float] = None,
    nodes: int = 0,
) -> Iterator[FaultEvent]:
    """Graceful drain: nodes leave the pool as they fall idle, nothing dies.

    Models scheduled maintenance — exactly the scenario where malleability
    lets the system shrink around the maintenance window.
    """
    _ = rng
    return _cluster_window_events(
        clusters,
        cluster=str(cluster),
        at=float(at),
        duration=float(duration),
        every=float(every) if every is not None else None,
        nodes=int(nodes),
        graceful=True,
    )


# ---------------------------------------------------------------------------
# File-based availability traces
# ---------------------------------------------------------------------------

#: Keywords accepted in the third column of an availability trace file.
_TRACE_KINDS = {
    "down": (KIND_FAIL, False),
    "fail": (KIND_FAIL, False),
    "drain": (KIND_FAIL, True),
    "up": (KIND_REPAIR, False),
    "repair": (KIND_REPAIR, False),
}


def parse_fault_trace(text: str, *, source: str = "<string>") -> List[FaultEvent]:
    """Parse an availability trace (see module docstring) into sorted events."""
    events: List[FaultEvent] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 4:
            raise ValueError(
                f"{source}:{number}: expected 'time cluster kind processors', "
                f"got {raw.strip()!r}"
            )
        time_text, cluster, kind_text, count_text = parts
        try:
            kind, graceful = _TRACE_KINDS[kind_text.lower()]
        except KeyError:
            known = ", ".join(sorted(_TRACE_KINDS))
            raise ValueError(
                f"{source}:{number}: unknown event kind {kind_text!r} "
                f"(known: {known})"
            ) from None
        try:
            time = float(time_text)
            count = int(count_text)
        except ValueError:
            raise ValueError(
                f"{source}:{number}: malformed numbers in {raw.strip()!r}"
            ) from None
        events.append(
            FaultEvent(
                time=time, cluster=cluster, processors=count,
                kind=kind, graceful=graceful,
            )
        )
    events.sort(key=lambda event: event.time)
    return events


def trace_fault_model(
    rng,
    clusters: Mapping[str, int],
    *,
    path: str,
) -> Iterator[FaultEvent]:
    """Replay the availability trace file at *path*.

    Events naming clusters absent from the simulated system fail at build
    time, not mid-run.  Deterministic — *rng* is unused.
    """
    _ = rng
    trace_path = resolve_trace_path(str(path))
    if not trace_path.is_file():
        raise ValueError(f"fault trace file {path!r} does not exist")
    events = parse_fault_trace(
        trace_path.read_text(encoding="utf-8"), source=str(trace_path)
    )
    for event in events:
        if event.cluster not in clusters:
            known = ", ".join(sorted(clusters))
            raise ValueError(
                f"fault trace {path!r} names unknown cluster "
                f"{event.cluster!r} (known: {known})"
            )
    return iter(events)


register_fault_model(
    "exp",
    exponential_churn,
    description="exponential per-node churn (params: mtbf, mttr, start)",
)
register_fault_model(
    "weibull",
    weibull_churn,
    description="Weibull-uptime per-node churn (params: mtbf, shape, mttr, start)",
)
register_fault_model(
    "outage",
    cluster_outage,
    description="hard cluster outage (params: cluster, at, duration, every, nodes)",
)
register_fault_model(
    "drain",
    cluster_drain,
    description="graceful drain, no kills (params: cluster, at, duration, every, nodes)",
)
register_fault_model(
    "trace",
    trace_fault_model,
    description="file-based availability trace (params: path; see repro.faults.models)",
)


# ---------------------------------------------------------------------------
# Fault references: "fault:<model>?<param>=<value>&..."
# ---------------------------------------------------------------------------

#: Parameters consumed by the injector rather than the model builder.
INJECTOR_PARAMS = ("retries",)


def is_fault_reference(name: str) -> bool:
    """Whether *name* is a ``fault:`` reference."""
    return name.startswith(FAULT_PREFIX)


def _parse_value(text: str) -> Union[int, float, str]:
    from repro.refs import parse_scalar

    return parse_scalar(text)


@dataclass(frozen=True)
class FaultRef:
    """A parsed fault-model reference: model name plus its parameters."""

    model: str
    params: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def parse(cls, reference: str) -> "FaultRef":
        """Parse ``"fault:<model>?k=v&k=v"`` (the prefix is optional here)."""
        from repro.refs import parse_query, split_reference

        model, query = split_reference(reference, prefix=FAULT_PREFIX)
        if not model:
            raise ValueError(f"empty fault model name in reference {reference!r}")
        params = parse_query(
            query,
            value_parser=_parse_value,
            malformed=lambda part: (
                f"malformed fault parameter {part!r} in {reference!r} "
                "(expected key=value)"
            ),
        )
        return cls(model=model, params=params)

    def canonical(self) -> str:
        """The canonical reference string (sorted parameters, with prefix)."""
        from repro.refs import render_reference

        return render_reference(self.model, self.params, prefix=FAULT_PREFIX)

    def model_params(self) -> Dict[str, Any]:
        """The parameters forwarded to the model builder."""
        return {
            key: value
            for key, value in self.params.items()
            if key not in INJECTOR_PARAMS
        }

    def retries(self) -> Optional[int]:
        """Resubmission budget per killed job (``None`` = unlimited).

        The ``retries`` parameter: how many times a failure-killed job may be
        resubmitted before it is abandoned; negative values mean unlimited.
        """
        raw = self.params.get("retries")
        if raw is None:
            return None
        value = int(raw)
        return None if value < 0 else value

    def validate(self, clusters: Optional[Mapping[str, int]] = None) -> "FaultRef":
        """Fail fast on anything wrong with this reference.

        Resolves the model, constructs its event stream against *clusters*
        (a representative single-node probe layout when omitted) without
        pulling a single event, and checks the injector parameters.  Raises
        :class:`ValueError` with a pointed message so configuration surfaces
        report bad references as argument errors, not tracebacks mid-sweep.
        """
        builder = resolve_fault_model(self.model)
        probe = dict(clusters) if clusters is not None else {"_probe": 1}
        import numpy as np

        try:
            builder(np.random.default_rng(0), probe, **self.model_params())
        except TypeError as error:
            raise ValueError(
                f"fault model {self.model!r} rejected parameters "
                f"{sorted(self.model_params())}: {error}"
            ) from None
        except ValueError as error:
            # An unknown-cluster complaint against the probe layout is not a
            # reference error; re-check against the real layout at build time.
            if clusters is None and "unknown cluster" in str(error):
                pass
            else:
                raise
        self.retries()
        return self

    def build(self, rng, clusters: Mapping[str, int]) -> Iterator[FaultEvent]:
        """The event stream of this reference against the *clusters* layout."""
        builder = resolve_fault_model(self.model)
        return builder(rng, dict(clusters), **self.model_params())


def fault_reference_string(reference: str) -> str:
    """Validate *reference* and return its canonical string form.

    The :class:`~repro.experiments.setup.ExperimentConfig` normalisation
    hook: typos fail at configuration-construction time with the registered
    model names listed, and the canonical form keeps cache keys stable.
    """
    return FaultRef.parse(reference).validate().canonical()


def fault_fingerprint(reference: str) -> Optional[str]:
    """Content digest of a *file-backed* fault reference, ``None`` otherwise.

    Registered models are deterministic code (covered by the sweep engine's
    code-version digest); a trace *file* is data the code digest cannot see,
    so its content hash joins the result-cache key — the same rule the
    workload layer applies to ``.swf`` files.
    """
    import hashlib

    try:
        ref = FaultRef.parse(reference)
    except ValueError:
        return None
    path_value = ref.params.get("path")
    if ref.model.lower() != "trace" or path_value is None:
        return None
    path = resolve_trace_path(str(path_value))
    if not path.is_file():
        return None
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


#: Environment variable naming a directory searched for fault trace files
#: referenced with bare names (``fault:trace?path=outages.flt``).
FAULT_TRACES_DIR_ENV = "REPRO_FAULT_TRACES_DIR"


def resolve_trace_path(name: str) -> Path:
    """Resolve a fault-trace file name against ``$REPRO_FAULT_TRACES_DIR``.

    Absolute and relative paths that exist win; otherwise the override
    directory is probed.  Returns the path unchanged when nothing matches
    (the model builder reports the missing file).
    """
    candidate = Path(name)
    if candidate.is_file():
        return candidate
    override = os.environ.get(FAULT_TRACES_DIR_ENV)
    if override:
        probed = Path(override) / name
        if probed.is_file():
            return probed
    return candidate
